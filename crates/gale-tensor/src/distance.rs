//! Vector distances and similarity measures used throughout query selection
//! (diversified typicality) and clustering.
//!
//! Two families live here:
//!
//! * **Scalar reference functions** ([`euclidean`], [`squared_euclidean`],
//!   …) — one pair at a time, a single ascending accumulation chain.
//! * **Blocked kernels** ([`row_norms_sq_into`], [`pairwise_sq_into`],
//!   [`dists_to_row_into`], [`indexed_dists_to_row_into`]) — batched
//!   distances computed with the Gram trick
//!   `D²(i,j) = |xᵢ|² + |yⱼ|² − 2·xᵢ·yⱼᵀ`, routed through the
//!   register-tiled GEMM and the [`crate::Workspace`] pool.
//!
//! Contract for the blocked kernels (see DESIGN.md §6b.2):
//!
//! * **Thread-count invariant.** Every output element is written by
//!   exactly one chunk and computed with a fixed accumulation order, so
//!   results are bitwise identical under any `GALE_THREADS`.
//! * **Tolerance vs the scalar path.** The Gram trick reassociates the
//!   arithmetic, so blocked results are *not* bitwise equal to the scalar
//!   reference; they match within `1e-9` relative to the operand norm
//!   scale (`1 + |x|² + |y|²`), enforced by property tests. Negative
//!   round-off is clamped to zero before any `sqrt`.
//! * **Exact escape hatch.** Setting `GALE_EXACT_DIST=1` routes every
//!   blocked kernel through the scalar reference per pair, for bitwise
//!   A/B runs against pre-kernel behavior.

use crate::element::Element;
use std::sync::OnceLock;

/// True when `GALE_EXACT_DIST=1`: blocked kernels fall back to the scalar
/// reference per pair (read once per process).
pub fn exact_dist_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::var("GALE_EXACT_DIST").is_ok_and(|v| v == "1"))
}

/// Euclidean (L2) distance between two equal-length vectors.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance (avoids the sqrt when only ordering matters).
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Cosine similarity in `[-1, 1]`; 0.0 when either vector is ~zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity` in `[0, 2]`.
#[inline]
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// L2 norm of a vector.
#[inline]
pub fn l2_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Normalizes a vector to unit L2 norm in place; leaves ~zero vectors alone.
pub fn normalize_l2(a: &mut [f64]) {
    let n = l2_norm(a);
    if n > 1e-12 {
        for x in a {
            *x /= n;
        }
    }
}

/// Levenshtein edit distance between two strings (unit costs).
///
/// Used by the string-noise detectors to match misspellings against a
/// dictionary. O(|a|*|b|) time, O(min) memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized edit similarity in `[0, 1]`: 1.0 for identical strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// `n x n` matrix of Euclidean distances between the rows of `points`,
/// computed in parallel over row blocks. Row `i` is filled by exactly one
/// chunk, so the result is identical on any thread count.
pub fn pairwise_euclidean(points: &crate::Matrix) -> crate::Matrix {
    let mut out = crate::Matrix::zeros(0, 0);
    pairwise_euclidean_into(points, &mut out);
    out
}

/// [`pairwise_euclidean`] writing into a reusable output buffer (resized in
/// place; previous contents are discarded).
pub fn pairwise_euclidean_into(points: &crate::Matrix, out: &mut crate::Matrix) {
    let n = points.rows();
    out.resize(n, n);
    gale_obs::counter_add!("kernel.pairwise.calls", 1);
    gale_obs::counter_add!("kernel.pairwise.flops", (3 * n * n * points.cols()) as u64);
    crate::par::par_chunks_mut(out.data_mut(), n.max(1), |start, block| {
        let first_row = start / n.max(1);
        for (b, orow) in block.chunks_mut(n).enumerate() {
            let i = first_row + b;
            for (j, o) in orow.iter_mut().enumerate() {
                *o = euclidean(points.row(i), points.row(j));
            }
        }
    });
}

/// Squared L2 norm of one row, computed as the fixed eight-lane chain
/// `acc[l] += x[8j+l]²` with the remainder folded into lane 0 and a fixed
/// pairwise reduction tree at the end.
///
/// This one summation order is what every blocked row kernel (and the
/// `MemoCache` norms cache) uses — scalar loop, AVX, and AVX-512 backends
/// all evaluate the identical per-lane mul/add sequence, so norms computed
/// anywhere in the system are bitwise interchangeable.
#[inline]
pub fn row_norm_sq<E: Element>(row: &[E]) -> E {
    E::dot_chain(row, row)
}

/// Generic body of [`squared_euclidean`]: one ascending accumulation
/// chain, bitwise identical to the f64 iterator-sum reference for
/// `E = f64`. Used by the `GALE_EXACT_DIST=1` branches of the generic
/// blocked kernels.
#[inline]
fn squared_euclidean_e<E: Element>(a: &[E], b: &[E]) -> E {
    let mut s = E::ZERO;
    for (x, y) in a.iter().zip(b) {
        let d = *x - *y;
        s += d * d;
    }
    s
}

/// Dot product over the same fixed eight-lane chain as [`row_norm_sq`], so
/// `gram_sq(row_norm_sq(x), row_norm_sq(x), dot_unrolled(x, x))` cancels
/// to exactly zero for self-pairs. Dispatches to the widest SIMD backend
/// the CPU offers; every backend produces identical bits (see [`lanes8`]).
#[inline]
pub(crate) fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if let Some(d) = lanes8::dot(a, b) {
        return d;
    }
    dot_scalar8(a, b)
}

/// Portable reference body of the eight-lane dot chain.
#[inline]
fn dot_scalar8(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for l in 0..8 {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        acc[0] += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Four dot products against one shared `target` row, interleaved so four
/// independent eight-lane accumulator chains stream through one sweep of
/// `target`. Each row's arithmetic is element-for-element identical to
/// [`dot_unrolled`] (same lane assignment, same reduction tree), so the
/// blocked fan-out kernels can mix this with the single-row path freely
/// without changing any output bit.
#[inline]
fn dot4_to_target(rows: [&[f64]; 4], t: &[f64]) -> [f64; 4] {
    #[cfg(target_arch = "x86_64")]
    if let Some(d) = lanes8::dot4(rows, t) {
        return d;
    }
    dot4_scalar8(rows, t)
}

/// Portable reference body of the four-row interleaved dot.
#[inline]
fn dot4_scalar8(rows: [&[f64]; 4], t: &[f64]) -> [f64; 4] {
    let d = t.len();
    let main = d - d % 8;
    let mut acc = [[0.0f64; 8]; 4];
    let mut j = 0;
    while j < main {
        let tc = &t[j..j + 8];
        for (a, row) in acc.iter_mut().zip(rows) {
            let c = &row[j..j + 8];
            for l in 0..8 {
                a[l] += c[l] * tc[l];
            }
        }
        j += 8;
    }
    for jj in main..d {
        let tv = t[jj];
        for (a, row) in acc.iter_mut().zip(rows) {
            a[0] += row[jj] * tv;
        }
    }
    let red = |a: &[f64; 8]| ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
    [red(&acc[0]), red(&acc[1]), red(&acc[2]), red(&acc[3])]
}

/// Full-sweep body for the f64 element: `out[i] = gram_sq(norms[i], tsq,
/// dot(slab row i, t))` over a contiguous row-major slab. One SIMD
/// dispatch covers the whole sweep; the portable fallback interleaves four
/// eight-lane dot chains per step exactly as the pre-generic kernel did.
/// This is the body behind [`Element::sq_sweep`] for `f64`.
pub(crate) fn sq_sweep_f64(
    slab: &[f64],
    cols: usize,
    norms: &[f64],
    t: &[f64],
    tsq: f64,
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if lanes8::sq_sweep(slab, cols, norms, t, tsq, out) {
        return;
    }
    let n = out.len();
    let mut off = 0;
    while off + 4 <= n {
        let dots = dot4_to_target(
            [
                &slab[off * cols..(off + 1) * cols],
                &slab[(off + 1) * cols..(off + 2) * cols],
                &slab[(off + 2) * cols..(off + 3) * cols],
                &slab[(off + 3) * cols..(off + 4) * cols],
            ],
            t,
        );
        for (r, &dot) in dots.iter().enumerate() {
            out[off + r] = gram_sq(norms[off + r], tsq, dot);
        }
        off += 4;
    }
    for (off, slot) in out.iter_mut().enumerate().skip(off) {
        *slot = gram_sq(
            norms[off],
            tsq,
            dot_unrolled(&slab[off * cols..(off + 1) * cols], t),
        );
    }
}

/// Gathered-sweep body for the f64 element (the [`Element::sq_sweep_indexed`]
/// impl): `out[i]` pairs row `indices[i]` of the full `points` slab with
/// `t`; `norms` covers all rows.
pub(crate) fn sq_sweep_indexed_f64(
    points: &[f64],
    cols: usize,
    norms: &[f64],
    indices: &[usize],
    t: &[f64],
    tsq: f64,
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if lanes8::sq_sweep_indexed(points, cols, norms, indices, t, tsq, out) {
        return;
    }
    let mut off = 0;
    while off + 4 <= out.len() {
        let ix = &indices[off..off + 4];
        let dots = dot4_to_target(
            [
                &points[ix[0] * cols..(ix[0] + 1) * cols],
                &points[ix[1] * cols..(ix[1] + 1) * cols],
                &points[ix[2] * cols..(ix[2] + 1) * cols],
                &points[ix[3] * cols..(ix[3] + 1) * cols],
            ],
            t,
        );
        for (r, &dot) in dots.iter().enumerate() {
            out[off + r] = gram_sq(norms[ix[r]], tsq, dot);
        }
        off += 4;
    }
    for (off, slot) in out.iter_mut().enumerate().skip(off) {
        let v = indices[off];
        *slot = gram_sq(
            norms[v],
            tsq,
            dot_unrolled(&points[v * cols..(v + 1) * cols], t),
        );
    }
}

/// f32 dot product over a fixed **sixteen**-lane chain (one 64-byte cache
/// line of f32s per step): `acc[l] += a[16j+l] * b[16j+l]`, remainder
/// folded into lane 0, reduced by the fixed four-level pairwise tree of
/// [`reduce16`]. The f32 analogue of [`dot_unrolled`]; every backend in
/// [`lanes16`] evaluates the identical arithmetic, so f32 results are
/// bitwise reproducible across Scalar/AVX/AVX-512 just like f64.
#[inline]
pub(crate) fn dot_unrolled_f32(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if let Some(d) = lanes16::dot(a, b) {
        return d;
    }
    dot_scalar16(a, b)
}

/// Portable reference body of the sixteen-lane f32 dot chain.
#[inline]
fn dot_scalar16(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 16];
    let mut ac = a.chunks_exact(16);
    let mut bc = b.chunks_exact(16);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for l in 0..16 {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        acc[0] += x * y;
    }
    reduce16(&acc)
}

/// Fixed pairwise reduction tree over sixteen f32 lanes; shared by the
/// portable chain and every SIMD backend (which store their register
/// lanes and reduce through this same expression).
#[inline]
fn reduce16(a: &[f32; 16]) -> f32 {
    let q0 = (a[0] + a[1]) + (a[2] + a[3]);
    let q1 = (a[4] + a[5]) + (a[6] + a[7]);
    let q2 = (a[8] + a[9]) + (a[10] + a[11]);
    let q3 = (a[12] + a[13]) + (a[14] + a[15]);
    (q0 + q1) + (q2 + q3)
}

/// f32 full-sweep body (the [`Element::sq_sweep`] impl for `f32`).
pub(crate) fn sq_sweep_f32(
    slab: &[f32],
    cols: usize,
    norms: &[f32],
    t: &[f32],
    tsq: f32,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if lanes16::sq_sweep(slab, cols, norms, t, tsq, out) {
        return;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = gram_sq(
            norms[i],
            tsq,
            dot_scalar16(&slab[i * cols..(i + 1) * cols], t),
        );
    }
}

/// f32 gathered-sweep body (the [`Element::sq_sweep_indexed`] impl for
/// `f32`).
pub(crate) fn sq_sweep_indexed_f32(
    points: &[f32],
    cols: usize,
    norms: &[f32],
    indices: &[usize],
    t: &[f32],
    tsq: f32,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if lanes16::sq_sweep_indexed(points, cols, norms, indices, t, tsq, out) {
        return;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let v = indices[i];
        *slot = gram_sq(
            norms[v],
            tsq,
            dot_scalar16(&points[v * cols..(v + 1) * cols], t),
        );
    }
}

/// Explicit SIMD backends for the eight-lane dot chains.
///
/// The auto-vectorizer refuses to pack the strict-FP lane accumulators
/// (it costs them as a serial reduction), so the hot dots here are written
/// with `std::arch` intrinsics and selected once per process by runtime
/// feature detection. Every backend evaluates *exactly* the arithmetic of
/// [`dot_scalar8`]: lane `l` accumulates `a[8j+l] * b[8j+l]` with separate
/// mul and add (never FMA — contraction would change rounding), the
/// remainder folds into lane 0 after the main loop, and the final reduce
/// uses the same fixed pairwise tree. Results are therefore bitwise
/// identical across Scalar, AVX, and AVX-512, and the determinism
/// contract never observes which backend ran.
// Scoped allowance mirroring `par`: the unsafety is confined to
// feature-gated intrinsics whose loads stay inside slice bounds (the main
// loop covers `len - len % 8` elements) and which are only callable after
// `isa()` has proven the feature exists.
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
mod lanes8 {
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Isa {
        Avx512,
        Avx,
        Scalar,
    }

    /// Widest usable backend, detected once per process.
    fn isa() -> Isa {
        static ISA: OnceLock<Isa> = OnceLock::new();
        *ISA.get_or_init(|| {
            if is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if is_x86_feature_detected!("avx") {
                Isa::Avx
            } else {
                Isa::Scalar
            }
        })
    }

    /// Safe dispatcher: `Some(dot)` from the widest SIMD backend, `None`
    /// when the CPU offers neither AVX-512 nor AVX (caller falls back to
    /// the portable chain).
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> Option<f64> {
        match isa() {
            Isa::Avx512 => Some(unsafe { dot_avx512(a, b) }),
            Isa::Avx => Some(unsafe { dot_avx(a, b) }),
            Isa::Scalar => None,
        }
    }

    /// Safe dispatcher for the four-row interleaved dot; `None` as [`dot`].
    #[inline]
    pub fn dot4(rows: [&[f64]; 4], t: &[f64]) -> Option<[f64; 4]> {
        match isa() {
            Isa::Avx512 => Some(unsafe { dot4_avx512(rows, t) }),
            Isa::Avx => Some(unsafe { dot4_avx(rows, t) }),
            Isa::Scalar => None,
        }
    }

    /// Safe dispatcher for a whole contiguous fan-out sweep:
    /// `out[i] = gram_sq(norms[i], tsq, dot(row i, t))` over the rows of the
    /// row-major `points` slab. One runtime dispatch covers the entire
    /// sweep (the per-four-rows dispatch and call overhead of [`dot4`] is
    /// what this exists to amortize). Returns `false` when the CPU offers
    /// no SIMD backend, leaving `out` untouched for the portable path.
    ///
    /// Per-row arithmetic is the same eight-lane chain as [`dot`]/[`dot4`]
    /// at any block position, so results are bitwise identical to the
    /// portable path and independent of where chunk boundaries fall.
    pub fn sq_sweep(
        points: &[f64],
        cols: usize,
        norms: &[f64],
        t: &[f64],
        tsq: f64,
        out: &mut [f64],
    ) -> bool {
        assert_eq!(out.len(), norms.len(), "sq_sweep: norms/out mismatch");
        assert_eq!(points.len(), out.len() * cols, "sq_sweep: slab shape");
        match isa() {
            Isa::Avx512 => unsafe { sweep_avx512(points, cols, norms, t, tsq, out) },
            Isa::Avx => unsafe { sweep_avx(points, cols, norms, t, tsq, out) },
            Isa::Scalar => return false,
        }
        true
    }

    /// As [`sq_sweep`] over an index subset: `out[i]` pairs
    /// `points.row(indices[i])` with `t`. `norms` covers all rows of the
    /// slab. Out-of-range indices panic (slice checks inside the kernels).
    pub fn sq_sweep_indexed(
        points: &[f64],
        cols: usize,
        norms: &[f64],
        indices: &[usize],
        t: &[f64],
        tsq: f64,
        out: &mut [f64],
    ) -> bool {
        assert_eq!(out.len(), indices.len(), "sq_sweep_indexed: out length");
        match isa() {
            Isa::Avx512 => unsafe {
                sweep_indexed_avx512(points, cols, norms, indices, t, tsq, out)
            },
            Isa::Avx => unsafe { sweep_indexed_avx(points, cols, norms, indices, t, tsq, out) },
            Isa::Scalar => return false,
        }
        true
    }

    #[inline]
    fn reduce8(l: &[f64; 8]) -> f64 {
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }

    /// In-register evaluation of the [`reduce8`] pairwise tree: each add
    /// has the same two operands in the same order, only performed with
    /// shuffles instead of extracted scalars, so the result bits match.
    ///
    /// # Safety
    /// Caller must have verified `avx512f` support.
    #[target_feature(enable = "avx512f")]
    unsafe fn reduce_tree_512(acc: __m512d) -> f64 {
        // Swap adjacent elements: lane 2i holds l[2i+1] afterwards.
        let sw = _mm512_permute_pd(acc, 0x55);
        // p lane 2i = l[2i] + l[2i+1].
        let p = _mm512_add_pd(acc, sw);
        // q lane 0 = p0 + p2, q lane 4 = p4 + p6.
        let idx = _mm512_setr_epi64(2, 0, 0, 0, 6, 0, 0, 0);
        let q = _mm512_add_pd(p, _mm512_permutexvar_pd(idx, p));
        let lo = _mm512_castpd512_pd256(q);
        let hi = _mm512_extractf64x4_pd::<1>(q);
        // Final add: left half-tree + right half-tree.
        _mm_cvtsd_f64(_mm_add_sd(
            _mm256_castpd256_pd128(lo),
            _mm256_castpd256_pd128(hi),
        ))
    }

    /// As [`reduce_tree_512`] for the split 256-bit accumulator pair
    /// (`lo` = lanes 0..4, `hi` = lanes 4..8).
    ///
    /// # Safety
    /// Caller must have verified `avx` support.
    #[target_feature(enable = "avx")]
    unsafe fn reduce_tree_256(lo: __m256d, hi: __m256d) -> f64 {
        // Per half: lane 0 = l[0]+l[1], lane 2 = l[2]+l[3].
        let plo = _mm256_add_pd(lo, _mm256_permute_pd(lo, 0x5));
        let phi = _mm256_add_pd(hi, _mm256_permute_pd(hi, 0x5));
        let l = _mm_add_sd(_mm256_castpd256_pd128(plo), _mm256_extractf128_pd::<1>(plo));
        let r = _mm_add_sd(_mm256_castpd256_pd128(phi), _mm256_extractf128_pd::<1>(phi));
        _mm_cvtsd_f64(_mm_add_sd(l, r))
    }

    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn dot_avx512(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let main = n - n % 8;
        let mut acc = _mm512_setzero_pd();
        let mut j = 0;
        while j < main {
            let va = _mm512_loadu_pd(a.as_ptr().add(j));
            let vb = _mm512_loadu_pd(b.as_ptr().add(j));
            acc = _mm512_add_pd(acc, _mm512_mul_pd(va, vb));
            j += 8;
        }
        if main == n {
            return reduce_tree_512(acc);
        }
        let mut lanes = [0.0f64; 8];
        _mm512_storeu_pd(lanes.as_mut_ptr(), acc);
        for jj in main..n {
            lanes[0] += a[jj] * b[jj];
        }
        reduce8(&lanes)
    }

    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn dot4_avx512(rows: [&[f64]; 4], t: &[f64]) -> [f64; 4] {
        let d = t.len();
        let main = d - d % 8;
        let mut acc = [_mm512_setzero_pd(); 4];
        let mut j = 0;
        while j < main {
            let vt = _mm512_loadu_pd(t.as_ptr().add(j));
            for (a, row) in acc.iter_mut().zip(rows) {
                let vr = _mm512_loadu_pd(row.as_ptr().add(j));
                *a = _mm512_add_pd(*a, _mm512_mul_pd(vr, vt));
            }
            j += 8;
        }
        let mut out = [0.0f64; 4];
        for (r, a) in acc.iter().enumerate() {
            if main == d {
                out[r] = reduce_tree_512(*a);
                continue;
            }
            let mut lanes = [0.0f64; 8];
            _mm512_storeu_pd(lanes.as_mut_ptr(), *a);
            for jj in main..d {
                lanes[0] += rows[r][jj] * t[jj];
            }
            out[r] = reduce8(&lanes);
        }
        out
    }

    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn dot_avx(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let main = n - n % 8;
        // Lanes 0..4 live in `lo`, lanes 4..8 in `hi` — same per-lane
        // chains as one 512-bit register split in half.
        let mut lo = _mm256_setzero_pd();
        let mut hi = _mm256_setzero_pd();
        let mut j = 0;
        while j < main {
            let al = _mm256_loadu_pd(a.as_ptr().add(j));
            let bl = _mm256_loadu_pd(b.as_ptr().add(j));
            lo = _mm256_add_pd(lo, _mm256_mul_pd(al, bl));
            let ah = _mm256_loadu_pd(a.as_ptr().add(j + 4));
            let bh = _mm256_loadu_pd(b.as_ptr().add(j + 4));
            hi = _mm256_add_pd(hi, _mm256_mul_pd(ah, bh));
            j += 8;
        }
        if main == n {
            return reduce_tree_256(lo, hi);
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), lo);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi);
        for jj in main..n {
            lanes[0] += a[jj] * b[jj];
        }
        reduce8(&lanes)
    }

    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn dot4_avx(rows: [&[f64]; 4], t: &[f64]) -> [f64; 4] {
        let d = t.len();
        let main = d - d % 8;
        let mut lo = [_mm256_setzero_pd(); 4];
        let mut hi = [_mm256_setzero_pd(); 4];
        let mut j = 0;
        while j < main {
            let tl = _mm256_loadu_pd(t.as_ptr().add(j));
            let th = _mm256_loadu_pd(t.as_ptr().add(j + 4));
            for r in 0..4 {
                let rl = _mm256_loadu_pd(rows[r].as_ptr().add(j));
                lo[r] = _mm256_add_pd(lo[r], _mm256_mul_pd(rl, tl));
                let rh = _mm256_loadu_pd(rows[r].as_ptr().add(j + 4));
                hi[r] = _mm256_add_pd(hi[r], _mm256_mul_pd(rh, th));
            }
            j += 8;
        }
        let mut out = [0.0f64; 4];
        for r in 0..4 {
            if main == d {
                out[r] = reduce_tree_256(lo[r], hi[r]);
                continue;
            }
            let mut lanes = [0.0f64; 8];
            _mm256_storeu_pd(lanes.as_mut_ptr(), lo[r]);
            _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi[r]);
            for jj in main..d {
                lanes[0] += rows[r][jj] * t[jj];
            }
            out[r] = reduce8(&lanes);
        }
        out
    }

    /// Eight-row interleaved sweep body: eight independent accumulator
    /// chains (AVX-512 has 32 vector registers; ten live here) stream one
    /// load of each `t` block. Per-row arithmetic matches [`dot_avx512`].
    ///
    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn sweep_avx512(
        points: &[f64],
        cols: usize,
        norms: &[f64],
        t: &[f64],
        tsq: f64,
        out: &mut [f64],
    ) {
        let n = out.len();
        let main = cols - cols % 8;
        let mut i = 0;
        while i + 8 <= n {
            let block = &points[i * cols..(i + 8) * cols];
            let mut acc = [_mm512_setzero_pd(); 8];
            let mut j = 0;
            while j < main {
                let vt = _mm512_loadu_pd(t.as_ptr().add(j));
                for (r, a) in acc.iter_mut().enumerate() {
                    let vr = _mm512_loadu_pd(block.as_ptr().add(r * cols + j));
                    *a = _mm512_add_pd(*a, _mm512_mul_pd(vr, vt));
                }
                j += 8;
            }
            for (r, a) in acc.iter().enumerate() {
                let dot = if main == cols {
                    reduce_tree_512(*a)
                } else {
                    let mut lanes = [0.0f64; 8];
                    _mm512_storeu_pd(lanes.as_mut_ptr(), *a);
                    for jj in main..cols {
                        lanes[0] += block[r * cols + jj] * t[jj];
                    }
                    reduce8(&lanes)
                };
                out[i + r] = super::gram_sq(norms[i + r], tsq, dot);
            }
            i += 8;
        }
        while i < n {
            let row = &points[i * cols..(i + 1) * cols];
            out[i] = super::gram_sq(norms[i], tsq, dot_avx512(row, t));
            i += 1;
        }
    }

    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn sweep_avx(
        points: &[f64],
        cols: usize,
        norms: &[f64],
        t: &[f64],
        tsq: f64,
        out: &mut [f64],
    ) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            let rows = [
                &points[i * cols..(i + 1) * cols],
                &points[(i + 1) * cols..(i + 2) * cols],
                &points[(i + 2) * cols..(i + 3) * cols],
                &points[(i + 3) * cols..(i + 4) * cols],
            ];
            let dots = dot4_avx(rows, t);
            for (r, &dot) in dots.iter().enumerate() {
                out[i + r] = super::gram_sq(norms[i + r], tsq, dot);
            }
            i += 4;
        }
        while i < n {
            let row = &points[i * cols..(i + 1) * cols];
            out[i] = super::gram_sq(norms[i], tsq, dot_avx(row, t));
            i += 1;
        }
    }

    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn sweep_indexed_avx512(
        points: &[f64],
        cols: usize,
        norms: &[f64],
        indices: &[usize],
        t: &[f64],
        tsq: f64,
        out: &mut [f64],
    ) {
        let n = out.len();
        let main = cols - cols % 8;
        let mut i = 0;
        while i + 8 <= n {
            let ix = &indices[i..i + 8];
            let mut rows = [&points[..0]; 8];
            for (r, slot) in rows.iter_mut().enumerate() {
                let v = ix[r];
                *slot = &points[v * cols..(v + 1) * cols];
            }
            let mut acc = [_mm512_setzero_pd(); 8];
            let mut j = 0;
            while j < main {
                let vt = _mm512_loadu_pd(t.as_ptr().add(j));
                for (a, row) in acc.iter_mut().zip(rows) {
                    let vr = _mm512_loadu_pd(row.as_ptr().add(j));
                    *a = _mm512_add_pd(*a, _mm512_mul_pd(vr, vt));
                }
                j += 8;
            }
            for (r, a) in acc.iter().enumerate() {
                let dot = if main == cols {
                    reduce_tree_512(*a)
                } else {
                    let mut lanes = [0.0f64; 8];
                    _mm512_storeu_pd(lanes.as_mut_ptr(), *a);
                    for jj in main..cols {
                        lanes[0] += rows[r][jj] * t[jj];
                    }
                    reduce8(&lanes)
                };
                out[i + r] = super::gram_sq(norms[ix[r]], tsq, dot);
            }
            i += 8;
        }
        while i < n {
            let v = indices[i];
            let row = &points[v * cols..(v + 1) * cols];
            out[i] = super::gram_sq(norms[v], tsq, dot_avx512(row, t));
            i += 1;
        }
    }

    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn sweep_indexed_avx(
        points: &[f64],
        cols: usize,
        norms: &[f64],
        indices: &[usize],
        t: &[f64],
        tsq: f64,
        out: &mut [f64],
    ) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            let ix = &indices[i..i + 4];
            let rows = [
                &points[ix[0] * cols..(ix[0] + 1) * cols],
                &points[ix[1] * cols..(ix[1] + 1) * cols],
                &points[ix[2] * cols..(ix[2] + 1) * cols],
                &points[ix[3] * cols..(ix[3] + 1) * cols],
            ];
            let dots = dot4_avx(rows, t);
            for (r, &dot) in dots.iter().enumerate() {
                out[i + r] = super::gram_sq(norms[ix[r]], tsq, dot);
            }
            i += 4;
        }
        while i < n {
            let v = indices[i];
            let row = &points[v * cols..(v + 1) * cols];
            out[i] = super::gram_sq(norms[v], tsq, dot_avx(row, t));
            i += 1;
        }
    }
}

/// Explicit SIMD backends for the sixteen-lane f32 dot chains: the f32
/// counterpart of [`lanes8`], with twice the elements per 64-byte line.
///
/// Every backend evaluates exactly the arithmetic of [`dot_scalar16`]:
/// lane `l` accumulates `a[16j+l] * b[16j+l]` with separate mul and add
/// (never FMA), the remainder folds into lane 0, and the final reduce
/// stores the register lanes and applies the fixed [`reduce16`] pairwise
/// tree. f32 results are therefore bitwise identical across Scalar, AVX,
/// and AVX-512 backends, mirroring the f64 determinism contract at the
/// lower precision.
// Same scoped allowance as `lanes8`: feature-gated intrinsics whose loads
// stay inside slice bounds and which only run after `isa()` has proven
// the feature exists.
#[allow(unsafe_code)]
#[cfg(target_arch = "x86_64")]
mod lanes16 {
    use super::reduce16;
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Isa {
        Avx512,
        Avx,
        Scalar,
    }

    /// Widest usable backend, detected once per process.
    fn isa() -> Isa {
        static ISA: OnceLock<Isa> = OnceLock::new();
        *ISA.get_or_init(|| {
            if is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if is_x86_feature_detected!("avx") {
                Isa::Avx
            } else {
                Isa::Scalar
            }
        })
    }

    /// Safe dispatcher: `Some(dot)` from the widest SIMD backend, `None`
    /// when the CPU offers neither AVX-512 nor AVX.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> Option<f32> {
        match isa() {
            Isa::Avx512 => Some(unsafe { dot_avx512(a, b) }),
            Isa::Avx => Some(unsafe { dot_avx(a, b) }),
            Isa::Scalar => None,
        }
    }

    /// Whole-sweep dispatcher, mirroring [`super::lanes8::sq_sweep`] for
    /// f32. Returns `false` (leaving `out` untouched) when no SIMD
    /// backend exists.
    pub fn sq_sweep(
        points: &[f32],
        cols: usize,
        norms: &[f32],
        t: &[f32],
        tsq: f32,
        out: &mut [f32],
    ) -> bool {
        assert_eq!(out.len(), norms.len(), "sq_sweep: norms/out mismatch");
        assert_eq!(points.len(), out.len() * cols, "sq_sweep: slab shape");
        match isa() {
            Isa::Avx512 => unsafe { sweep_avx512(points, cols, norms, t, tsq, out) },
            Isa::Avx => unsafe { sweep_avx(points, cols, norms, t, tsq, out) },
            Isa::Scalar => return false,
        }
        true
    }

    /// Gathered-sweep dispatcher, mirroring
    /// [`super::lanes8::sq_sweep_indexed`] for f32.
    pub fn sq_sweep_indexed(
        points: &[f32],
        cols: usize,
        norms: &[f32],
        indices: &[usize],
        t: &[f32],
        tsq: f32,
        out: &mut [f32],
    ) -> bool {
        assert_eq!(out.len(), indices.len(), "sq_sweep_indexed: out length");
        match isa() {
            Isa::Avx512 => unsafe {
                sweep_indexed_avx512(points, cols, norms, indices, t, tsq, out)
            },
            Isa::Avx => unsafe { sweep_indexed_avx(points, cols, norms, indices, t, tsq, out) },
            Isa::Scalar => return false,
        }
        true
    }

    /// Register-lane spill + fixed-tree reduce, shared by both ISA widths
    /// so the reduction order can't drift between them.
    ///
    /// # Safety
    /// Caller must have verified `avx512f` support.
    #[target_feature(enable = "avx512f")]
    unsafe fn reduce_512(acc: __m512) -> f32 {
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), acc);
        reduce16(&lanes)
    }

    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let main = n - n % 16;
        let mut acc = _mm512_setzero_ps();
        let mut j = 0;
        while j < main {
            let va = _mm512_loadu_ps(a.as_ptr().add(j));
            let vb = _mm512_loadu_ps(b.as_ptr().add(j));
            acc = _mm512_add_ps(acc, _mm512_mul_ps(va, vb));
            j += 16;
        }
        if main == n {
            return reduce_512(acc);
        }
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), acc);
        for jj in main..n {
            lanes[0] += a[jj] * b[jj];
        }
        reduce16(&lanes)
    }

    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn dot_avx(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let main = n - n % 16;
        // Lanes 0..8 live in `lo`, lanes 8..16 in `hi` — the same per-lane
        // chains as one 512-bit register split in half.
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let mut j = 0;
        while j < main {
            let al = _mm256_loadu_ps(a.as_ptr().add(j));
            let bl = _mm256_loadu_ps(b.as_ptr().add(j));
            lo = _mm256_add_ps(lo, _mm256_mul_ps(al, bl));
            let ah = _mm256_loadu_ps(a.as_ptr().add(j + 8));
            let bh = _mm256_loadu_ps(b.as_ptr().add(j + 8));
            hi = _mm256_add_ps(hi, _mm256_mul_ps(ah, bh));
            j += 16;
        }
        let mut lanes = [0.0f32; 16];
        _mm256_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(8), hi);
        for jj in main..n {
            lanes[0] += a[jj] * b[jj];
        }
        reduce16(&lanes)
    }

    /// Eight-row interleaved f32 sweep: eight independent accumulator
    /// chains stream one load of each sixteen-element `t` block, matching
    /// the structure (and per-row bits) of [`dot_avx512`].
    ///
    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn sweep_avx512(
        points: &[f32],
        cols: usize,
        norms: &[f32],
        t: &[f32],
        tsq: f32,
        out: &mut [f32],
    ) {
        let n = out.len();
        let main = cols - cols % 16;
        let mut i = 0;
        while i + 8 <= n {
            let block = &points[i * cols..(i + 8) * cols];
            let mut acc = [_mm512_setzero_ps(); 8];
            let mut j = 0;
            while j < main {
                let vt = _mm512_loadu_ps(t.as_ptr().add(j));
                for (r, a) in acc.iter_mut().enumerate() {
                    let vr = _mm512_loadu_ps(block.as_ptr().add(r * cols + j));
                    *a = _mm512_add_ps(*a, _mm512_mul_ps(vr, vt));
                }
                j += 16;
            }
            for (r, a) in acc.iter().enumerate() {
                let dot = if main == cols {
                    reduce_512(*a)
                } else {
                    let mut lanes = [0.0f32; 16];
                    _mm512_storeu_ps(lanes.as_mut_ptr(), *a);
                    for jj in main..cols {
                        lanes[0] += block[r * cols + jj] * t[jj];
                    }
                    reduce16(&lanes)
                };
                out[i + r] = super::gram_sq(norms[i + r], tsq, dot);
            }
            i += 8;
        }
        while i < n {
            let row = &points[i * cols..(i + 1) * cols];
            out[i] = super::gram_sq(norms[i], tsq, dot_avx512(row, t));
            i += 1;
        }
    }

    /// Four-row interleaved f32 sweep for the AVX width (lo/hi ymm pair
    /// per row, eight accumulators plus two `t` registers live).
    ///
    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn sweep_avx(
        points: &[f32],
        cols: usize,
        norms: &[f32],
        t: &[f32],
        tsq: f32,
        out: &mut [f32],
    ) {
        let n = out.len();
        let main = cols - cols % 16;
        let mut i = 0;
        while i + 4 <= n {
            let block = &points[i * cols..(i + 4) * cols];
            let mut lo = [_mm256_setzero_ps(); 4];
            let mut hi = [_mm256_setzero_ps(); 4];
            let mut j = 0;
            while j < main {
                let tl = _mm256_loadu_ps(t.as_ptr().add(j));
                let th = _mm256_loadu_ps(t.as_ptr().add(j + 8));
                for r in 0..4 {
                    let rl = _mm256_loadu_ps(block.as_ptr().add(r * cols + j));
                    lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(rl, tl));
                    let rh = _mm256_loadu_ps(block.as_ptr().add(r * cols + j + 8));
                    hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(rh, th));
                }
                j += 16;
            }
            for r in 0..4 {
                let mut lanes = [0.0f32; 16];
                _mm256_storeu_ps(lanes.as_mut_ptr(), lo[r]);
                _mm256_storeu_ps(lanes.as_mut_ptr().add(8), hi[r]);
                for jj in main..cols {
                    lanes[0] += block[r * cols + jj] * t[jj];
                }
                out[i + r] = super::gram_sq(norms[i + r], tsq, reduce16(&lanes));
            }
            i += 4;
        }
        while i < n {
            let row = &points[i * cols..(i + 1) * cols];
            out[i] = super::gram_sq(norms[i], tsq, dot_avx(row, t));
            i += 1;
        }
    }

    /// # Safety
    /// Caller must have verified `avx512f` support (see [`isa`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn sweep_indexed_avx512(
        points: &[f32],
        cols: usize,
        norms: &[f32],
        indices: &[usize],
        t: &[f32],
        tsq: f32,
        out: &mut [f32],
    ) {
        let n = out.len();
        let main = cols - cols % 16;
        let mut i = 0;
        while i + 8 <= n {
            let ix = &indices[i..i + 8];
            let mut rows = [&points[..0]; 8];
            for (r, slot) in rows.iter_mut().enumerate() {
                let v = ix[r];
                *slot = &points[v * cols..(v + 1) * cols];
            }
            let mut acc = [_mm512_setzero_ps(); 8];
            let mut j = 0;
            while j < main {
                let vt = _mm512_loadu_ps(t.as_ptr().add(j));
                for (a, row) in acc.iter_mut().zip(rows) {
                    let vr = _mm512_loadu_ps(row.as_ptr().add(j));
                    *a = _mm512_add_ps(*a, _mm512_mul_ps(vr, vt));
                }
                j += 16;
            }
            for (r, a) in acc.iter().enumerate() {
                let dot = if main == cols {
                    reduce_512(*a)
                } else {
                    let mut lanes = [0.0f32; 16];
                    _mm512_storeu_ps(lanes.as_mut_ptr(), *a);
                    for jj in main..cols {
                        lanes[0] += rows[r][jj] * t[jj];
                    }
                    reduce16(&lanes)
                };
                out[i + r] = super::gram_sq(norms[ix[r]], tsq, dot);
            }
            i += 8;
        }
        while i < n {
            let v = indices[i];
            let row = &points[v * cols..(v + 1) * cols];
            out[i] = super::gram_sq(norms[v], tsq, dot_avx512(row, t));
            i += 1;
        }
    }

    /// # Safety
    /// Caller must have verified `avx` support (see [`isa`]).
    #[target_feature(enable = "avx")]
    unsafe fn sweep_indexed_avx(
        points: &[f32],
        cols: usize,
        norms: &[f32],
        indices: &[usize],
        t: &[f32],
        tsq: f32,
        out: &mut [f32],
    ) {
        let n = out.len();
        let main = cols - cols % 16;
        let mut i = 0;
        while i + 4 <= n {
            let ix = &indices[i..i + 4];
            let rows = [
                &points[ix[0] * cols..(ix[0] + 1) * cols],
                &points[ix[1] * cols..(ix[1] + 1) * cols],
                &points[ix[2] * cols..(ix[2] + 1) * cols],
                &points[ix[3] * cols..(ix[3] + 1) * cols],
            ];
            let mut lo = [_mm256_setzero_ps(); 4];
            let mut hi = [_mm256_setzero_ps(); 4];
            let mut j = 0;
            while j < main {
                let tl = _mm256_loadu_ps(t.as_ptr().add(j));
                let th = _mm256_loadu_ps(t.as_ptr().add(j + 8));
                for r in 0..4 {
                    let rl = _mm256_loadu_ps(rows[r].as_ptr().add(j));
                    lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(rl, tl));
                    let rh = _mm256_loadu_ps(rows[r].as_ptr().add(j + 8));
                    hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(rh, th));
                }
                j += 16;
            }
            for r in 0..4 {
                let mut lanes = [0.0f32; 16];
                _mm256_storeu_ps(lanes.as_mut_ptr(), lo[r]);
                _mm256_storeu_ps(lanes.as_mut_ptr().add(8), hi[r]);
                for jj in main..cols {
                    lanes[0] += rows[r][jj] * t[jj];
                }
                out[i + r] = super::gram_sq(norms[ix[r]], tsq, reduce16(&lanes));
            }
            i += 4;
        }
        while i < n {
            let v = indices[i];
            let row = &points[v * cols..(v + 1) * cols];
            out[i] = super::gram_sq(norms[v], tsq, dot_avx(row, t));
            i += 1;
        }
    }
}

/// Assembles a squared distance from the Gram identity, clamping the
/// round-off that can drive `|x|² + |y|² − 2·x·y` a hair below zero. The
/// expression order is fixed so every caller produces identical bits for
/// identical `(na, nb, dot)` at either precision.
#[inline]
pub(crate) fn gram_sq<E: Element>(na: E, nb: E, dot: E) -> E {
    let v = na + nb - E::from_f64(2.0) * dot;
    if v < E::ZERO {
        E::ZERO
    } else {
        v
    }
}

/// Writes `|xᵢ|²` for every row `i` of `points` into `out` (resized in
/// place). Parallel over row chunks; one writer per slot.
pub fn row_norms_sq_into<E: Element>(points: &crate::Matrix<E>, out: &mut Vec<E>) {
    let n = points.rows();
    out.clear();
    out.resize(n, E::ZERO);
    gale_obs::counter_add!("kernel.rownorms.calls", 1);
    crate::par::par_chunks_mut(out, 1, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = row_norm_sq(points.row(start + off));
        }
    });
}

/// [`row_norms_sq_into`] returning a fresh vector.
pub fn row_norms_sq<E: Element>(points: &crate::Matrix<E>) -> Vec<E> {
    let mut out = Vec::new();
    row_norms_sq_into(points, &mut out);
    out
}

/// Blocked `x.rows() x y.rows()` matrix of **squared** Euclidean distances
/// between the rows of `x` and the rows of `y`, with the row norms
/// supplied by the caller (`xn[i] = |xᵢ|²`, `yn[j] = |yⱼ|²`, as produced
/// by [`row_norms_sq_into`]).
///
/// The Gram product `x·yᵀ` goes through the register-tiled GEMM directly
/// into `out`, then a second parallel pass rewrites each element as
/// `xn[i] + yn[j] − 2·g[i][j]` clamped at zero. Under `GALE_EXACT_DIST=1`
/// the whole matrix is instead filled with scalar [`squared_euclidean`]
/// calls.
pub fn pairwise_sq_with_norms_into<E: Element>(
    x: &crate::Matrix<E>,
    y: &crate::Matrix<E>,
    xn: &[E],
    yn: &[E],
    out: &mut crate::Matrix<E>,
) {
    assert_eq!(x.cols(), y.cols(), "pairwise_sq: dim mismatch");
    assert_eq!(xn.len(), x.rows(), "pairwise_sq: xn length");
    assert_eq!(yn.len(), y.rows(), "pairwise_sq: yn length");
    let (n, m) = (x.rows(), y.rows());
    gale_obs::counter_add!("kernel.pairwise_sq.calls", 1);
    gale_obs::counter_add!(
        "kernel.pairwise_sq.flops",
        (n * m * (2 * x.cols() + 3)) as u64
    );
    if exact_dist_mode() {
        out.resize(n, m);
        crate::par::par_chunks_mut(out.data_mut(), m.max(1), |start, block| {
            let first_row = start / m.max(1);
            for (b, orow) in block.chunks_mut(m).enumerate() {
                let i = first_row + b;
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = squared_euclidean_e(x.row(i), y.row(j));
                }
            }
        });
        return;
    }
    x.matmul_nt_into(y, out);
    crate::par::par_chunks_mut(out.data_mut(), m.max(1), |start, block| {
        let first_row = start / m.max(1);
        for (b, orow) in block.chunks_mut(m).enumerate() {
            let na = xn[first_row + b];
            for (o, &nb) in orow.iter_mut().zip(yn) {
                *o = gram_sq(na, nb, *o);
            }
        }
    });
}

/// [`pairwise_sq_with_norms_into`] computing the norms itself, with the
/// two norm buffers drawn from (and returned to) a [`crate::Workspace`].
pub fn pairwise_sq_into<E: Element>(
    x: &crate::Matrix<E>,
    y: &crate::Matrix<E>,
    ws: &mut crate::Workspace<E>,
    out: &mut crate::Matrix<E>,
) {
    let mut xn = ws.take_vec(x.rows());
    let mut yn = ws.take_vec(y.rows());
    row_norms_sq_into(x, &mut xn);
    row_norms_sq_into(y, &mut yn);
    pairwise_sq_with_norms_into(x, y, &xn, &yn, out);
    ws.give_vec(xn);
    ws.give_vec(yn);
}

/// Euclidean distance from every row of `points` to one `target` row:
/// `out[i] = d(pointsᵢ, target)`, with `norms[i] = |pointsᵢ|²` and
/// `target_sq = |target|²` precomputed. `out.len()` must equal
/// `points.rows()`. One four-lane dot per row; parallel over chunks.
pub fn dists_to_row_into<E: Element>(
    points: &crate::Matrix<E>,
    norms: &[E],
    target: &[E],
    target_sq: E,
    out: &mut [E],
) {
    assert_eq!(out.len(), points.rows(), "dists_to_row: out length");
    assert_eq!(norms.len(), points.rows(), "dists_to_row: norms length");
    gale_obs::counter_add!("kernel.dist_row.calls", 1);
    gale_obs::counter_add!(
        "kernel.dist_row.flops",
        (points.rows() * (2 * points.cols() + 4)) as u64
    );
    let exact = exact_dist_mode();
    crate::par::par_chunks_mut(out, 1, |start, chunk| {
        if exact {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = squared_euclidean_e(points.row(start + off), target).sqrt();
            }
            return;
        }
        // Two passes per chunk: Gram-trick squared distances first (the
        // element type's interleaved dot chains), then a dependence-free
        // sqrt sweep the vectorizer can pack.
        fill_sq_to_row(points, norms, target, target_sq, start, chunk);
        for slot in chunk.iter_mut() {
            *slot = slot.sqrt();
        }
    });
}

/// Core of the contiguous fan-out: writes Gram-trick **squared** distances
/// for rows `start..start + chunk.len()` of `points` against `target`,
/// through the element type's whole-sweep kernel
/// ([`Element::sq_sweep`]).
#[inline]
fn fill_sq_to_row<E: Element>(
    points: &crate::Matrix<E>,
    norms: &[E],
    target: &[E],
    target_sq: E,
    start: usize,
    chunk: &mut [E],
) {
    let cols = points.cols();
    let slab = &points.data()[start * cols..(start + chunk.len()) * cols];
    let sub_norms = &norms[start..start + chunk.len()];
    E::sq_sweep(slab, cols, sub_norms, target, target_sq, chunk);
}

/// As [`dists_to_row_into`] but **squared** (no sqrt pass): the shape the
/// k-means++ seeding and other nearest-centroid scans consume. Same
/// determinism contract; `GALE_EXACT_DIST=1` falls back to scalar
/// [`squared_euclidean`] per pair.
pub fn sq_dists_to_row_into<E: Element>(
    points: &crate::Matrix<E>,
    norms: &[E],
    target: &[E],
    target_sq: E,
    out: &mut [E],
) {
    assert_eq!(out.len(), points.rows(), "sq_dists_to_row: out length");
    assert_eq!(norms.len(), points.rows(), "sq_dists_to_row: norms length");
    gale_obs::counter_add!("kernel.dist_row.calls", 1);
    gale_obs::counter_add!(
        "kernel.dist_row.flops",
        (points.rows() * (2 * points.cols() + 3)) as u64
    );
    let exact = exact_dist_mode();
    crate::par::par_chunks_mut(out, 1, |start, chunk| {
        if exact {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = squared_euclidean_e(points.row(start + off), target);
            }
            return;
        }
        fill_sq_to_row(points, norms, target, target_sq, start, chunk);
    });
}

/// As [`dists_to_row_into`], but over an index subset: `out[i]` is the
/// Euclidean distance from `points.row(indices[i])` to
/// `points.row(target)`. `norms` covers *all* rows of `points`. This is
/// the QSelect fan-out shape: one kernel call per greedy round instead of
/// `n` scalar distance calls.
pub fn indexed_dists_to_row_into<E: Element>(
    points: &crate::Matrix<E>,
    norms: &[E],
    indices: &[usize],
    target: usize,
    out: &mut [E],
) {
    assert_eq!(out.len(), indices.len(), "indexed_dists: out length");
    assert_eq!(norms.len(), points.rows(), "indexed_dists: norms length");
    // A full identity candidate set needs no gather: delegate to the
    // contiguous sweep, which the property tests prove bit-identical.
    if indices.len() == points.rows() && indices.iter().enumerate().all(|(i, &v)| v == i) {
        dists_to_row_into(points, norms, points.row(target), norms[target], out);
        return;
    }
    gale_obs::counter_add!("kernel.dist_row.calls", 1);
    gale_obs::counter_add!(
        "kernel.dist_row.flops",
        (indices.len() * (2 * points.cols() + 4)) as u64
    );
    let exact = exact_dist_mode();
    let trow = points.row(target);
    let tsq = norms[target];
    crate::par::par_chunks_mut(out, 1, |start, chunk| {
        if exact {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = squared_euclidean_e(points.row(indices[start + off]), trow).sqrt();
            }
            return;
        }
        fill_sq_indexed(points, norms, indices, trow, tsq, start, chunk);
        // Dependence-free sqrt sweep, vectorizable separately from the
        // gathered dot pass.
        for slot in chunk.iter_mut() {
            *slot = slot.sqrt();
        }
    });
}

/// Gathered counterpart of [`fill_sq_to_row`]: squared distances for the
/// candidate subset `indices[start..start + chunk.len()]` against the
/// (already materialized) target row, through
/// [`Element::sq_sweep_indexed`].
#[inline]
fn fill_sq_indexed<E: Element>(
    points: &crate::Matrix<E>,
    norms: &[E],
    indices: &[usize],
    trow: &[E],
    tsq: E,
    start: usize,
    chunk: &mut [E],
) {
    let sub_idx = &indices[start..start + chunk.len()];
    E::sq_sweep_indexed(
        points.data(),
        points.cols(),
        norms,
        sub_idx,
        trow,
        tsq,
        chunk,
    );
}

/// For every row `i` of `points`, the minimum Euclidean distance to any of
/// the rows indexed by `anchors` (`+inf` when `anchors` is empty). Used by
/// diversified query selection to measure how far each candidate sits from
/// the already-picked set. Parallel over row chunks; each output element is
/// written by exactly one chunk, so results are thread-count independent.
pub fn min_distance_to_anchors(points: &crate::Matrix, anchors: &[usize]) -> Vec<f64> {
    let n = points.rows();
    let mut out = vec![f64::INFINITY; n];
    crate::par::par_chunks_mut(&mut out, 1, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let i = start + off;
            for &a in anchors {
                let d = euclidean(points.row(i), points.row(a));
                if d < *slot {
                    *slot = d;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_hand_checked() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(squared_euclidean(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn manhattan_hand_checked() {
        assert_eq!(manhattan(&[1.0, 2.0], &[4.0, -2.0]), 7.0);
    }

    #[test]
    fn cosine_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine_distance(&[2.0, 0.0], &[5.0, 0.0])).abs() < 1e-12);
    }

    #[test]
    fn normalize_makes_unit() {
        let mut v = vec![3.0, 4.0];
        normalize_l2(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l2(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        // The paper's case study: Melvaceae vs Malvaceae — one substitution.
        assert_eq!(levenshtein("Melvaceae", "Malvaceae"), 1);
    }

    #[test]
    fn levenshtein_symmetric() {
        assert_eq!(
            levenshtein("graph", "graphs"),
            levenshtein("graphs", "graph")
        );
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("Melvaceae", "Malvaceae");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn unicode_edit_distance_counts_chars() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
    }

    #[test]
    fn simd_backends_match_scalar_chain_bitwise() {
        // Whatever backend the dispatch picked must reproduce the portable
        // eight-lane chain bit for bit, including ragged remainders.
        let mut rng = crate::Rng::seed_from_u64(11);
        for d in [1usize, 5, 8, 13, 16, 32, 37] {
            let a: Vec<f64> = (0..d).map(|_| rng.gauss() * 3.0).collect();
            let b: Vec<f64> = (0..d).map(|_| rng.gauss() * 3.0).collect();
            assert_eq!(
                dot_unrolled(&a, &b).to_bits(),
                dot_scalar8(&a, &b).to_bits()
            );
            assert_eq!(row_norm_sq(&a).to_bits(), dot_scalar8(&a, &a).to_bits());
            let rows = [&a[..], &b[..], &a[..], &b[..]];
            let fast = dot4_to_target(rows, &b);
            let slow = dot4_scalar8(rows, &b);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn sweep_kernels_match_portable_chain_bitwise() {
        // The full-sweep backends (8-row AVX-512 blocks, 4-row AVX blocks,
        // single-row tails) must reproduce the portable per-row chain bit
        // for bit at every block position, for contiguous and gathered
        // candidate sets alike. n = 23 exercises two 8-blocks plus a
        // 7-row tail; ragged dims exercise the lane-0 remainder fold.
        let mut rng = crate::Rng::seed_from_u64(21);
        for d in [5usize, 8, 13, 32] {
            let x = crate::Matrix::randn(23, d, 2.0, &mut rng);
            let norms = row_norms_sq(&x);
            let mut got = vec![0.0; 23];
            dists_to_row_into(&x, &norms, x.row(9), norms[9], &mut got);
            for (i, &g) in got.iter().enumerate() {
                let want = gram_sq(norms[i], norms[9], dot_scalar8(x.row(i), x.row(9))).sqrt();
                assert_eq!(g.to_bits(), want.to_bits(), "row {i} dim {d}");
            }
            // Gathered sweep, arbitrary candidate order.
            let idx: Vec<usize> = (0..23).rev().chain([9, 9, 0]).collect();
            let mut sub = vec![0.0; idx.len()];
            indexed_dists_to_row_into(&x, &norms, &idx, 9, &mut sub);
            for (o, &v) in sub.iter().zip(&idx) {
                let want = gram_sq(norms[v], norms[9], dot_scalar8(x.row(v), x.row(9))).sqrt();
                assert_eq!(o.to_bits(), want.to_bits(), "cand {v} dim {d}");
            }
        }
    }

    #[test]
    fn row_norms_match_scalar() {
        let mut rng = crate::Rng::seed_from_u64(3);
        let m = crate::Matrix::randn(17, 7, 1.0, &mut rng);
        let norms = row_norms_sq(&m);
        for (i, &n) in norms.iter().enumerate() {
            let scalar: f64 = m.row(i).iter().map(|x| x * x).sum();
            assert!((n - scalar).abs() <= 1e-12 * (1.0 + scalar));
        }
    }

    #[test]
    fn blocked_pairwise_matches_scalar_within_tolerance() {
        let mut rng = crate::Rng::seed_from_u64(4);
        let x = crate::Matrix::randn(23, 11, 1.0, &mut rng);
        let y = crate::Matrix::randn(9, 11, 1.0, &mut rng);
        let mut ws = crate::Workspace::new();
        let mut out = crate::Matrix::zeros(0, 0);
        pairwise_sq_into(&x, &y, &mut ws, &mut out);
        for i in 0..x.rows() {
            for j in 0..y.rows() {
                let scalar = squared_euclidean(x.row(i), y.row(j));
                let scale = 1.0 + row_norm_sq(x.row(i)) + row_norm_sq(y.row(j));
                assert!(
                    (out[(i, j)] - scalar).abs() <= 1e-9 * scale,
                    "({i},{j}): {} vs {scalar}",
                    out[(i, j)]
                );
            }
        }
    }

    #[test]
    fn identical_rows_have_near_zero_distance() {
        // The pairwise kernel's norms (4-lane unrolled) and dot (GEMM's
        // ascending chain) round differently, so identical rows cancel to a
        // tiny non-negative residual rather than an exact zero; the row
        // fan-out kernels, whose norm and dot share one summation order, do
        // give exact self-zeros (tested below).
        let mut rng = crate::Rng::seed_from_u64(5);
        let mut x = crate::Matrix::randn(6, 13, 3.0, &mut rng);
        let dup: Vec<f64> = x.row(0).to_vec();
        x.set_row(4, &dup);
        let norms = row_norms_sq(&x);
        let mut out = crate::Matrix::zeros(0, 0);
        pairwise_sq_with_norms_into(&x, &x, &norms, &norms, &mut out);
        for (i, j) in (0..6).map(|i| (i, i)).chain([(0, 4), (4, 0)]) {
            let tol = 1e-12 * (1.0 + 2.0 * norms[i]);
            assert!(
                out[(i, j)] >= 0.0 && out[(i, j)] <= tol,
                "({i},{j}): {} not in [0, {tol}]",
                out[(i, j)]
            );
        }
    }

    #[test]
    fn dists_to_row_agree_with_indexed_variant() {
        let mut rng = crate::Rng::seed_from_u64(6);
        let x = crate::Matrix::randn(12, 5, 1.0, &mut rng);
        let norms = row_norms_sq(&x);
        let mut all = vec![0.0; 12];
        dists_to_row_into(&x, &norms, x.row(7), norms[7], &mut all);
        let idx: Vec<usize> = (0..12).collect();
        let mut sub = vec![0.0; 12];
        indexed_dists_to_row_into(&x, &norms, &idx, 7, &mut sub);
        for (a, b) in all.iter().zip(&sub) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (i, d) in all.iter().enumerate() {
            let scalar = euclidean(x.row(i), x.row(7));
            assert!((d - scalar).abs() <= 1e-9 * (1.0 + norms[i] + norms[7]));
        }
        assert_eq!(all[7], 0.0);
    }

    #[test]
    fn zero_row_matrices_are_fine() {
        let x = crate::Matrix::zeros(0, 4);
        let y = crate::Matrix::zeros(3, 4);
        let mut ws = crate::Workspace::new();
        let mut out = crate::Matrix::zeros(0, 0);
        pairwise_sq_into(&x, &y, &mut ws, &mut out);
        assert_eq!(out.shape(), (0, 3));
        assert!(row_norms_sq(&x).is_empty());
        let mut empty: [f64; 0] = [];
        indexed_dists_to_row_into(&y, &row_norms_sq(&y), &[], 0, &mut empty);
    }

    #[test]
    fn f32_simd_backends_match_scalar_chain_bitwise() {
        // The f32 dispatch (AVX-512 / AVX / scalar) must reproduce the
        // portable sixteen-lane chain bit for bit, including ragged
        // remainders that fold into lane 0.
        let mut rng = crate::Rng::seed_from_u64(11);
        for d in [1usize, 5, 15, 16, 17, 31, 32, 48, 53] {
            let a: Vec<f32> = (0..d).map(|_| (rng.gauss() * 3.0) as f32).collect();
            let b: Vec<f32> = (0..d).map(|_| (rng.gauss() * 3.0) as f32).collect();
            assert_eq!(
                dot_unrolled_f32(&a, &b).to_bits(),
                dot_scalar16(&a, &b).to_bits(),
                "dim {d}"
            );
            assert_eq!(
                row_norm_sq(&a[..]).to_bits(),
                dot_scalar16(&a, &a).to_bits(),
                "norm dim {d}"
            );
        }
    }

    #[test]
    fn f32_sweep_kernels_match_portable_chain_bitwise() {
        // As the f64 sweep test: full-sweep f32 backends (8-row AVX-512
        // blocks, 4-row AVX blocks, single-row tails) must reproduce the
        // portable sixteen-lane per-row chain bit for bit at every block
        // position, contiguous and gathered alike.
        let mut rng = crate::Rng::seed_from_u64(21);
        for d in [5usize, 16, 21, 32] {
            let x = crate::Matrix::randn(23, d, 2.0, &mut rng).to_f32();
            let norms = row_norms_sq(&x);
            let mut got = vec![0.0f32; 23];
            dists_to_row_into(&x, &norms, x.row(9), norms[9], &mut got);
            for (i, &g) in got.iter().enumerate() {
                let want = gram_sq(norms[i], norms[9], dot_scalar16(x.row(i), x.row(9))).sqrt();
                assert_eq!(g.to_bits(), want.to_bits(), "row {i} dim {d}");
            }
            let idx: Vec<usize> = (0..23).rev().chain([9, 9, 0]).collect();
            let mut sub = vec![0.0f32; idx.len()];
            indexed_dists_to_row_into(&x, &norms, &idx, 9, &mut sub);
            for (o, &v) in sub.iter().zip(&idx) {
                let want = gram_sq(norms[v], norms[9], dot_scalar16(x.row(v), x.row(9))).sqrt();
                assert_eq!(o.to_bits(), want.to_bits(), "cand {v} dim {d}");
            }
        }
    }

    #[test]
    fn f32_blocked_pairwise_tracks_f64_within_tolerance() {
        // The f32 path is a different (lower-precision) deterministic
        // function than f64; it must stay within single-precision rounding
        // of the f64 reference on well-conditioned inputs.
        let mut rng = crate::Rng::seed_from_u64(4);
        let x = crate::Matrix::randn(23, 11, 1.0, &mut rng);
        let y = crate::Matrix::randn(9, 11, 1.0, &mut rng);
        let mut ws64 = crate::Workspace::new();
        let mut out64 = crate::Matrix::zeros(0, 0);
        pairwise_sq_into(&x, &y, &mut ws64, &mut out64);
        let (x32, y32) = (x.to_f32(), y.to_f32());
        let mut ws32: crate::Workspace<f32> = crate::Workspace::new();
        let mut out32: crate::Matrix<f32> = crate::Matrix::zeros(0, 0);
        pairwise_sq_into(&x32, &y32, &mut ws32, &mut out32);
        for i in 0..x.rows() {
            for j in 0..y.rows() {
                let scale = 1.0 + out64[(i, j)].abs();
                assert!(
                    (out32[(i, j)] as f64 - out64[(i, j)]).abs() <= 1e-4 * scale,
                    "({i},{j}): {} vs {}",
                    out32[(i, j)],
                    out64[(i, j)]
                );
            }
        }
    }
}
