//! 64-byte-aligned `f64` storage for [`crate::Matrix`] buffers.
//!
//! `Vec<f64>` only guarantees 8-byte alignment, so on this repo's AVX-512
//! hosts every 512-bit row load in the blocked distance/GEMM kernels can
//! straddle a cache-line boundary and issue as two line accesses. [`AVec`]
//! backs the same `[f64]` view with a `Vec` of cache-line-sized lanes
//! (`#[repr(align(64))]`), so row-major slabs always start on a line
//! boundary and full-width vector loads stay single-line.
//!
//! Alignment is a pure load-efficiency property: the element values, their
//! order, and every arithmetic result are unchanged, so swapping `Vec<f64>`
//! for `AVec` is bitwise invisible to all numeric outputs.

use std::ops::Deref;

/// One cache line of eight `f64`s; the allocation granule for [`AVec`].
#[derive(Clone, Copy)]
#[repr(C, align(64))]
struct Lane([f64; 8]);

const LANE: usize = 8;

/// A growable `f64` buffer whose data pointer is always 64-byte aligned.
///
/// Dereferences to `[f64]`, so slice callers are untouched; only the
/// allocation strategy differs from `Vec<f64>`. Lane slots past `len` hold
/// unspecified values and are never exposed through the deref view.
#[derive(Clone, Default)]
pub struct AVec {
    lanes: Vec<Lane>,
    len: usize,
}

impl AVec {
    /// An empty buffer.
    pub fn new() -> Self {
        AVec::default()
    }

    /// An empty buffer with room for `n` elements before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        AVec {
            lanes: Vec::with_capacity(n.div_ceil(LANE)),
            len: 0,
        }
    }

    /// A length-`n` buffer with every element set to `value`.
    pub fn from_elem(n: usize, value: f64) -> Self {
        AVec {
            lanes: vec![Lane([value; LANE]); n.div_ceil(LANE)],
            len: n,
        }
    }

    /// Copies a slice into a fresh aligned buffer.
    pub fn from_slice(s: &[f64]) -> Self {
        let mut v = AVec::with_capacity(s.len());
        v.extend_from_slice(s);
        v
    }

    /// Sets the length to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resizes to `n` elements; new elements are set to `value`.
    pub fn resize(&mut self, n: usize, value: f64) {
        let need = n.div_ceil(LANE);
        if self.lanes.len() < need {
            self.lanes.resize(need, Lane([0.0; LANE]));
        }
        let old = self.len;
        self.len = n;
        if n > old {
            self[old..n].fill(value);
        }
    }

    /// Appends one element.
    pub fn push(&mut self, value: f64) {
        let need = (self.len + 1).div_ceil(LANE);
        if self.lanes.len() < need {
            self.lanes.push(Lane([0.0; LANE]));
        }
        self.len += 1;
        let i = self.len - 1;
        self[i] = value;
    }

    /// Appends every element of `s`.
    pub fn extend_from_slice(&mut self, s: &[f64]) {
        let old = self.len;
        let n = old + s.len();
        let need = n.div_ceil(LANE);
        if self.lanes.len() < need {
            self.lanes.resize(need, Lane([0.0; LANE]));
        }
        self.len = n;
        self[old..n].copy_from_slice(s);
    }
}

// Scoped like `par` and `distance::lanes8`: the crate denies unsafe code
// except for small audited blocks. Here it is the two raw-slice views below.
#[allow(unsafe_code)]
mod views {
    use super::{AVec, Lane};
    use std::ops::{Deref, DerefMut};

    impl Deref for AVec {
        type Target = [f64];
        #[inline]
        fn deref(&self) -> &[f64] {
            // SAFETY: `Lane` is `repr(C)` with no padding, so `lanes` is a
            // contiguous run of `8 * lanes.len()` initialized f64s and
            // `len <= 8 * lanes.len()` by construction in every mutator.
            unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast::<f64>(), self.len) }
        }
    }

    impl DerefMut for AVec {
        #[inline]
        fn deref_mut(&mut self) -> &mut [f64] {
            // SAFETY: as above; `&mut self` gives exclusive access.
            unsafe {
                std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast::<f64>(), self.len)
            }
        }
    }

    const _: () = assert!(std::mem::size_of::<Lane>() == 64);
    const _: () = assert!(std::mem::align_of::<Lane>() == 64);
}

impl std::fmt::Debug for AVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.deref(), f)
    }
}

// Compare only the live prefix; lane slots past `len` are unspecified.
impl PartialEq for AVec {
    fn eq(&self, other: &Self) -> bool {
        self.deref() == other.deref()
    }
}

impl FromIterator<f64> for AVec {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let iter = iter.into_iter();
        let mut v = AVec::with_capacity(iter.size_hint().0);
        for x in iter {
            v.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_pointer_is_64_byte_aligned() {
        for n in [1usize, 7, 8, 9, 512 * 32, 2048 * 32] {
            let v = AVec::from_elem(n, 1.5);
            assert_eq!(v.as_ptr() as usize % 64, 0, "n={n}");
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == 1.5));
        }
    }

    #[test]
    fn resize_grows_with_value_and_shrinks_len() {
        let mut v = AVec::from_slice(&[1.0, 2.0, 3.0]);
        v.resize(10, 7.0);
        assert_eq!(&v[..4], &[1.0, 2.0, 3.0, 7.0]);
        assert!(v[3..].iter().all(|&x| x == 7.0));
        v.resize(2, 0.0);
        assert_eq!(&v[..], &[1.0, 2.0]);
        // Regrow across the stale tail: new slots must take the fill value.
        v.resize(12, 0.0);
        assert_eq!(&v[..2], &[1.0, 2.0]);
        assert!(v[2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn push_and_extend_cross_lane_boundaries() {
        let mut v = AVec::new();
        for i in 0..20 {
            v.push(i as f64);
        }
        v.extend_from_slice(&[100.0, 101.0, 102.0]);
        assert_eq!(v.len(), 23);
        assert_eq!(v[7], 7.0);
        assert_eq!(v[8], 8.0);
        assert_eq!(v[22], 102.0);
    }

    #[test]
    fn collect_clone_and_eq_use_live_prefix_only() {
        let a: AVec = (0..11).map(|i| i as f64).collect();
        let mut b = a.clone();
        assert_eq!(a, b);
        b.resize(12, 0.0);
        assert_ne!(a, b);
        b.resize(11, 0.0);
        assert_eq!(a, b);
    }
}
