//! 64-byte-aligned element storage for [`crate::Matrix`] buffers.
//!
//! `Vec<f64>` only guarantees 8-byte alignment, so on this repo's AVX-512
//! hosts every 512-bit row load in the blocked distance/GEMM kernels can
//! straddle a cache-line boundary and issue as two line accesses. [`AVec`]
//! backs the same element-slice view with a `Vec` of cache-line-sized
//! lanes (`#[repr(align(64))]`, see [`crate::element`]), so row-major
//! slabs always start on a line boundary and full-width vector loads stay
//! single-line. The lane type is chosen per element: eight `f64`s or
//! sixteen `f32`s per 64-byte line.
//!
//! Alignment is a pure load-efficiency property: the element values, their
//! order, and every arithmetic result are unchanged, so swapping `Vec<E>`
//! for `AVec<E>` is bitwise invisible to all numeric outputs.

use crate::element::Element;
use std::ops::Deref;

/// A growable element buffer whose data pointer is always 64-byte aligned.
///
/// Dereferences to `[E]`, so slice callers are untouched; only the
/// allocation strategy differs from `Vec<E>`. Lane slots past `len` hold
/// unspecified values and are never exposed through the deref view.
pub struct AVec<E: Element = f64> {
    lanes: Vec<E::Lane>,
    len: usize,
}

impl<E: Element> AVec<E> {
    /// An empty buffer.
    pub fn new() -> Self {
        AVec {
            lanes: Vec::new(),
            len: 0,
        }
    }

    /// An empty buffer with room for `n` elements before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        AVec {
            lanes: Vec::with_capacity(n.div_ceil(E::LANE)),
            len: 0,
        }
    }

    /// A length-`n` buffer with every element set to `value`.
    pub fn from_elem(n: usize, value: E) -> Self {
        AVec {
            lanes: vec![E::lane_splat(value); n.div_ceil(E::LANE)],
            len: n,
        }
    }

    /// Copies a slice into a fresh aligned buffer.
    pub fn from_slice(s: &[E]) -> Self {
        let mut v = AVec::with_capacity(s.len());
        v.extend_from_slice(s);
        v
    }

    /// Sets the length to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resizes to `n` elements; new elements are set to `value`.
    pub fn resize(&mut self, n: usize, value: E) {
        let need = n.div_ceil(E::LANE);
        if self.lanes.len() < need {
            self.lanes.resize(need, E::lane_splat(E::ZERO));
        }
        let old = self.len;
        self.len = n;
        if n > old {
            self[old..n].fill(value);
        }
    }

    /// Appends one element.
    pub fn push(&mut self, value: E) {
        let need = (self.len + 1).div_ceil(E::LANE);
        if self.lanes.len() < need {
            self.lanes.push(E::lane_splat(E::ZERO));
        }
        self.len += 1;
        let i = self.len - 1;
        self[i] = value;
    }

    /// Appends every element of `s`.
    pub fn extend_from_slice(&mut self, s: &[E]) {
        let old = self.len;
        let n = old + s.len();
        let need = n.div_ceil(E::LANE);
        if self.lanes.len() < need {
            self.lanes.resize(need, E::lane_splat(E::ZERO));
        }
        self.len = n;
        self[old..n].copy_from_slice(s);
    }
}

impl<E: Element> Default for AVec<E> {
    fn default() -> Self {
        AVec::new()
    }
}

impl<E: Element> Clone for AVec<E> {
    fn clone(&self) -> Self {
        AVec {
            lanes: self.lanes.clone(),
            len: self.len,
        }
    }
}

// Scoped like `par` and `distance::lanes8`: the crate denies unsafe code
// except for small audited blocks. Here it is the two raw-slice views below.
#[allow(unsafe_code)]
mod views {
    use super::AVec;
    use crate::element::{Element, LaneF32, LaneF64};
    use std::ops::{Deref, DerefMut};

    impl<E: Element> Deref for AVec<E> {
        type Target = [E];
        #[inline]
        fn deref(&self) -> &[E] {
            // SAFETY: both lane types are `repr(C)` arrays of `E::LANE`
            // elements with no padding (compile-time asserted below), so
            // `lanes` is a contiguous run of `E::LANE * lanes.len()`
            // initialized elements and `len <= E::LANE * lanes.len()` by
            // construction in every mutator.
            unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast::<E>(), self.len) }
        }
    }

    impl<E: Element> DerefMut for AVec<E> {
        #[inline]
        fn deref_mut(&mut self) -> &mut [E] {
            // SAFETY: as above; `&mut self` gives exclusive access.
            unsafe { std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast::<E>(), self.len) }
        }
    }

    const _: () = assert!(std::mem::size_of::<LaneF64>() == 64);
    const _: () = assert!(std::mem::align_of::<LaneF64>() == 64);
    const _: () = assert!(std::mem::size_of::<LaneF32>() == 64);
    const _: () = assert!(std::mem::align_of::<LaneF32>() == 64);
}

impl<E: Element> std::fmt::Debug for AVec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.deref(), f)
    }
}

// Compare only the live prefix; lane slots past `len` are unspecified.
impl<E: Element> PartialEq for AVec<E> {
    fn eq(&self, other: &Self) -> bool {
        self.deref() == other.deref()
    }
}

impl<E: Element> FromIterator<E> for AVec<E> {
    fn from_iter<T: IntoIterator<Item = E>>(iter: T) -> Self {
        let iter = iter.into_iter();
        let mut v = AVec::with_capacity(iter.size_hint().0);
        for x in iter {
            v.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_pointer_is_64_byte_aligned() {
        for n in [1usize, 7, 8, 9, 512 * 32, 2048 * 32] {
            let v = AVec::from_elem(n, 1.5);
            assert_eq!(v.as_ptr() as usize % 64, 0, "n={n}");
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == 1.5));
        }
    }

    #[test]
    fn f32_buffer_is_aligned_with_sixteen_lane_granule() {
        for n in [1usize, 15, 16, 17, 1000] {
            let v: AVec<f32> = AVec::from_elem(n, 2.5f32);
            assert_eq!(v.as_ptr() as usize % 64, 0, "n={n}");
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == 2.5f32));
        }
    }

    #[test]
    fn resize_grows_with_value_and_shrinks_len() {
        let mut v = AVec::from_slice(&[1.0, 2.0, 3.0]);
        v.resize(10, 7.0);
        assert_eq!(&v[..4], &[1.0, 2.0, 3.0, 7.0]);
        assert!(v[3..].iter().all(|&x| x == 7.0));
        v.resize(2, 0.0);
        assert_eq!(&v[..], &[1.0, 2.0]);
        // Regrow across the stale tail: new slots must take the fill value.
        v.resize(12, 0.0);
        assert_eq!(&v[..2], &[1.0, 2.0]);
        assert!(v[2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn push_and_extend_cross_lane_boundaries() {
        let mut v = AVec::new();
        for i in 0..20 {
            v.push(i as f64);
        }
        v.extend_from_slice(&[100.0, 101.0, 102.0]);
        assert_eq!(v.len(), 23);
        assert_eq!(v[7], 7.0);
        assert_eq!(v[8], 8.0);
        assert_eq!(v[22], 102.0);
    }

    #[test]
    fn collect_clone_and_eq_use_live_prefix_only() {
        let a: AVec = (0..11).map(|i| i as f64).collect();
        let mut b = a.clone();
        assert_eq!(a, b);
        b.resize(12, 0.0);
        assert_ne!(a, b);
        b.resize(11, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn f32_push_extend_and_resize_cross_lane_boundaries() {
        let mut v: AVec<f32> = AVec::new();
        for i in 0..30 {
            v.push(i as f32);
        }
        v.extend_from_slice(&[100.0f32, 101.0]);
        assert_eq!(v.len(), 32);
        assert_eq!(v[15], 15.0);
        assert_eq!(v[16], 16.0);
        assert_eq!(v[31], 101.0);
        v.resize(2, 0.0);
        v.resize(40, 9.0);
        assert_eq!(v[0], 0.0);
        assert!(v[2..].iter().all(|&x| x == 9.0));
    }
}
