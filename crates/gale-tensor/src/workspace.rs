//! A small reusable buffer pool for dense intermediates.
//!
//! Training loops produce the same-shaped activations and gradients every
//! step; allocating a fresh [`Matrix`] per intermediate puts the allocator
//! on the hot path. A [`Workspace`] keeps the backing [`AVec`] of retired
//! matrices and hands them back on the next [`Workspace::take`], so steady
//! state training performs zero heap allocation for intermediates.
//!
//! Rules (also documented in DESIGN.md):
//!
//! * `take(rows, cols)` returns a matrix of exactly that shape, **zeroed**,
//!   so callers can treat it like `Matrix::zeros`.
//! * `give(m)` retires a matrix; its buffer becomes available to any later
//!   `take` regardless of shape (buffers are resized on reuse).
//! * `take_vec`/`give_vec` run a separate plain `Vec<E>` pool for norm
//!   scratch; those vectors only see scalar loads, so alignment is moot.
//! * The pool is plain mutable state — it is *not* thread-safe and is meant
//!   to live inside a single training loop, not be shared across threads.
//! * Reuse never changes numerics: a recycled buffer is zeroed before use,
//!   so results are bitwise identical to fresh allocation.
//!
//! The pool is generic over [`Element`]: `Workspace` (= `Workspace<f64>`)
//! serves training and the default serving path, `Workspace<f32>` serves
//! the reduced-precision inference replicas. Each precision pools its own
//! buffers; there is no cross-precision reuse.
//!
//! Telemetry: `workspace.hits` / `workspace.misses` count how often `take`
//! was served from the pool vs the allocator.

use crate::aligned::AVec;
use crate::element::Element;
use crate::matrix::Matrix;

/// A pool of reusable element buffers for dense intermediates.
#[derive(Debug)]
pub struct Workspace<E: Element = f64> {
    free: Vec<AVec<E>>,
    free_vecs: Vec<Vec<E>>,
    hits: u64,
    misses: u64,
}

impl<E: Element> Default for Workspace<E> {
    fn default() -> Self {
        Workspace {
            free: Vec::new(),
            free_vecs: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<E: Element> Workspace<E> {
    /// An empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A zeroed `rows x cols` matrix, backed by a recycled buffer when one
    /// is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix<E> {
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                gale_obs::counter_add!("workspace.hits", 1);
                buf.clear();
                buf.resize(rows * cols, E::ZERO);
                Matrix::from_buffer(rows, cols, buf)
            }
            None => {
                self.misses += 1;
                gale_obs::counter_add!("workspace.misses", 1);
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Retires a matrix, keeping its buffer for future [`Workspace::take`]
    /// calls.
    pub fn give(&mut self, m: Matrix<E>) {
        self.free.push(m.into_buffer());
    }

    /// A zeroed `len`-element vector, backed by a recycled buffer when one
    /// is available. Used by the blocked distance kernels for norm scratch.
    pub fn take_vec(&mut self, len: usize) -> Vec<E> {
        match self.free_vecs.pop() {
            Some(mut buf) => {
                self.hits += 1;
                gale_obs::counter_add!("workspace.hits", 1);
                buf.clear();
                buf.resize(len, E::ZERO);
                buf
            }
            None => {
                self.misses += 1;
                gale_obs::counter_add!("workspace.misses", 1);
                vec![E::ZERO; len]
            }
        }
    }

    /// Retires a vector taken with [`Workspace::take_vec`] (any `Vec<E>`
    /// works; the pool is shape-agnostic).
    pub fn give_vec(&mut self, v: Vec<E>) {
        self.free_vecs.push(v);
    }

    /// `(hits, misses)` counters for this pool.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_vec_is_zeroed_after_reuse() {
        let mut ws = Workspace::new();
        let mut v = ws.take_vec(4);
        v[2] = f64::NAN;
        ws.give_vec(v);
        let v2 = ws.take_vec(6);
        assert_eq!(v2, vec![0.0; 6]);
        assert_eq!(ws.stats(), (1, 1));
    }

    #[test]
    fn take_is_zeroed_after_reuse() {
        let mut ws = Workspace::new();
        let mut m = ws.take(2, 3);
        m[(1, 2)] = 7.0;
        ws.give(m);
        let m2 = ws.take(3, 2);
        assert_eq!(m2.shape(), (3, 2));
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(m2[(r, c)], 0.0);
            }
        }
        assert_eq!(ws.stats(), (1, 1));
    }

    #[test]
    fn reuse_matches_fresh_allocation_bitwise() {
        let mut rng = crate::Rng::seed_from_u64(9);
        let a = Matrix::randn(5, 4, 1.0, &mut rng);
        let b = Matrix::randn(4, 6, 1.0, &mut rng);
        let fresh = a.matmul(&b);
        let mut ws = Workspace::new();
        ws.give(ws_scratch());
        let mut pooled = ws.take(0, 0);
        a.matmul_into(&b, &mut pooled);
        for (x, y) in fresh.data().iter().zip(pooled.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn ws_scratch() -> Matrix {
        let mut m = Matrix::zeros(9, 9);
        m[(0, 0)] = f64::NAN;
        m
    }

    // The same NaN-poison discipline for the f32 pool: a stale (poisoned)
    // buffer must come back fully zeroed from both `take` and `take_vec`,
    // so a lowering-path bug can't hide behind the f64 tests.
    #[test]
    fn f32_take_is_zeroed_after_nan_poisoned_reuse() {
        let mut ws: Workspace<f32> = Workspace::new();
        let mut m = ws.take(3, 5);
        for v in m.data_mut() {
            *v = f32::NAN;
        }
        ws.give(m);
        let m2 = ws.take(4, 4);
        assert_eq!(m2.shape(), (4, 4));
        assert!(m2.data().iter().all(|&x| x.to_bits() == 0));
        assert_eq!(ws.stats(), (1, 1));
    }

    #[test]
    fn f32_take_vec_is_zeroed_after_nan_poisoned_reuse() {
        let mut ws: Workspace<f32> = Workspace::new();
        let mut v = ws.take_vec(7);
        for x in v.iter_mut() {
            *x = f32::NAN;
        }
        ws.give_vec(v);
        let v2 = ws.take_vec(9);
        assert!(v2.iter().all(|&x| x.to_bits() == 0));
        assert_eq!(ws.stats(), (1, 1));
    }

    #[test]
    fn f32_reuse_matches_fresh_allocation_bitwise() {
        let mut rng = crate::Rng::seed_from_u64(9);
        let a = Matrix::randn(5, 4, 1.0, &mut rng).to_f32();
        let b = Matrix::randn(4, 6, 1.0, &mut rng).to_f32();
        let fresh = a.matmul(&b);
        let mut ws: Workspace<f32> = Workspace::new();
        let mut poison = Matrix::<f32>::zeros(9, 9);
        poison[(0, 0)] = f32::NAN;
        ws.give(poison);
        let mut pooled = ws.take(0, 0);
        a.matmul_into(&b, &mut pooled);
        for (x, y) in fresh.data().iter().zip(pooled.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
