//! Deterministic pseudo-random number generation.
//!
//! GALE's experiments must be reproducible bit-for-bit across runs and
//! platforms, so instead of depending on an external RNG crate (whose API and
//! stream definitions churn across major versions) we implement the
//! well-known xoshiro256++ generator seeded through SplitMix64, exactly as
//! specified by Blackman & Vigna. The generator is *not* cryptographically
//! secure; it is used only for simulation, initialization, and sampling.

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// Cloning an `Rng` clones its state, producing two generators that emit the
/// same stream; use [`Rng::fork`] to derive an independent child stream.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal deviate from the last Box-Muller draw.
    cached_gauss: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64, so
    /// nearby seeds still yield well-separated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            cached_gauss: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's stream, so distinct forks of the
    /// same parent produce distinct streams while staying deterministic.
    pub fn fork(&mut self) -> Self {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Exports the full generator state (xoshiro words plus the cached
    /// Box-Muller deviate) so a checkpointed stream resumes exactly.
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.s, self.cached_gauss)
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`]. The
    /// restored stream continues bit-for-bit where the original left off.
    pub fn from_state(s: [u64; 4], cached_gauss: Option<f64>) -> Self {
        Rng { s, cached_gauss }
    }

    /// Returns the next raw 64-bit value of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        let n = n as u64;
        // Lemire: draw until the low product lands outside the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range: lo {lo} >= hi {hi}");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate via the Box-Muller transform.
    pub fn gauss(&mut self) -> f64 {
        if let Some(z) = self.cached_gauss.take() {
            return z;
        }
        // Rejection-free polar-less form: u1 in (0,1] avoids ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gauss()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose: empty slice");
        &xs[self.below(xs.len())]
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// Returns fewer than `k` indices only when `k > n`. Uses a partial
    /// Fisher-Yates pass, O(n) memory, O(k) swaps.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Draws an index according to the (unnormalized, non-negative) weights.
    ///
    /// Panics if the weights are empty or sum to a non-finite/non-positive
    /// value.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weighted: weights must sum to a positive finite value, got {total}"
        );
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "weighted: negative weight {w} at {i}");
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // floating-point slack lands on the last bucket
    }

    /// Draws a Poisson-distributed count (Knuth's method; fine for small λ).
    pub fn poisson(&mut self, lambda: f64) -> usize {
        assert!(lambda >= 0.0, "poisson: negative lambda");
        let limit = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn below_unbiased_roughly() {
        let mut r = Rng::seed_from_u64(9);
        let n = 7usize;
        let draws = 70_000;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[r.below(n)] += 1;
        }
        let expected = draws as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.1);
        }
    }

    #[test]
    fn gauss_moments() {
        let mut r = Rng::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gauss();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from_u64(13);
        let s = r.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 30);
        assert!(d.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_clamps_k() {
        let mut r = Rng::seed_from_u64(13);
        let s = r.sample_indices(5, 50);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng::seed_from_u64(17);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn poisson_mean() {
        let mut r = Rng::seed_from_u64(19);
        let n = 50_000;
        let total: usize = (0..n).map(|_| r.poisson(2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::seed_from_u64(23);
        let mut b = a.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Rng::seed_from_u64(31);
        let _ = a.gauss(); // populate the cached deviate
        let (s, cached) = a.state();
        assert!(cached.is_some());
        let mut b = Rng::from_state(s, cached);
        for _ in 0..16 {
            assert_eq!(a.gauss().to_bits(), b.gauss().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from_u64(29);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
