//! Small dense linear-algebra routines: symmetric eigendecomposition via the
//! cyclic Jacobi method, and Gaussian elimination for small systems.
//!
//! These are only applied to covariance matrices of reduced dimensionality
//! (tens to a few hundreds), so O(n^3) methods are perfectly adequate.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// method. Asymmetry beyond ~1e-9 panics (callers should symmetrize first).
pub fn sym_eigen(a: &Matrix) -> SymEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eigen: non-square");
    for r in 0..n {
        for c in (r + 1)..n {
            assert!(
                (a[(r, c)] - a[(c, r)]).abs() <= 1e-9 * (1.0 + a[(r, c)].abs()),
                "sym_eigen: matrix not symmetric at ({r},{c})"
            );
        }
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        // Largest off-diagonal magnitude decides convergence.
        let mut off = 0.0f64;
        for r in 0..n {
            for c in (r + 1)..n {
                off = off.max(m[(r, c)].abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, theta) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[(j, j)]
            .partial_cmp(&m[(i, i)])
            .expect("sym_eigen: NaN eigenvalue")
    });
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (jnew, &jold) in order.iter().enumerate() {
        for k in 0..n {
            vectors[(k, jnew)] = v[(k, jold)];
        }
    }
    SymEigen { values, vectors }
}

/// Solves `A x = b` for a small square system with partial-pivot Gaussian
/// elimination. Returns `None` when the matrix is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "solve: non-square");
    assert_eq!(n, b.len(), "solve: rhs length mismatch");
    let mut aug = Matrix::zeros(n, n + 1);
    for r in 0..n {
        aug.row_mut(r)[..n].copy_from_slice(a.row(r));
        aug[(r, n)] = b[r];
    }
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                aug[(i, col)]
                    .abs()
                    .partial_cmp(&aug[(j, col)].abs())
                    .expect("solve: NaN entry")
            })
            .expect("solve: non-empty range");
        if aug[(pivot, col)].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..=n {
                let tmp = aug[(col, k)];
                aug[(col, k)] = aug[(pivot, k)];
                aug[(pivot, k)] = tmp;
            }
        }
        let diag = aug[(col, col)];
        for r in (col + 1)..n {
            let factor = aug[(r, col)] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                aug[(r, k)] -= factor * aug[(col, k)];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = aug[(r, n)];
        for k in (r + 1)..n {
            s -= aug[(r, k)] * x[k];
        }
        x[r] = s / aug[(r, r)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_hand_checked_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0: Vec<f64> = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let mut rng = Rng::seed_from_u64(21);
        let b = Matrix::randn(5, 5, 1.0, &mut rng);
        let a = b.matmul_tn(&b); // symmetric PSD
        let e = sym_eigen(&a);
        // Reconstruct V diag(w) V^T.
        let mut recon = Matrix::zeros(5, 5);
        for j in 0..5 {
            let v = e.vectors.col(j);
            for r in 0..5 {
                for c in 0..5 {
                    recon[(r, c)] += e.values[j] * v[r] * v[c];
                }
            }
        }
        assert!(recon.approx_eq(&a, 1e-8), "reconstruction failed");
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let mut rng = Rng::seed_from_u64(22);
        let b = Matrix::randn(6, 6, 1.0, &mut rng);
        let a = b.matmul_tn(&b);
        let e = sym_eigen(&a);
        let vtv = e.vectors.matmul_tn(&e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn solve_hand_checked() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_random_consistency() {
        let mut rng = Rng::seed_from_u64(23);
        let a = {
            let b = Matrix::randn(4, 4, 1.0, &mut rng);
            // Diagonal boost keeps it well-conditioned.
            let mut m = b.matmul_tn(&b);
            for i in 0..4 {
                m[(i, i)] += 1.0;
            }
            m
        };
        let x_true = vec![1.0, -2.0, 0.5, 3.0];
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8);
        }
    }
}
