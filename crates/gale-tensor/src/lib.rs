//! # gale-tensor
//!
//! Self-contained numeric substrate for the GALE reproduction: dense and
//! sparse `f64` linear algebra, a deterministic RNG, statistics, k-means,
//! PCA, and a symmetric eigensolver.
//!
//! The GALE paper (ICDE 2023) runs on TensorFlow; Rust has no comparable GNN
//! stack, so everything the upper layers need is implemented here from
//! scratch with an emphasis on determinism (every stochastic routine takes an
//! explicit [`rng::Rng`]) and predictable performance (CSR propagation is
//! O(|E|), dense kernels are cache-friendly row-major loops).

// `deny` rather than `forbid`: `par` (lifetime-erased job dispatch and
// disjoint slice splitting), `distance::lanes8` (SIMD intrinsics behind
// runtime feature detection), and `aligned` (raw-slice views over the
// 64-byte-aligned lane storage) carry scoped allowances for their audited
// unsafe blocks; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops are the clearer idiom in the dense math kernels below.
#![allow(clippy::needless_range_loop)]

pub mod aligned;
pub mod block;
pub mod distance;
pub mod element;
mod gemm;
pub mod kmeans;
pub mod linalg;
pub mod matrix;
pub mod par;
pub mod pca;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod workspace;

pub use aligned::AVec;
pub use block::{
    matvec_access, spmm_access_into, CsrBlock, EdgeSample, NeighborAccess, SymNormalized,
};
pub use element::Element;
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use linalg::{solve, sym_eigen, SymEigen};
pub use matrix::Matrix;
pub use pca::Pca;
pub use rng::Rng;
pub use sparse::SparseMatrix;
pub use workspace::Workspace;
