//! Compressed sparse row (CSR) matrices.
//!
//! Graph adjacency and its normalizations are stored in CSR form so that
//! GCN propagation, label propagation, and personalized-PageRank power
//! iterations all run in O(|E|) per step.

use crate::matrix::Matrix;

/// A sparse `f64` matrix in CSR layout.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r+1]` bounds row `r`'s entries.
    indptr: Vec<usize>,
    /// Column index of each stored entry, sorted within each row.
    indices: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate coordinates are summed. Out-of-range coordinates panic.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for (r, c, v) in triplets {
            assert!(
                r < rows && c < cols,
                "from_triplets: ({r},{c}) out of range"
            );
            by_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut by_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        SparseMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` sparse identity.
    pub fn identity(n: usize) -> Self {
        SparseMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Borrowed `(columns, values)` slices of row `r`, in ascending
    /// column order. Zero-cost view for callers (like delta overlays)
    /// that merge CSR rows without an iterator allocation.
    #[inline]
    pub fn row_slices(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Looks up entry `(r, c)`; zero if not stored. O(log row_nnz).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        match self.indices[lo..hi].binary_search(&c) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse * dense product, producing a dense matrix.
    ///
    /// Rows of the output are independent, so the product runs in parallel
    /// over row blocks; each row's accumulation order is fixed by the CSR
    /// layout, making the result bitwise identical on any thread count.
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.spmm_into(dense, &mut out);
        out
    }

    /// [`SparseMatrix::matmul_dense`] writing into a reusable output buffer
    /// (resized in place; previous contents are discarded).
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "matmul_dense: {}x{} * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let n = dense.cols();
        gale_obs::counter_add!("kernel.spmm.calls", 1);
        gale_obs::counter_add!("kernel.spmm.flops", (2 * self.nnz() * n) as u64);
        gale_obs::counter_add!(
            "kernel.spmm.bytes",
            (8 * (2 * self.nnz() + self.nnz() * n + self.rows * n)) as u64
        );
        csr_spmm_into(
            &self.indptr,
            &self.indices,
            &self.values,
            self.rows,
            dense,
            out,
        );
    }

    /// [`SparseMatrix::spmm_into`] against a reduced-precision dense
    /// operand: CSR values stay `f64` on disk and are lowered to `E` at
    /// accumulate time, mirroring the f64 kernel's row-major, CSR-order
    /// accumulation exactly. For `E = f64` the lowering is the identity and
    /// the result is bitwise equal to [`SparseMatrix::spmm_into`]; for
    /// `E = f32` it is the same deterministic chain at single precision.
    pub fn spmm_lowered_into<E: crate::Element>(&self, dense: &Matrix<E>, out: &mut Matrix<E>) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm_lowered_into: {}x{} * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let n = dense.cols();
        gale_obs::counter_add!("kernel.spmm.calls", 1);
        gale_obs::counter_add!("kernel.spmm.flops", (2 * self.nnz() * n) as u64);
        gale_obs::counter_add!(
            "kernel.spmm.bytes",
            (std::mem::size_of::<E>() * (2 * self.nnz() + self.nnz() * n + self.rows * n)) as u64
        );
        out.resize(self.rows, n);
        let (indptr, indices, values) = (&self.indptr, &self.indices, &self.values);
        crate::par::par_chunks_mut(out.data_mut(), n.max(1), |start, block| {
            let row0 = start / n.max(1);
            for (b, orow) in block.chunks_mut(n).enumerate() {
                orow.fill(E::ZERO);
                let r = row0 + b;
                for k in indptr[r]..indptr[r + 1] {
                    let v = E::from_f64(values[k]);
                    let drow = dense.row(indices[k]);
                    for j in 0..n {
                        orow[j] += v * drow[j];
                    }
                }
            }
        });
    }

    /// The `(row, col)` coordinates of the `k`-th stored entry in row-major
    /// CSR order (`k < nnz()`). O(log rows) via the row-pointer table.
    pub fn entry_coords(&self, k: usize) -> (usize, usize) {
        assert!(k < self.nnz(), "entry_coords: {k} >= nnz {}", self.nnz());
        // First row whose indptr exceeds k holds the entry.
        let r = self.indptr.partition_point(|&p| p <= k) - 1;
        (r, self.indices[k])
    }

    /// Sparse * vector product. Parallel over row chunks; each output
    /// element is produced by exactly one chunk with a fixed accumulation
    /// order, so results are thread-count independent.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: width mismatch");
        let mut out = vec![0.0; self.rows];
        crate::par::par_chunks_mut(&mut out, 1, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = self.row_iter(start + off).map(|(c, w)| w * v[c]).sum();
            }
        });
        out
    }

    /// Transposed sparse * vector product (`self^T * v`) without building the
    /// transpose.
    ///
    /// Rows scatter into shared output columns, so the parallel path gives
    /// each chunk of rows its own partial output vector and folds the
    /// partials on the caller thread in **ascending chunk order**. The
    /// chunking is a pure function of the row count, so results are bitwise
    /// identical across thread counts.
    pub fn matvec_t(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "matvec_t: height mismatch");
        crate::par::par_map_reduce(
            self.rows,
            |range| {
                let mut partial = vec![0.0; self.cols];
                for r in range {
                    let vr = v[r];
                    if vr == 0.0 {
                        continue;
                    }
                    for (c, w) in self.row_iter(r) {
                        partial[c] += w * vr;
                    }
                }
                partial
            },
            |mut acc, partial| {
                for (a, p) in acc.iter_mut().zip(&partial) {
                    *a += p;
                }
                acc
            },
        )
        .unwrap_or_else(|| vec![0.0; self.cols])
    }

    /// Materializes the transpose in CSR form.
    pub fn transpose(&self) -> SparseMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                triplets.push((c, r, v));
            }
        }
        SparseMatrix::from_triplets(self.cols, self.rows, triplets)
    }

    /// Row sums (out-weights); the degree vector for an adjacency matrix.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row_iter(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Scales row `r` by `factors[r]` (used for D^{-1} A normalization).
    pub fn scale_rows(&self, factors: &[f64]) -> SparseMatrix {
        assert_eq!(factors.len(), self.rows, "scale_rows: length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let lo = out.indptr[r];
            let hi = out.indptr[r + 1];
            for v in &mut out.values[lo..hi] {
                *v *= factors[r];
            }
        }
        out
    }

    /// Returns `left[r] * A[r,c] * right[c]` — the symmetric normalization
    /// D̃^{-1/2} Ã D̃^{-1/2} when `left == right == d^{-1/2}`.
    pub fn scale_both(&self, left: &[f64], right: &[f64]) -> SparseMatrix {
        assert_eq!(left.len(), self.rows);
        assert_eq!(right.len(), self.cols);
        let mut out = self.clone();
        for r in 0..out.rows {
            let lo = out.indptr[r];
            let hi = out.indptr[r + 1];
            for k in lo..hi {
                out.values[k] *= left[r] * right[out.indices[k]];
            }
        }
        out
    }

    /// Adds the identity (self-loops): Ã = A + I. Requires a square matrix.
    pub fn add_identity(&self) -> SparseMatrix {
        assert_eq!(self.rows, self.cols, "add_identity: non-square");
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() + self.rows);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                triplets.push((r, c, v));
            }
            triplets.push((r, r, 1.0));
        }
        SparseMatrix::from_triplets(self.rows, self.cols, triplets)
    }

    /// Converts to a dense matrix (test/debug helper; O(rows*cols) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out[(r, c)] += v;
            }
        }
        out
    }

    /// The GCN/PPR propagation operator for an undirected adjacency:
    /// `S = D̃^{-1/2} (A + I) D̃^{-1/2}` where `D̃` is the degree of `A + I`.
    ///
    /// Every row of `S` for a node with at least the self-loop is non-empty,
    /// so power iterations never lose mass on isolated nodes.
    pub fn sym_normalized_with_self_loops(&self) -> SparseMatrix {
        let tilde = self.add_identity();
        let deg = tilde.row_sums();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        tilde.scale_both(&inv_sqrt, &inv_sqrt)
    }

    /// Row-stochastic random-walk operator `D̃^{-1} (A + I)`.
    pub fn rw_normalized_with_self_loops(&self) -> SparseMatrix {
        let tilde = self.add_identity();
        let deg = tilde.row_sums();
        let inv: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        tilde.scale_rows(&inv)
    }
}

/// The shared CSR * dense kernel behind [`SparseMatrix::spmm_into`] and
/// [`crate::block::CsrBlock::spmm_into`]: parallel over disjoint row
/// chunks, each output row accumulated in stored-entry order, so any
/// operator lowered to these three slices produces bitwise-identical rows
/// at any thread count. `out` is resized to `rows x dense.cols()`.
pub(crate) fn csr_spmm_into(
    indptr: &[usize],
    indices: &[usize],
    values: &[f64],
    rows: usize,
    dense: &Matrix,
    out: &mut Matrix,
) {
    let n = dense.cols();
    out.resize(rows, n);
    crate::par::par_chunks_mut(out.data_mut(), n.max(1), |start, block| {
        let row0 = start / n.max(1);
        for (b, orow) in block.chunks_mut(n).enumerate() {
            orow.fill(0.0);
            let r = row0 + b;
            for k in indptr[r]..indptr[r + 1] {
                let v = values[k];
                let drow = dense.row(indices[k]);
                for j in 0..n {
                    orow[j] += v * drow[j];
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn small() -> SparseMatrix {
        // [[0,1,0],[2,0,3],[0,0,4]]
        SparseMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0), (2, 2, 4.0)])
    }

    #[test]
    fn triplets_roundtrip_get() {
        let m = small();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(2, 2), 4.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = SparseMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matmul_dense_matches_dense() {
        let mut rng = Rng::seed_from_u64(4);
        let s = small();
        let d = Matrix::randn(3, 5, 1.0, &mut rng);
        let fast = s.matmul_dense(&d);
        let slow = s.to_dense().matmul(&d);
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn matvec_and_transposed_matvec() {
        let s = small();
        assert_eq!(s.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 5.0, 4.0]);
        let vt = s.matvec_t(&[1.0, 1.0, 1.0]);
        let slow = s.transpose().matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(vt, slow);
    }

    #[test]
    fn transpose_roundtrip() {
        let s = small();
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn sym_normalization_rows_bounded() {
        // A path graph 0-1-2.
        let a =
            SparseMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let s = a.sym_normalized_with_self_loops();
        // Symmetry is preserved.
        let d = s.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert!((d[(r, c)] - d[(c, r)]).abs() < 1e-12);
            }
        }
        // Diagonal entries equal 1/deg̃ and off-diagonals 1/sqrt(deg̃_u deg̃_v).
        assert!((d[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((d[(1, 1)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[(0, 1)] - 1.0 / (2.0f64 * 3.0).sqrt()).abs() < 1e-12);
        // Power iteration with this operator is bounded: applying S to the
        // all-ones vector never exceeds sqrt(d_max/d_min) in magnitude.
        let ones = vec![1.0; 3];
        let out = s.matvec(&ones);
        assert!(out.iter().all(|v| v.abs() <= (3.0f64 / 2.0).sqrt() + 1e-12));
    }

    #[test]
    fn rw_normalization_is_row_stochastic() {
        let a =
            SparseMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let p = a.rw_normalized_with_self_loops();
        for r in 0..3 {
            let sum: f64 = p.row_iter(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn isolated_node_keeps_self_loop_mass() {
        let a = SparseMatrix::zeros(2, 2);
        let p = a.rw_normalized_with_self_loops();
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(1, 1), 1.0);
    }

    #[test]
    fn scale_rows_and_both() {
        let s = small();
        let scaled = s.scale_rows(&[1.0, 0.5, 2.0]);
        assert_eq!(scaled.get(1, 0), 1.0);
        assert_eq!(scaled.get(2, 2), 8.0);
        let both = s.scale_both(&[1.0, 1.0, 1.0], &[0.0, 1.0, 1.0]);
        assert_eq!(both.get(1, 0), 0.0);
        assert_eq!(both.get(1, 2), 3.0);
    }

    #[test]
    fn identity_behaves() {
        let i = SparseMatrix::identity(4);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&v), v);
    }
}
