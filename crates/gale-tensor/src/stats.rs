//! Small statistics toolkit used by the outlier detectors, the data
//! generators, and the evaluation harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Z-score of `x` relative to the sample; 0.0 when the deviation is ~0.
pub fn z_score(x: f64, xs: &[f64]) -> f64 {
    let sd = std_dev(xs);
    if sd < 1e-12 {
        return 0.0;
    }
    (x - mean(xs)) / sd
}

/// Median of the sample (average of the two central elements for even n).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`. 0.0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Interquartile range `(q1, q3)`.
pub fn iqr_bounds(xs: &[f64]) -> (f64, f64) {
    (quantile(xs, 0.25), quantile(xs, 0.75))
}

/// Tukey fences: values outside `[q1 - k*iqr, q3 + k*iqr]` are outliers.
pub fn tukey_fences(xs: &[f64], k: f64) -> (f64, f64) {
    let (q1, q3) = iqr_bounds(xs);
    let iqr = q3 - q1;
    (q1 - k * iqr, q3 + k * iqr)
}

/// Min and max of a non-empty slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "min_max: empty slice");
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

/// Pearson correlation of two equal-length samples; 0.0 when degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-24 || vy < 1e-24 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Shannon entropy (nats) of a probability vector; entries are clamped to be
/// non-negative and renormalized if needed.
pub fn entropy(probs: &[f64]) -> f64 {
    let total: f64 = probs.iter().filter(|p| **p > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / total;
            q * q.ln()
        })
        .sum::<f64>()
}

/// A streaming histogram over a fixed numeric range, used for value-
/// distribution profiling by the annotator.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: need at least one bin");
        assert!(lo < hi, "Histogram: lo must be < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds an observation; values outside the range clamp to the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let mut b = (t * bins as f64) as usize;
        if b == bins {
            b -= 1;
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The empirical density of the bucket containing `x` (0.0 when empty).
    pub fn density_at(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let mut b = (t * bins as f64) as usize;
        if b == bins {
            b -= 1;
        }
        self.counts[b] as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(z_score(5.0, &[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn z_score_hand_checked() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((z_score(9.0, &xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_quantiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), 1.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 1.0), 5.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.25), 2.0);
    }

    #[test]
    fn tukey_fences_catch_spike() {
        let mut xs: Vec<f64> = (0..100).map(|i| 10.0 + (i % 5) as f64).collect();
        xs.push(1000.0);
        let (lo, hi) = tukey_fences(&xs, 1.5);
        assert!(1000.0 > hi);
        assert!(10.0 > lo && 14.0 < hi);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn entropy_uniform_is_max() {
        let u = entropy(&[0.25, 0.25, 0.25, 0.25]);
        assert!((u - (4.0f64).ln()).abs() < 1e-12);
        let peaked = entropy(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(peaked, 0.0);
        assert!(u > entropy(&[0.7, 0.1, 0.1, 0.1]));
    }

    #[test]
    fn entropy_renormalizes() {
        // Unnormalized weights behave like their normalized counterparts.
        assert!((entropy(&[2.0, 2.0]) - entropy(&[0.5, 0.5])).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.6, 9.9, 10.0, -5.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        // Bucket 0 holds 0.5, 1.5 (width 2), and the clamped -5.0.
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[4], 2);
        assert!((h.density_at(0.1) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0]), (-1.0, 7.0));
    }
}
