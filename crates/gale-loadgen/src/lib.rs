//! `gale-loadgen`: a std-only closed-loop load generator for `gale-serve`.
//!
//! N worker threads each hold one keep-alive connection and drive it as
//! fast as the server answers: send a `/score` request, wait for the
//! response, immediately send the next (reconnecting if the server closes
//! the connection). Latencies are raw per-request samples — percentiles
//! come from the sorted sample set, not histogram buckets — and every
//! response's `model_version` is tracked so a hot reload under load can be
//! checked for zero dropped requests and clean version transitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One closed-loop run against a live server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent closed-loop workers (one connection each).
    pub concurrency: usize,
    /// Measured portion of the run.
    pub duration: Duration,
    /// Ramp-up before measurement starts; traffic flows but nothing is
    /// recorded.
    pub warmup: Duration,
    /// Feature rows per `/score` request.
    pub rows: usize,
    /// Feature dimension (must match the served model).
    pub dim: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            concurrency: 8,
            duration: Duration::from_secs(4),
            warmup: Duration::from_secs(1),
            rows: 4,
            dim: 8,
        }
    }
}

/// Aggregated results of a [`run`].
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// `200` responses inside the measurement window.
    pub ok: u64,
    /// `503` (shed) responses inside the measurement window.
    pub shed: u64,
    /// Any other status, malformed response, or mid-request IO error.
    pub errors: u64,
    /// Times a worker had to re-establish its connection.
    pub reconnects: u64,
    /// Measured wall-clock seconds.
    pub elapsed_s: f64,
    /// `ok / elapsed_s`.
    pub throughput_rps: f64,
    /// Mean latency over `ok` responses, microseconds.
    pub mean_us: f64,
    /// Latency percentiles over raw samples, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: f64,
    /// Distinct `model_version` values observed in `200` bodies, sorted.
    pub versions: Vec<u64>,
}

/// A keep-alive HTTP/1.1 client for one connection: writes a raw request,
/// reads exactly one `Content-Length`-framed response.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
    close_announced: bool,
}

impl HttpClient {
    /// Connects with `TCP_NODELAY` (requests are tiny; Nagle would
    /// serialize the closed loop on ACK delays).
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::with_capacity(4096),
            close_announced: false,
        })
    }

    /// `true` once a response carried `Connection: close` — the server
    /// will drop this connection; reconnect before the next request.
    pub fn close_announced(&self) -> bool {
        self.close_announced
    }

    /// Sends `raw` and reads one response; returns `(status, body)`.
    pub fn request(&mut self, raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        self.stream.write_all(raw)?;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = parse_response_frame(&self.buf)? {
                if self.buf.len() >= frame.total {
                    let body = self.buf[frame.body_at..frame.body_at + frame.body_len].to_vec();
                    self.close_announced |= frame.close;
                    self.buf.drain(..frame.total);
                    return Ok((frame.status, body));
                }
            }
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }
}

/// One response located in the stream buffer.
struct ResponseFrame {
    status: u16,
    /// Bytes the whole response occupies (head + body).
    total: usize,
    body_at: usize,
    body_len: usize,
    /// The head carried `Connection: close`.
    close: bool,
}

/// Locates one response in `buf`, or `None` if the head is incomplete.
fn parse_response_frame(buf: &[u8]) -> std::io::Result<Option<ResponseFrame>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status code"))?;
    let mut body_len = 0;
    let mut close = false;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            body_len = value.trim().parse::<usize>().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
            })?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.trim().eq_ignore_ascii_case("close");
        }
    }
    let body_at = head_end + 4;
    Ok(Some(ResponseFrame {
        status,
        total: body_at + body_len,
        body_at,
        body_len,
        close,
    }))
}

/// One-shot request helper (its own connection, then dropped).
pub fn one_shot(addr: &str, raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    HttpClient::connect(addr)?.request(raw)
}

/// Renders a `POST` request with a JSON body, keep-alive framing.
pub fn render_post(addr: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders a `GET` request, keep-alive framing.
pub fn render_get(addr: &str, path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").into_bytes()
}

/// Polls `/healthz` until the server answers 200, returning the model's
/// `input_dim`. Gives up after `timeout`.
pub fn wait_healthy(addr: &str, timeout: Duration) -> Result<usize, String> {
    let deadline = Instant::now() + timeout;
    let probe = render_get(addr, "/healthz");
    loop {
        match one_shot(addr, &probe) {
            Ok((200, body)) => {
                let text = String::from_utf8_lossy(&body);
                let doc = gale_json::from_str(&text)
                    .map_err(|e| format!("unparseable /healthz body: {e}"))?;
                return doc
                    .get("input_dim")
                    .and_then(gale_json::Value::as_u64)
                    .map(|d| d as usize)
                    .ok_or_else(|| format!("/healthz has no input_dim: {text}"));
            }
            Ok((status, _)) => return Err(format!("/healthz answered {status}")),
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => return Err(format!("server at {addr} never became healthy: {e}")),
        }
    }
}

/// Builds a deterministic `/score` body: `rows` rows of `dim` features,
/// varied by `salt` so workers don't all send identical bytes.
pub fn score_body(rows: usize, dim: usize, salt: u64) -> String {
    let mut out = String::with_capacity(rows * dim * 8 + 32);
    out.push_str("{\"features\": [");
    for r in 0..rows {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for c in 0..dim {
            if c > 0 {
                out.push(',');
            }
            // A cheap LCG over (salt, r, c): finite, varied, deterministic.
            let mix = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * dim + c) as u64);
            let v = ((mix >> 33) % 4001) as f64 / 1000.0 - 2.0;
            out.push_str(&format!("{v:.3}"));
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Pulls `"model_version": N` out of a `/score` response body without a
/// full JSON parse (this runs once per request on the load-generator's
/// hot path).
pub fn extract_version(body: &[u8]) -> Option<u64> {
    const KEY: &[u8] = b"\"model_version\":";
    let at = body.windows(KEY.len()).position(|w| w == KEY)? + KEY.len();
    let digits: Vec<u8> = body[at..]
        .iter()
        .skip_while(|b| b.is_ascii_whitespace())
        .take_while(|b| b.is_ascii_digit())
        .copied()
        .collect();
    std::str::from_utf8(&digits).ok()?.parse().ok()
}

/// Sorted-sample percentile (nearest-rank): `q` in `[0, 1]`.
pub fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

struct WorkerStats {
    latencies_us: Vec<u64>,
    ok: u64,
    shed: u64,
    errors: u64,
    reconnects: u64,
    versions: Vec<u64>,
}

/// Runs the closed loop and aggregates every worker's samples.
pub fn run(cfg: &LoadConfig) -> LoadReport {
    run_samples(cfg).0
}

/// Like [`run`], but also hands back the sorted raw latency samples so a
/// caller can pool several passes and take percentiles over the union —
/// one pass's p99 is a handful of tail samples and mostly measures
/// scheduler noise.
pub fn run_samples(cfg: &LoadConfig) -> (LoadReport, Vec<u64>) {
    let start = Instant::now();
    let measure_start = start + cfg.warmup;
    let deadline = measure_start + cfg.duration;
    let workers: Vec<_> = (0..cfg.concurrency.max(1))
        .map(|w| {
            let cfg = cfg.clone();
            std::thread::spawn(move || worker_loop(&cfg, w as u64, measure_start, deadline))
        })
        .collect();

    let mut latencies = Vec::new();
    let mut report = LoadReport::default();
    let mut versions: Vec<u64> = Vec::new();
    for handle in workers {
        let stats = handle.join().expect("loadgen worker panicked");
        latencies.extend(stats.latencies_us);
        report.ok += stats.ok;
        report.shed += stats.shed;
        report.errors += stats.errors;
        report.reconnects += stats.reconnects;
        for v in stats.versions {
            if !versions.contains(&v) {
                versions.push(v);
            }
        }
    }
    versions.sort_unstable();
    latencies.sort_unstable();
    report.versions = versions;
    report.elapsed_s = cfg.duration.as_secs_f64();
    report.throughput_rps = report.ok as f64 / report.elapsed_s.max(1e-9);
    report.mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    report.p50_us = percentile(&latencies, 0.50);
    report.p99_us = percentile(&latencies, 0.99);
    report.p999_us = percentile(&latencies, 0.999);
    (report, latencies)
}

fn worker_loop(
    cfg: &LoadConfig,
    salt: u64,
    measure_start: Instant,
    deadline: Instant,
) -> WorkerStats {
    let body = score_body(cfg.rows, cfg.dim, salt);
    let raw = render_post(&cfg.addr, "/score", &body);
    let mut stats = WorkerStats {
        latencies_us: Vec::with_capacity(16 * 1024),
        ok: 0,
        shed: 0,
        errors: 0,
        reconnects: 0,
        versions: Vec::new(),
    };
    let mut client: Option<HttpClient> = None;
    while Instant::now() < deadline {
        let conn = match client.as_mut() {
            Some(c) => c,
            None => match HttpClient::connect(&cfg.addr) {
                Ok(c) => {
                    client = Some(c);
                    client.as_mut().unwrap()
                }
                Err(_) => {
                    stats.reconnects += 1;
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            },
        };
        let t0 = Instant::now();
        let outcome = conn.request(&raw);
        let measured = t0 >= measure_start;
        // A `Connection: close` response is a clean end of the exchange
        // (blocking mode answers every request that way): reconnect
        // instead of tripping over the EOF on the next request.
        if conn.close_announced() {
            client = None;
            stats.reconnects += 1;
        }
        match outcome {
            Ok((200, body)) => {
                if measured {
                    stats.ok += 1;
                    stats.latencies_us.push(t0.elapsed().as_micros() as u64);
                    if let Some(v) = extract_version(&body) {
                        if !stats.versions.contains(&v) {
                            stats.versions.push(v);
                        }
                    }
                }
            }
            Ok((503, _)) => {
                if measured {
                    stats.shed += 1;
                }
                // Back off briefly: hammering a shedding server just
                // measures the shed path.
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok((_, _)) => {
                if measured {
                    stats.errors += 1;
                }
            }
            Err(_) => {
                // Dropped connection: reconnect and retry. Only count it
                // as an error inside the measurement window — a request
                // was genuinely lost mid-flight.
                if measured {
                    stats.errors += 1;
                }
                stats.reconnects += 1;
                client = None;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_on_raw_samples() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 0.999), 100.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7], 0.999), 7.0);
    }

    #[test]
    fn score_body_is_valid_json_with_the_right_shape() {
        let body = score_body(3, 5, 42);
        let doc = gale_json::from_str(&body).unwrap();
        let rows = doc.get("features").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            let row = row.as_array().unwrap();
            assert_eq!(row.len(), 5);
            for v in row {
                let x = v.as_f64().unwrap();
                assert!(x.is_finite() && (-2.1..=2.1).contains(&x), "{x}");
            }
        }
        // Different salts produce different bytes.
        assert_ne!(body, score_body(3, 5, 43));
    }

    #[test]
    fn version_extraction_reads_score_bodies() {
        assert_eq!(extract_version(br#"{"model_version": 7}"#), Some(7));
        assert_eq!(
            extract_version(br#"{"probs": [[0.1]], "model_version":12, "x": 1}"#),
            Some(12)
        );
        assert_eq!(extract_version(b"{}"), None);
    }

    #[test]
    fn response_frames_parse_incrementally() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello";
        // Incomplete head, then done.
        assert!(parse_response_frame(&full[..10]).unwrap().is_none());
        let frame = parse_response_frame(full).unwrap().unwrap();
        assert_eq!((frame.status, frame.body_len), (200, 5));
        assert!(frame.close);
        assert_eq!(&full[frame.body_at..frame.total], b"hello");
        // No Content-Length means an empty body; keep-alive means no close.
        let frame =
            parse_response_frame(b"HTTP/1.1 204 No Content\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!((frame.status, frame.body_len), (204, 0));
        assert!(!frame.close);
    }
}
