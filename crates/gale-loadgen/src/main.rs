//! The `gale-loadgen` command-line entry point.
//!
//! - `gale-loadgen run --addr HOST:PORT [--concurrency N] [--duration-secs S]
//!   [--warmup-secs S] [--rows N] [--reload-ckpt PATH --reload-at-secs S]` —
//!   drives a live server with closed-loop keep-alive workers and prints a
//!   JSON report. With `--reload-ckpt`, fires `POST /admin/reload` mid-run
//!   and fails unless the swap dropped zero requests.
//! - `gale-loadgen bench [--smoke]` — the committed serving benchmark:
//!   boots the sibling `gale-serve` binary in three configurations
//!   (blocking single-shard, event-loop single-shard, event-loop
//!   four-shard), measures each, checks a hot reload under four-shard
//!   load, measures the cost of request tracing (alternating pooled
//!   passes against a tracing-on and a tracing-off server), writes
//!   `BENCH_serve.json` at the repo root (override with
//!   `GALE_BENCH_SERVE_OUT`), and gates the intra-run speedups and p99
//!   ratio against the committed baseline (override with
//!   `GALE_BENCH_SERVE_BASELINE`; skip with `GALE_BENCH_NO_GATE=1`). The
//!   tracing-on vs tracing-off pair is gated intra-run: tracing may not
//!   cost more than 5% of p99.
//! - `gale-loadgen bench-precision [--smoke]` — the serving half of the
//!   committed precision report: boots an f64 shard and an f32 shard of
//!   the same checkpoint side by side (alternating pooled passes, like
//!   the tracing measurement), checks that both answer a fixed eval
//!   request with identical verdicts, and merges serve p50/p99 and the
//!   f32-over-f64 serving speedups into `BENCH_precision.json` written
//!   earlier by `cargo bench -p gale-bench --bench precision` (override
//!   with `GALE_BENCH_PRECISION_OUT`/`GALE_BENCH_PRECISION_BASELINE`).
//!
//! - `gale-loadgen bench-stream [--smoke]` — the committed streaming
//!   benchmark: builds a `stream-demo` bundle, loads two engines from it,
//!   drives identical mutation rounds through both, and times the
//!   incremental k-hop refresh against a full from-scratch re-embed and
//!   re-score of the mutated graph. The verdicts must agree *bitwise*
//!   every round — that check binds on every run, smoke included. A
//!   second leg boots `gale-serve --stream` and measures `POST /mutate`
//!   p50/p99 over the wire, checking the graph version never runs
//!   backwards. Writes `BENCH_stream.json` (override with
//!   `GALE_BENCH_STREAM_OUT`/`GALE_BENCH_STREAM_BASELINE`); non-smoke
//!   runs also gate the incremental-vs-full speedup against a hard 5x
//!   floor.
//!
//! Intra-run ratios — event-loop throughput over blocking throughput
//! measured in the same run — transfer across machines the way absolute
//! requests/sec never do, which is what makes the committed report a
//! meaningful CI gate.

use gale_json::{json, Value};
use gale_loadgen::{
    one_shot, percentile, render_post, run, run_samples, wait_healthy, LoadConfig, LoadReport,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("bench-precision") => cmd_bench_precision(&args[1..]),
        Some("bench-stream") => cmd_bench_stream(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            gale_obs::warn!("gale-loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gale-loadgen: closed-loop load generator and serving benchmark for gale-serve

USAGE:
  gale-loadgen run --addr HOST:PORT [--concurrency N] [--duration-secs S]
                   [--warmup-secs S] [--rows N]
                   [--reload-ckpt PATH --reload-at-secs S]
  gale-loadgen bench [--smoke]
  gale-loadgen bench-precision [--smoke]
  gale-loadgen bench-stream [--smoke]
";

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !allowed.contains(&flag.as_str()) {
            return Err(format!("unknown flag `{flag}`\n{USAGE}"));
        }
        if flag == "--smoke" {
            flags.push((flag.clone(), "1".to_string()));
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
        flags.push((flag.clone(), value.clone()));
    }
    Ok(flags)
}

fn find<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(f, _)| f == name)
        .map(|(_, v)| v.as_str())
}

fn parse_num<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match find(flags, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag `{name}` got unparseable value `{raw}`")),
    }
}

fn report_json(name: &str, r: &LoadReport) -> Value {
    json!({
        "name": name,
        "throughput_rps": r.throughput_rps,
        "ok": r.ok as f64,
        "shed": r.shed as f64,
        "errors": r.errors as f64,
        "reconnects": r.reconnects as f64,
        "elapsed_s": r.elapsed_s,
        "mean_us": r.mean_us,
        "p50_us": r.p50_us,
        "p99_us": r.p99_us,
        "p999_us": r.p999_us,
        "versions": Value::Array(r.versions.iter().map(|&v| Value::Int(v as i64)).collect()),
    })
}

// ---------------------------------------------------------------------------
// `run`: drive an already-running server
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "--addr",
            "--concurrency",
            "--duration-secs",
            "--warmup-secs",
            "--rows",
            "--reload-ckpt",
            "--reload-at-secs",
        ],
    )?;
    let addr = find(&flags, "--addr").ok_or("run requires --addr HOST:PORT")?;
    let dim = wait_healthy(addr, Duration::from_secs(5))?;
    let cfg = LoadConfig {
        addr: addr.to_string(),
        concurrency: parse_num(&flags, "--concurrency", 8usize)?.max(1),
        duration: Duration::from_secs_f64(parse_num(&flags, "--duration-secs", 4.0f64)?),
        warmup: Duration::from_secs_f64(parse_num(&flags, "--warmup-secs", 1.0f64)?),
        rows: parse_num(&flags, "--rows", 4usize)?.max(1),
        dim,
    };
    let reload_ckpt = find(&flags, "--reload-ckpt").map(str::to_string);
    let reload_at = Duration::from_secs_f64(parse_num(&flags, "--reload-at-secs", 1.0f64)?);

    let report = match reload_ckpt {
        None => run(&cfg),
        Some(ckpt) => run_with_reload(&cfg, &ckpt, reload_at)?,
    };
    println!(
        "{}",
        gale_json::to_string_pretty(&report_json("run", &report))
    );
    if report.errors > 0 {
        return Err(format!("{} request(s) failed", report.errors));
    }
    Ok(())
}

/// Runs the closed loop while a side thread fires `/admin/reload` at
/// `reload_at` into the run; the swap must answer 200 and the run must
/// finish with zero errors and zero shed (every request either scored by
/// the old model or the new one, never dropped in between).
fn run_with_reload(
    cfg: &LoadConfig,
    ckpt: &str,
    reload_at: Duration,
) -> Result<LoadReport, String> {
    let ckpt = std::fs::canonicalize(ckpt)
        .map_err(|e| format!("cannot resolve `{ckpt}`: {e}"))?
        .to_string_lossy()
        .into_owned();
    let addr = cfg.addr.clone();
    let reloader = std::thread::spawn(move || -> Result<(), String> {
        std::thread::sleep(reload_at);
        let body = json!({"ckpt": ckpt.as_str()}).to_string();
        let (status, reply) = one_shot(&addr, &render_post(&addr, "/admin/reload", &body))
            .map_err(|e| format!("reload request failed: {e}"))?;
        if status != 200 {
            return Err(format!(
                "reload answered {status}: {}",
                String::from_utf8_lossy(&reply)
            ));
        }
        Ok(())
    });
    let report = run(cfg);
    reloader.join().expect("reloader thread panicked")?;
    if report.errors > 0 || report.shed > 0 {
        return Err(format!(
            "reload under load dropped traffic: {} errors, {} shed",
            report.errors, report.shed
        ));
    }
    if report.versions.len() < 2 {
        return Err(format!(
            "reload never became visible: versions seen {:?}",
            report.versions
        ));
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// `bench`: the committed BENCH_serve.json pipeline
// ---------------------------------------------------------------------------

struct Leg {
    name: &'static str,
    mode: &'static str,
    shards: usize,
    trace: bool,
}

const LEGS: [Leg; 3] = [
    Leg {
        name: "blocking/1",
        mode: "blocking",
        shards: 1,
        trace: true,
    },
    Leg {
        name: "evloop/1",
        mode: "evloop",
        shards: 1,
        trace: true,
    },
    Leg {
        name: "evloop/4",
        mode: "evloop",
        shards: 4,
        trace: true,
    },
];

fn repo_path(p: PathBuf) -> PathBuf {
    if p.is_absolute() {
        p
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(p)
    }
}

fn smoke_mode(flags: &[(String, String)]) -> bool {
    find(flags, "--smoke").is_some() || std::env::var("GALE_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The sibling `gale-serve` binary (same target directory as this one).
fn serve_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let path = dir.join("gale-serve");
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build it first: cargo build --release -p gale-serve",
            path.display()
        ))
    }
}

/// An OS-assigned free loopback port (bind, read, drop).
fn free_port() -> Result<u16, String> {
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("port probe: {e}"))?;
    Ok(listener
        .local_addr()
        .map_err(|e| format!("port probe: {e}"))?
        .port())
}

/// Boots `gale-serve` pinned to one internal thread (`GALE_THREADS=1`), so
/// shard scaling — not intra-op parallelism — is what the benchmark
/// measures.
fn spawn_server(
    binary: &Path,
    ckpt: &Path,
    addr: &str,
    mode: &str,
    shards: usize,
    precision: &str,
    trace: bool,
) -> Result<std::process::Child, String> {
    std::process::Command::new(binary)
        .args([
            "serve",
            "--ckpt",
            &ckpt.to_string_lossy(),
            "--addr",
            addr,
            "--mode",
            mode,
            "--shards",
            &shards.to_string(),
            "--precision",
            precision,
            // The default 2ms batching linger is tuned for open-loop
            // traffic; under a closed loop it dominates every leg's
            // latency and masks the architectural differences the bench
            // exists to measure.
            "--max-wait-us",
            "200",
            "--trace",
            if trace { "on" } else { "off" },
        ])
        .env("GALE_THREADS", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", binary.display()))
}

fn stop_server(addr: &str, mut child: std::process::Child) -> Result<(), String> {
    let shutdown = render_post(addr, "/admin/shutdown", "");
    if one_shot(addr, &shutdown).is_err() {
        let _ = child.kill();
    }
    let status = child
        .wait()
        .map_err(|e| format!("waiting for gale-serve: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("gale-serve exited with {status}"))
    }
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--smoke"])?;
    let smoke = smoke_mode(&flags);
    let binary = serve_binary()?;
    let scratch = std::env::temp_dir().join(format!("gale-loadgen-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("mkdir {}: {e}", scratch.display()))?;

    // Two demo checkpoints with the same input dimension: one to boot
    // with, one to hot-swap to under load.
    let ckpt_a = scratch.join("bench-a.ckpt");
    let ckpt_b = scratch.join("bench-b.ckpt");
    for (path, seed) in [(&ckpt_a, "7"), (&ckpt_b, "8")] {
        let status = std::process::Command::new(&binary)
            .args([
                "train-demo",
                "--out",
                &path.to_string_lossy(),
                "--seed",
                seed,
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .status()
            .map_err(|e| format!("train-demo: {e}"))?;
        if !status.success() {
            return Err(format!("train-demo exited with {status}"));
        }
    }

    let (warmup, duration) = if smoke {
        (Duration::from_millis(200), Duration::from_millis(800))
    } else {
        (Duration::from_secs(1), Duration::from_secs(4))
    };

    // Throughput legs.
    let mut entries = Vec::new();
    let mut measured: Vec<(&str, LoadReport)> = Vec::new();
    for leg in &LEGS {
        let addr = format!("127.0.0.1:{}", free_port()?);
        let child = spawn_server(
            &binary, &ckpt_a, &addr, leg.mode, leg.shards, "f64", leg.trace,
        )?;
        let dim = wait_healthy(&addr, Duration::from_secs(10))?;
        let report = run(&LoadConfig {
            addr: addr.clone(),
            concurrency: 8,
            duration,
            warmup,
            rows: 4,
            dim,
        });
        stop_server(&addr, child)?;
        gale_obs::info!(
            "{:<16} {:>9.0} req/s  p50 {:>6.0}us  p99 {:>7.0}us  ({} ok, {} shed, {} errors)",
            leg.name,
            report.throughput_rps,
            report.p50_us,
            report.p99_us,
            report.ok,
            report.shed,
            report.errors
        );
        if report.errors > 0 {
            return Err(format!(
                "leg {} had {} failed requests",
                leg.name, report.errors
            ));
        }
        if report.ok == 0 {
            return Err(format!("leg {} completed zero requests", leg.name));
        }
        entries.push(report_json(leg.name, &report));
        measured.push((leg.name, report));
    }

    // Reload-under-load leg: four shards, hot swap mid-run, zero drops.
    let reload_report = {
        let addr = format!("127.0.0.1:{}", free_port()?);
        let child = spawn_server(&binary, &ckpt_a, &addr, "evloop", 4, "f64", true)?;
        let dim = wait_healthy(&addr, Duration::from_secs(10))?;
        let cfg = LoadConfig {
            addr: addr.clone(),
            concurrency: 4,
            duration,
            warmup,
            rows: 4,
            dim,
        };
        let result = run_with_reload(&cfg, &ckpt_b.to_string_lossy(), warmup + duration / 3);
        stop_server(&addr, child)?;
        let report = result?;
        gale_obs::info!(
            "reload/evloop/4: versions {:?}, {} ok, 0 shed, 0 errors",
            report.versions,
            report.ok
        );
        entries.push(report_json("reload/evloop/4", &report));
        report
    };

    let tracing = measure_tracing_overhead(&binary, &ckpt_a, smoke)?;
    let _ = std::fs::remove_dir_all(&scratch);

    // Intra-run ratios: each leg vs the blocking single-shard baseline,
    // plus the pure shard-scaling ratio.
    let rps = |name: &str| {
        measured
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r.throughput_rps)
            .unwrap_or(0.0)
    };
    let p99 = |name: &str| {
        measured
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r.p99_us)
            .unwrap_or(0.0)
    };
    let mut speedups = gale_json::Map::new();
    speedups.insert(
        "evloop/1",
        Value::from(rps("evloop/1") / rps("blocking/1").max(1e-9)),
    );
    speedups.insert(
        "evloop/4",
        Value::from(rps("evloop/4") / rps("blocking/1").max(1e-9)),
    );
    speedups.insert(
        "shards/4v1",
        Value::from(rps("evloop/4") / rps("evloop/1").max(1e-9)),
    );
    let p99_ratio = p99("evloop/4") / p99("blocking/1").max(1e-9);

    let out_path = std::env::var("GALE_BENCH_SERVE_OUT")
        .map(|p| repo_path(p.into()))
        .unwrap_or_else(|_| repo_path("BENCH_serve.json".into()));
    let baseline_path = std::env::var("GALE_BENCH_SERVE_BASELINE")
        .map(|p| repo_path(p.into()))
        .unwrap_or_else(|_| out_path.clone());
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| gale_json::from_str(&text).ok());

    let report = json!({
        "schema": "gale-bench-serve/v1",
        "smoke": smoke,
        "concurrency": 8,
        "rows_per_request": 4,
        "entries": Value::Array(entries),
        "speedups": Value::Object(speedups),
        "p99_ratio_evloop4_vs_blocking1": p99_ratio,
        "tracing": tracing,
        "reload_versions": Value::Array(
            reload_report.versions.iter().map(|&v| Value::Int(v as i64)).collect()
        ),
    });
    std::fs::write(&out_path, gale_json::to_string_pretty(&report))
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!("serve bench report written to {}", out_path.display());

    gate(&report, baseline.as_ref(), &baseline_path, smoke)
}

/// Measures what request tracing costs: two identical single-shard
/// event-loop servers — one `--trace on`, one `--trace off` — alive at
/// once, driven in alternating passes, percentiles taken over the pooled
/// samples of each side. One pass's p99 hangs off a handful of tail
/// samples and mostly measures scheduler noise; alternating passes give
/// both sides the same machine weather and pooling gives the tail enough
/// samples to be stable under the 5% gate.
fn measure_tracing_overhead(binary: &Path, ckpt: &Path, smoke: bool) -> Result<Value, String> {
    let (passes, warmup, duration) = if smoke {
        (
            1usize,
            Duration::from_millis(100),
            Duration::from_millis(300),
        )
    } else {
        (6usize, Duration::from_millis(250), Duration::from_secs(1))
    };
    let mut servers = Vec::new();
    for trace in [true, false] {
        let addr = format!("127.0.0.1:{}", free_port()?);
        let child = spawn_server(binary, ckpt, &addr, "evloop", 1, "f64", trace)?;
        let dim = wait_healthy(&addr, Duration::from_secs(10))?;
        servers.push((addr, child, dim));
    }
    let mut pooled: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut ok = [0u64; 2];
    let mut errors = [0u64; 2];
    for pass in 0..passes {
        // Swap which side goes first each pass: any slow drift in machine
        // conditions then averages out instead of always taxing one side.
        for side in [pass % 2, (pass + 1) % 2] {
            let (addr, _, dim) = &servers[side];
            let (report, samples) = run_samples(&LoadConfig {
                addr: addr.clone(),
                concurrency: 8,
                duration,
                warmup,
                rows: 4,
                dim: *dim,
            });
            ok[side] += report.ok;
            errors[side] += report.errors;
            pooled[side].extend(samples);
        }
    }
    for (addr, child, _) in servers {
        stop_server(&addr, child)?;
    }
    for (side, label) in [(0, "on"), (1, "off")] {
        if errors[side] > 0 {
            return Err(format!(
                "tracing-{label} leg had {} failed requests",
                errors[side]
            ));
        }
        if ok[side] == 0 {
            return Err(format!("tracing-{label} leg completed zero requests"));
        }
    }
    pooled[0].sort_unstable();
    pooled[1].sort_unstable();
    let secs = passes as f64 * duration.as_secs_f64();
    let (p99_on, p99_off) = (percentile(&pooled[0], 0.99), percentile(&pooled[1], 0.99));
    let ratio = p99_on / p99_off.max(1e-9);
    gale_obs::info!(
        "tracing on/off   p99 {p99_on:>7.0}us / {p99_off:>7.0}us ({:+.1}%), {:.0} / {:.0} req/s",
        (ratio - 1.0) * 100.0,
        ok[0] as f64 / secs,
        ok[1] as f64 / secs
    );
    Ok(json!({
        "passes": passes as i64,
        "on_rps": ok[0] as f64 / secs,
        "off_rps": ok[1] as f64 / secs,
        "p99_on_us": p99_on,
        "p99_off_us": p99_off,
        "p99_overhead_ratio": ratio,
    }))
}

// ---------------------------------------------------------------------------
// `bench-precision`: the serving half of BENCH_precision.json
// ---------------------------------------------------------------------------

/// Drives an f64 shard and an f32 shard of the same checkpoint side by
/// side and merges serve-path p50/p99 plus the f32-over-f64 serving
/// speedups into the precision report the criterion bench wrote earlier.
/// Runs the kernel bench first; this command refuses to invent the file
/// from scratch so the committed report is always the union of both
/// halves.
fn cmd_bench_precision(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--smoke"])?;
    let smoke = smoke_mode(&flags);
    let binary = serve_binary()?;
    let scratch = std::env::temp_dir().join(format!("gale-loadgen-prec-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("mkdir {}: {e}", scratch.display()))?;
    let ckpt = scratch.join("precision.ckpt");
    let status = std::process::Command::new(&binary)
        .args([
            "train-demo",
            "--out",
            &ckpt.to_string_lossy(),
            "--seed",
            "7",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .status()
        .map_err(|e| format!("train-demo: {e}"))?;
    if !status.success() {
        return Err(format!("train-demo exited with {status}"));
    }

    let out_path = std::env::var("GALE_BENCH_PRECISION_OUT")
        .map(|p| repo_path(p.into()))
        .unwrap_or_else(|_| repo_path("BENCH_precision.json".into()));
    let baseline_path = std::env::var("GALE_BENCH_PRECISION_BASELINE")
        .map(|p| repo_path(p.into()))
        .unwrap_or_else(|_| out_path.clone());
    let kernel_report: Value = std::fs::read_to_string(&out_path)
        .map_err(|e| {
            format!(
                "cannot read {} ({e}) — run `cargo bench -p gale-bench --bench precision` first",
                out_path.display()
            )
        })
        .and_then(|text| {
            gale_json::from_str(&text)
                .map_err(|e| format!("{} is not JSON: {e}", out_path.display()))
        })?;
    let baseline: Option<Value> = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| gale_json::from_str(&text).ok());

    // One f64 server and one f32 server alive at once, single shard each,
    // event-loop mode — the same alternating-pooled-passes scheme as the
    // tracing measurement, so both precisions see the same machine
    // weather and the pooled tails are stable.
    let (passes, warmup, duration) = if smoke {
        (
            1usize,
            Duration::from_millis(100),
            Duration::from_millis(300),
        )
    } else {
        (6usize, Duration::from_millis(250), Duration::from_secs(1))
    };
    let mut servers = Vec::new();
    for precision in ["f64", "f32"] {
        let addr = format!("127.0.0.1:{}", free_port()?);
        let child = spawn_server(&binary, &ckpt, &addr, "evloop", 1, precision, true)?;
        let dim = wait_healthy(&addr, Duration::from_secs(10))?;
        servers.push((addr, child, dim));
    }

    // Fixed eval request to both shards before any load: identical rows,
    // so the verdicts must agree and the score divergence is the serving
    // path's own measurement of the tolerance contract.
    let agreement_rows = 16usize;
    let dim = servers[0].2;
    let eval_body = gale_loadgen::score_body(agreement_rows, dim, 4242);
    let mut replies = Vec::new();
    for (addr, _, _) in &servers {
        let (status, reply) = one_shot(addr, &render_post(addr, "/score", &eval_body))
            .map_err(|e| format!("eval request to {addr} failed: {e}"))?;
        if status != 200 {
            return Err(format!(
                "eval request answered {status}: {}",
                String::from_utf8_lossy(&reply)
            ));
        }
        let doc: Value = gale_json::from_str(&String::from_utf8_lossy(&reply))
            .map_err(|e| format!("eval reply is not JSON: {e}"))?;
        replies.push(doc);
    }
    let probs_of = |doc: &Value| -> Result<Vec<f64>, String> {
        doc.get("probs")
            .and_then(Value::as_array)
            .map(|rows| {
                rows.iter()
                    .flat_map(|row| row.as_array().into_iter().flatten())
                    .filter_map(Value::as_f64)
                    .collect()
            })
            .ok_or_else(|| "eval reply has no probs".to_string())
    };
    let (p64, p32) = (probs_of(&replies[0])?, probs_of(&replies[1])?);
    if p64.len() != agreement_rows * 3 || p32.len() != agreement_rows * 3 {
        return Err(format!(
            "eval replies have {} / {} probs, wanted {}",
            p64.len(),
            p32.len(),
            agreement_rows * 3
        ));
    }
    let mut max_div = 0.0f64;
    let mut flips = 0u64;
    for r in 0..agreement_rows {
        for c in 0..3 {
            max_div = max_div.max((p64[r * 3 + c] - p32[r * 3 + c]).abs());
        }
        if (p64[r * 3] > p64[r * 3 + 1]) != (p32[r * 3] > p32[r * 3 + 1]) {
            flips += 1;
        }
    }
    gale_obs::info!(
        "serve eval: {agreement_rows} rows, max |p_f32 - p_f64| {max_div:.3e}, {flips} flip(s)"
    );

    let mut pooled: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut ok = [0u64; 2];
    let mut errors = [0u64; 2];
    for pass in 0..passes {
        for side in [pass % 2, (pass + 1) % 2] {
            let (addr, _, dim) = &servers[side];
            let (report, samples) = run_samples(&LoadConfig {
                addr: addr.clone(),
                concurrency: 8,
                duration,
                warmup,
                rows: 4,
                dim: *dim,
            });
            ok[side] += report.ok;
            errors[side] += report.errors;
            pooled[side].extend(samples);
        }
    }
    for (addr, child, _) in servers {
        stop_server(&addr, child)?;
    }
    let _ = std::fs::remove_dir_all(&scratch);
    for (side, label) in [(0, "f64"), (1, "f32")] {
        if errors[side] > 0 {
            return Err(format!("{label} leg had {} failed requests", errors[side]));
        }
        if ok[side] == 0 {
            return Err(format!("{label} leg completed zero requests"));
        }
    }
    pooled[0].sort_unstable();
    pooled[1].sort_unstable();
    let secs = passes as f64 * duration.as_secs_f64();
    let side_json = |side: usize| {
        json!({
            "rps": ok[side] as f64 / secs,
            "p50_us": percentile(&pooled[side], 0.50),
            "p99_us": percentile(&pooled[side], 0.99),
        })
    };
    let (rps64, rps32) = (ok[0] as f64 / secs, ok[1] as f64 / secs);
    let (p99_64, p99_32) = (percentile(&pooled[0], 0.99), percentile(&pooled[1], 0.99));
    gale_obs::info!(
        "serve f64/f32   p99 {p99_64:>7.0}us / {p99_32:>7.0}us, {rps64:.0} / {rps32:.0} req/s"
    );

    // Merge: keep every field the kernel half wrote, append the serve
    // section, and extend the speedups map with the serving ratios
    // (higher is better for both: rps32/rps64 and p99_64/p99_32).
    let mut speedups = gale_json::Map::new();
    if let Some(kernel_speedups) = kernel_report.get("speedups").and_then(Value::as_object) {
        for (key, v) in kernel_speedups.iter() {
            speedups.insert(key.clone(), v.clone());
        }
    }
    speedups.insert("serve/f32/rps", Value::from(rps32 / rps64.max(1e-9)));
    speedups.insert("serve/f32/p99", Value::from(p99_64 / p99_32.max(1e-9)));
    let mut merged = gale_json::Map::new();
    if let Some(kernel) = kernel_report.as_object() {
        for (key, v) in kernel.iter() {
            if key != "speedups" && key != "serve" {
                merged.insert(key.clone(), v.clone());
            }
        }
    }
    // The merged report is smoke if either half ran in smoke mode.
    let kernel_smoke = kernel_report.get("smoke").and_then(Value::as_bool) == Some(true);
    merged.insert("smoke", Value::from(smoke || kernel_smoke));
    merged.insert("speedups", Value::Object(speedups));
    merged.insert(
        "serve",
        json!({
            "passes": passes as f64,
            "f64": side_json(0),
            "f32": side_json(1),
            "agreement_rows": agreement_rows as f64,
            "max_abs_divergence": max_div,
            "verdict_flips": flips as f64,
        }),
    );
    let report = Value::Object(merged);
    std::fs::write(&out_path, gale_json::to_string_pretty(&report))
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!("precision serve report merged into {}", out_path.display());

    gate_precision(
        &report,
        baseline.as_ref(),
        &baseline_path,
        smoke || kernel_smoke,
    )
}

/// The precision gate, run over the fully-merged report: the tolerance
/// half (verdict flips, score divergence — serving section) binds on
/// every run because the eval request is deterministic; the speedup half
/// follows the usual smoke rules and 1.2x floor.
fn gate_precision(
    report: &Value,
    baseline: Option<&Value>,
    baseline_path: &Path,
    smoke: bool,
) -> Result<(), String> {
    if std::env::var("GALE_BENCH_NO_GATE").is_ok_and(|v| v == "1") {
        return Ok(());
    }
    let mut failures = Vec::new();
    let serve = report.get("serve");
    let flips = serve
        .and_then(|s| s.get("verdict_flips"))
        .and_then(Value::as_f64)
        .unwrap_or(f64::INFINITY);
    let base_flips = baseline
        .and_then(|b| b.get("serve"))
        .and_then(|s| s.get("verdict_flips"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if flips > base_flips {
        failures.push(format!(
            "serve verdict flips on the fixed eval request: {base_flips:.0} -> {flips:.0}"
        ));
    }
    if let (Some(base_div), Some(div)) = (
        baseline
            .and_then(|b| b.get("serve"))
            .and_then(|s| s.get("max_abs_divergence"))
            .and_then(Value::as_f64),
        serve
            .and_then(|s| s.get("max_abs_divergence"))
            .and_then(Value::as_f64),
    ) {
        if div > base_div * 1.10 {
            failures.push(format!(
                "serve score divergence: {base_div:.3e} -> {div:.3e} (>10% beyond baseline)"
            ));
        }
    }
    let usable_baseline = match baseline {
        _ if smoke => None,
        None => {
            println!(
                "no baseline at {}; skipping the speedup half of the gate",
                baseline_path.display()
            );
            None
        }
        Some(b) if b.get("smoke").and_then(Value::as_bool) == Some(true) => {
            println!("baseline is a smoke run; skipping the speedup half of the gate");
            None
        }
        Some(b) => Some(b),
    };
    if let Some(baseline) = usable_baseline {
        let current_speedups = report
            .get("speedups")
            .and_then(Value::as_object)
            .expect("merged report always has speedups");
        if let Some(base_speedups) = baseline.get("speedups").and_then(Value::as_object) {
            for (key, base) in base_speedups.iter() {
                let (Some(base), Some(current)) = (
                    base.as_f64(),
                    current_speedups.get(key).and_then(Value::as_f64),
                ) else {
                    continue;
                };
                if base < 1.2 {
                    continue;
                }
                if current < base * 0.85 {
                    failures.push(format!(
                        "{key}: speedup {base:.2}x -> {current:.2}x ({:.0}% of baseline)",
                        current / base * 100.0
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        println!("precision gate passed");
        Ok(())
    } else {
        Err(format!(
            "precision contract regressed:\n  {}",
            failures.join("\n  ")
        ))
    }
}

// ---------------------------------------------------------------------------
// `bench-stream`: the committed BENCH_stream.json pipeline
// ---------------------------------------------------------------------------

/// Hard floor on the incremental-vs-full speedup for non-smoke runs. The
/// whole point of the delta overlay and k-hop dirty tracking is that a
/// handful of mutations must not cost a whole-graph re-embed; 5x on the
/// committed bundle size is the contract from the streaming design note.
const STREAM_SPEEDUP_FLOOR: f64 = 5.0;

/// One deterministic mutation round: an attribute rewrite, an edge
/// removal, and a same-community edge insertion. The strides are coprime
/// to the bundle's community count so successive rounds wander the whole
/// graph instead of re-dirtying one neighborhood.
fn stream_round(round: usize, n: usize, dim: usize) -> Vec<gale_stream::Mutation> {
    use gale_stream::Mutation;
    let node = (round * 7 + 3) % n;
    let attrs = (0..dim)
        .map(|c| ((round + c) % 13) as f64 * 0.15 - 0.9)
        .collect();
    let ru = (round * 11) % n;
    let au = (round * 13 + 2) % n;
    vec![
        Mutation::UpdateAttrs { node, attrs },
        Mutation::RemoveEdge {
            u: ru,
            v: (ru + 8) % n,
        },
        Mutation::AddEdge {
            u: au,
            v: (au + 16) % n,
            weight: 1.0,
        },
    ]
}

/// Fails unless both engines' verdicts agree to the bit. Version stamps
/// are excluded on purpose: the full rebuild stamps every node with the
/// current version while the incremental path only stamps refreshed ones.
fn assert_stream_parity(
    live: &mut gale_stream::StreamEngine,
    control: &mut gale_stream::StreamEngine,
    round: usize,
) -> Result<(), String> {
    let a = live.all_scores();
    let b = control.all_scores();
    if a.len() != b.len() {
        return Err(format!(
            "round {round}: node counts diverged ({} vs {})",
            a.len(),
            b.len()
        ));
    }
    for (sa, sb) in a.iter().zip(&b) {
        let bits_match = sa
            .probs
            .iter()
            .zip(&sb.probs)
            .all(|(x, y)| x.to_bits() == y.to_bits())
            && sa.score.to_bits() == sb.score.to_bits()
            && sa.erroneous == sb.erroneous;
        if !bits_match {
            return Err(format!(
                "round {round}: node {} verdicts diverged — incremental {:?} vs full {:?}",
                sa.node, sa.probs, sb.probs
            ));
        }
    }
    Ok(())
}

fn cmd_bench_stream(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["--smoke"])?;
    let smoke = smoke_mode(&flags);
    let binary = serve_binary()?;
    let scratch = std::env::temp_dir().join(format!("gale-loadgen-stream-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("mkdir {}: {e}", scratch.display()))?;
    let bundle = scratch.join("stream-bundle");
    // The non-smoke bundle must be large enough that a 2-hop dirty
    // closure (plus its one-hop refresh frontier) is a small fraction of
    // the graph — locality is the whole bet. At the demo's ~6 average
    // degree a round dirties a few hundred nodes, so 8k nodes keeps the
    // frontier under ~15% of the graph.
    let (nodes, dim, rounds, http_mutations) = if smoke {
        (240usize, 8usize, 4usize, 40usize)
    } else {
        (8000usize, 8usize, 12usize, 300usize)
    };
    let status = std::process::Command::new(&binary)
        .args([
            "stream-demo",
            "--out",
            &bundle.to_string_lossy(),
            "--nodes",
            &nodes.to_string(),
            "--dim",
            &dim.to_string(),
            "--seed",
            "11",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .status()
        .map_err(|e| format!("stream-demo: {e}"))?;
    if !status.success() {
        return Err(format!("stream-demo exited with {status}"));
    }

    // In-process leg: two engines from the same bundle (identical artifact
    // bits), identical mutation rounds into both. One refreshes its k-hop
    // dirty set; the other re-embeds and re-scores the whole mutated graph
    // from scratch. Same rounds, same machine weather — the ratio is
    // intra-run and the verdicts must match bitwise after every round.
    let cfg = gale_stream::StreamConfig::default();
    let mut live = gale_stream::load_bundle(&bundle, cfg)
        .map_err(|e| format!("loading {}: {e}", bundle.display()))?;
    let mut control = gale_stream::load_bundle(&bundle, cfg)
        .map_err(|e| format!("loading {}: {e}", bundle.display()))?;
    let mut incr_ns = 0u128;
    let mut full_ns = 0u128;
    let mut refreshed_total = 0usize;
    for round in 0..rounds {
        let batch = stream_round(round, nodes, dim);
        let ra = live
            .apply(&batch)
            .map_err(|e| format!("round {round}: {e}"))?;
        let rb = control
            .apply(&batch)
            .map_err(|e| format!("round {round}: {e}"))?;
        for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
            if oa.admitted != ob.admitted {
                return Err(format!(
                    "round {round}: admission diverged between identical engines"
                ));
            }
        }
        let t = std::time::Instant::now();
        refreshed_total += live.refresh();
        incr_ns += t.elapsed().as_nanos();
        let t = std::time::Instant::now();
        control.rescore_full();
        full_ns += t.elapsed().as_nanos();
        assert_stream_parity(&mut live, &mut control, round)?;
    }
    let speedup = full_ns as f64 / (incr_ns as f64).max(1.0);
    gale_obs::info!(
        "stream {rounds} rounds over {nodes} nodes: incremental {:.0}us total \
         ({} rows refreshed), full {:.0}us total — {speedup:.1}x, verdicts bitwise-equal",
        incr_ns as f64 / 1_000.0,
        refreshed_total,
        full_ns as f64 / 1_000.0
    );

    // HTTP leg: the same bundle served with `--stream`, mutations over the
    // wire. Closed-loop single client — the interesting numbers are the
    // mutate latency tail and the graph version never running backwards.
    let addr = format!("127.0.0.1:{}", free_port()?);
    let child = std::process::Command::new(&binary)
        .args([
            "serve",
            "--ckpt",
            &bundle.join("sgan.ckpt").to_string_lossy(),
            "--addr",
            &addr,
            "--mode",
            "evloop",
            "--shards",
            "1",
            "--max-wait-us",
            "200",
            "--trace",
            "off",
            "--stream",
            &bundle.to_string_lossy(),
        ])
        .env("GALE_THREADS", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", binary.display()))?;
    wait_healthy(&addr, Duration::from_secs(10))?;
    let mut samples = Vec::with_capacity(http_mutations);
    let mut last_version = 0u64;
    for round in 0..http_mutations {
        let batch: Vec<Value> = stream_round(round + rounds, nodes, dim)
            .iter()
            .map(gale_stream::Mutation::to_json)
            .collect();
        let body = json!({"mutations": Value::Array(batch)}).to_string();
        let t = std::time::Instant::now();
        let (status, reply) = one_shot(&addr, &render_post(&addr, "/mutate", &body))
            .map_err(|e| format!("mutate {round}: {e}"))?;
        samples.push(t.elapsed().as_micros() as u64);
        if status != 200 {
            return Err(format!(
                "mutate {round} answered {status}: {}",
                String::from_utf8_lossy(&reply)
            ));
        }
        let doc: Value = gale_json::from_str(&String::from_utf8_lossy(&reply))
            .map_err(|e| format!("mutate {round} reply is not JSON: {e}"))?;
        let version = doc
            .get("graph_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("mutate {round} reply has no graph_version"))?;
        if version < last_version {
            return Err(format!(
                "graph version ran backwards: {last_version} -> {version}"
            ));
        }
        last_version = version;
    }
    let (rescore_status, rescore_reply) = one_shot(
        &addr,
        &render_post(&addr, "/score", r#"{"nodes": [0, 1, 2, 3]}"#),
    )
    .map_err(|e| format!("node re-score: {e}"))?;
    if rescore_status != 200 {
        return Err(format!(
            "node re-score answered {rescore_status}: {}",
            String::from_utf8_lossy(&rescore_reply)
        ));
    }
    stop_server(&addr, child)?;
    let _ = std::fs::remove_dir_all(&scratch);
    samples.sort_unstable();
    let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));
    gale_obs::info!(
        "stream http: {http_mutations} mutate batches, p50 {p50:.0}us p99 {p99:.0}us, \
         graph version {last_version}"
    );

    let mut speedups = gale_json::Map::new();
    speedups.insert("stream/incremental_vs_full", Value::from(speedup));
    let report = json!({
        "schema": "gale-bench-stream/v1",
        "smoke": smoke,
        "nodes": nodes as i64,
        "feature_dim": dim as i64,
        "rounds": rounds as i64,
        "mutations_per_round": 3,
        "incremental": json!({
            "total_us": incr_ns as f64 / 1_000.0,
            "mean_us_per_round": incr_ns as f64 / 1_000.0 / rounds as f64,
            "rows_refreshed": refreshed_total as i64,
        }),
        "full": json!({
            "total_us": full_ns as f64 / 1_000.0,
            "mean_us_per_round": full_ns as f64 / 1_000.0 / rounds as f64,
        }),
        "verdict_parity": "bitwise",
        "http": json!({
            "mutate_batches": http_mutations as i64,
            "p50_us": p50,
            "p99_us": p99,
            "graph_version_final": Value::Int(last_version as i64),
        }),
        "speedups": Value::Object(speedups),
    });
    let out_path = std::env::var("GALE_BENCH_STREAM_OUT")
        .map(|p| repo_path(p.into()))
        .unwrap_or_else(|_| repo_path("BENCH_stream.json".into()));
    let baseline_path = std::env::var("GALE_BENCH_STREAM_BASELINE")
        .map(|p| repo_path(p.into()))
        .unwrap_or_else(|_| out_path.clone());
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|text| gale_json::from_str(&text).ok());
    std::fs::write(&out_path, gale_json::to_string_pretty(&report))
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!("stream bench report written to {}", out_path.display());

    gate_stream(&report, baseline.as_ref(), &baseline_path, smoke)
}

/// The streaming gate. Bitwise verdict parity already bound during the
/// measurement (the bench errors out before writing a report), so this
/// half covers the performance contract: a hard
/// [`STREAM_SPEEDUP_FLOOR`] on non-smoke runs — the floor is part of the
/// design's acceptance, not machine-relative — plus the usual
/// baseline-ratio rules shared with the other benches.
fn gate_stream(
    report: &Value,
    baseline: Option<&Value>,
    baseline_path: &Path,
    smoke: bool,
) -> Result<(), String> {
    if std::env::var("GALE_BENCH_NO_GATE").is_ok_and(|v| v == "1") {
        return Ok(());
    }
    let mut failures = Vec::new();
    let speedup = report
        .get("speedups")
        .and_then(|s| s.get("stream/incremental_vs_full"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if !smoke && speedup < STREAM_SPEEDUP_FLOOR {
        failures.push(format!(
            "incremental refresh is only {speedup:.1}x faster than a full rebuild \
             (floor {STREAM_SPEEDUP_FLOOR:.0}x)"
        ));
    }
    let usable_baseline = match baseline {
        _ if smoke => None,
        None => {
            println!(
                "no baseline at {}; skipping the baseline half of the gate",
                baseline_path.display()
            );
            None
        }
        Some(b) if b.get("smoke").and_then(Value::as_bool) == Some(true) => {
            println!("baseline is a smoke run; skipping the baseline half of the gate");
            None
        }
        Some(b) => Some(b),
    };
    if let Some(baseline) = usable_baseline {
        if let (Some(base), Some(current)) = (
            baseline
                .get("speedups")
                .and_then(|s| s.get("stream/incremental_vs_full"))
                .and_then(Value::as_f64),
            Some(speedup),
        ) {
            if base >= 1.2 && current < base * 0.85 {
                failures.push(format!(
                    "stream/incremental_vs_full: speedup {base:.2}x -> {current:.2}x \
                     ({:.0}% of baseline)",
                    current / base * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        println!("stream gate passed");
        Ok(())
    } else {
        Err(format!(
            "streaming performance regressed:\n  {}",
            failures.join("\n  ")
        ))
    }
}

/// How much of p99 request tracing is allowed to cost — the
/// [`measure_tracing_overhead`] pooled-sample ratio. Fixed, not
/// baseline-relative: the contract is "tracing is nearly free", and that
/// holds on any machine or none of this PR's design is working.
const TRACING_P99_BUDGET: f64 = 1.05;

/// The regression gate, mirroring the selection-bench contract: intra-run
/// speedups may not drop more than 15% below the committed baseline (pairs
/// whose baseline is under the 1.2x floor carry no win to protect and are
/// skipped — on a single-core box `shards/4v1` sits at ~1x and the floor
/// keeps it ungated until a multi-core runner commits a real ratio), and
/// the evloop-vs-blocking p99 ratio may not grow more than 25%. The
/// tracing-overhead budget ([`TRACING_P99_BUDGET`]) needs no baseline —
/// both legs come from the current run.
fn gate(
    report: &Value,
    baseline: Option<&Value>,
    baseline_path: &Path,
    smoke: bool,
) -> Result<(), String> {
    if smoke || std::env::var("GALE_BENCH_NO_GATE").is_ok_and(|v| v == "1") {
        return Ok(());
    }
    let mut failures = Vec::new();
    if let Some(ratio) = report
        .get("tracing")
        .and_then(|t| t.get("p99_overhead_ratio"))
        .and_then(Value::as_f64)
    {
        if ratio > TRACING_P99_BUDGET {
            failures.push(format!(
                "tracing p99 overhead: {:.1}% (budget {:.0}%)",
                (ratio - 1.0) * 100.0,
                (TRACING_P99_BUDGET - 1.0) * 100.0
            ));
        }
    }
    let usable_baseline = match baseline {
        None => {
            println!(
                "no baseline at {}; skipping the baseline half of the gate",
                baseline_path.display()
            );
            None
        }
        Some(b) if b.get("smoke").and_then(Value::as_bool) == Some(true) => {
            println!("baseline is a smoke run; skipping the baseline half of the gate");
            None
        }
        Some(b) => Some(b),
    };
    if let Some(baseline) = usable_baseline {
        let current_speedups = report
            .get("speedups")
            .and_then(Value::as_object)
            .expect("report always has speedups");
        if let Some(base_speedups) = baseline.get("speedups").and_then(Value::as_object) {
            for (key, base) in base_speedups.iter() {
                let (Some(base), Some(current)) = (
                    base.as_f64(),
                    current_speedups.get(key).and_then(Value::as_f64),
                ) else {
                    continue;
                };
                if base < 1.2 {
                    continue;
                }
                if current < base * 0.85 {
                    failures.push(format!(
                        "{key}: speedup {base:.2}x -> {current:.2}x ({:.0}% of baseline)",
                        current / base * 100.0
                    ));
                }
            }
        } else {
            println!("baseline has no speedups map; skipping the baseline half of the gate");
        }
        if let (Some(base_p99), Some(current_p99)) = (
            baseline
                .get("p99_ratio_evloop4_vs_blocking1")
                .and_then(Value::as_f64),
            report
                .get("p99_ratio_evloop4_vs_blocking1")
                .and_then(Value::as_f64),
        ) {
            if current_p99 > base_p99 * 1.25 {
                failures.push(format!(
                    "p99 ratio (evloop/4 vs blocking/1): {base_p99:.3} -> {current_p99:.3} (>25% worse)"
                ));
            }
        }
    }
    if failures.is_empty() {
        println!("regression gate passed");
        Ok(())
    } else {
        Err(format!(
            "serving performance regressed:\n  {}",
            failures.join("\n  ")
        ))
    }
}
