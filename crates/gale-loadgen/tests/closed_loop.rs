//! The load generator against a real in-process event-loop server: the
//! closed loop must complete requests over keep-alive connections with
//! zero errors, and the reported version set must match the model actually
//! serving.

use gale_core::{Sgan, SganConfig};
use gale_loadgen::{run, wait_healthy, LoadConfig};
use gale_serve::{serve, ServeConfig};
use gale_tensor::Rng;
use std::time::Duration;

#[test]
fn closed_loop_drives_an_event_loop_server_without_errors() {
    let dim = 6;
    let mut rng = Rng::seed_from_u64(97);
    let model = Sgan::new(
        dim,
        &SganConfig {
            d_hidden: vec![8, 4],
            g_hidden: vec![8],
            ..Default::default()
        },
        &mut rng,
    );
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        ..Default::default()
    };
    let handle = serve(model, &cfg).unwrap();
    let addr = handle.addr().to_string();

    let dim_seen = wait_healthy(&addr, Duration::from_secs(5)).unwrap();
    assert_eq!(dim_seen, dim);

    let report = run(&LoadConfig {
        addr: addr.clone(),
        concurrency: 3,
        duration: Duration::from_millis(400),
        warmup: Duration::from_millis(100),
        rows: 2,
        dim,
    });
    assert_eq!(report.errors, 0, "closed loop hit errors: {report:?}");
    assert!(report.ok > 0, "no requests completed: {report:?}");
    assert!(report.throughput_rps > 0.0);
    assert!(report.p99_us >= report.p50_us);
    // Keep-alive: three workers, three connections, no churn.
    assert_eq!(report.reconnects, 0, "{report:?}");
    assert_eq!(report.versions, vec![1], "{report:?}");
    handle.shutdown();
}
