//! On-disk stream bundles: everything a serving process needs to boot a
//! [`crate::StreamEngine`].
//!
//! A bundle directory holds:
//!
//! - `graph.csr` — the adjacency in the durable CSR container
//!   ([`gale_graph::CsrStore`]), fsynced by the writer before the
//!   manifest references it.
//! - `bundle.json` — manifest: node/feature dims, the feature matrix
//!   (hexfloat bits, bit-exact), and the frozen [`ColumnStandardizer`]
//!   mean/scale vectors.
//! - `gae.ckpt` / `sgan.ckpt` — the trained encoder and discriminator in
//!   their native checkpoint envelopes.
//!
//! Loading rebuilds the exact engine: same graph bits, same feature
//! bits, same model bits, same standardizer bits — so a bundle round
//! trip preserves the bitwise verdict-equality contract.

use crate::delta::{BaseGraph, DeltaGraph};
use crate::engine::{StreamConfig, StreamEngine};
use gale_core::{ColumnStandardizer, Sgan};
use gale_json::{json, Value};
use gale_nn::checkpoint::{load_gae, save_gae, tensor_from_json, tensor_to_json};
use gale_nn::Gae;
use gale_tensor::{Matrix, NeighborAccess, SparseMatrix};
use std::path::Path;
use std::sync::Arc;

/// Manifest file name inside a bundle directory.
pub const MANIFEST: &str = "bundle.json";
/// Adjacency file name inside a bundle directory.
pub const GRAPH: &str = "graph.csr";
/// Encoder checkpoint file name inside a bundle directory.
pub const GAE_CKPT: &str = "gae.ckpt";
/// Discriminator checkpoint file name inside a bundle directory.
pub const SGAN_CKPT: &str = "sgan.ckpt";

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Writes a stream bundle to `dir` (created if missing).
///
/// The adjacency must be the graph `gae`/`sgan`/`standardizer` were
/// produced against; nothing re-derives it at load time.
pub fn save_bundle(
    dir: &Path,
    graph: &(impl NeighborAccess + ?Sized),
    x: &Matrix,
    gae: &Gae,
    sgan: &Sgan,
    standardizer: &ColumnStandardizer,
) -> std::io::Result<()> {
    if x.rows() != graph.node_count() {
        return Err(bad(format!(
            "feature rows {} != graph nodes {}",
            x.rows(),
            graph.node_count()
        )));
    }
    std::fs::create_dir_all(dir)?;
    gale_graph::write_csr(graph, graph.node_count(), dir.join(GRAPH))?;
    save_gae(gae, dir.join(GAE_CKPT)).map_err(|e| bad(format!("gae checkpoint: {e}")))?;
    sgan.save(dir.join(SGAN_CKPT))
        .map_err(|e| bad(format!("sgan checkpoint: {e}")))?;
    let manifest = json!({
        "format": "gale-stream-bundle",
        "version": 1,
        "nodes": graph.node_count(),
        "feature_dim": x.cols(),
        "features": tensor_to_json(x),
        "standardizer": {
            "mean": gale_json::encode_f64s(standardizer.mean()),
            "scale": gale_json::encode_f64s(standardizer.scale()),
        },
    });
    std::fs::write(dir.join(MANIFEST), manifest.to_string_pretty())?;
    Ok(())
}

/// Loads a bundle directory back into a ready [`StreamEngine`].
pub fn load_bundle(dir: &Path, cfg: StreamConfig) -> std::io::Result<StreamEngine> {
    let manifest: Value = gale_json::from_str(&std::fs::read_to_string(dir.join(MANIFEST))?)
        .map_err(|e| bad(format!("manifest: {e}")))?;
    match manifest.get("format").and_then(Value::as_str) {
        Some("gale-stream-bundle") => {}
        other => return Err(bad(format!("not a stream bundle (format {other:?})"))),
    }
    let nodes = manifest
        .get("nodes")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("manifest needs `nodes`"))? as usize;
    let x = tensor_from_json(
        manifest
            .get("features")
            .ok_or_else(|| bad("manifest needs `features`"))?,
    )
    .map_err(|e| bad(format!("features: {e}")))?;
    if x.rows() != nodes {
        return Err(bad(format!(
            "manifest says {nodes} nodes but features have {} rows",
            x.rows()
        )));
    }
    let st = manifest
        .get("standardizer")
        .ok_or_else(|| bad("manifest needs `standardizer`"))?;
    let decode = |field: &str| -> std::io::Result<Vec<f64>> {
        let bits = st
            .get(field)
            .ok_or_else(|| bad(format!("standardizer needs `{field}`")))?;
        gale_json::decode_f64s(bits).map_err(|e| bad(format!("standardizer {field}: {e}")))
    };
    let standardizer = ColumnStandardizer::from_parts(decode("mean")?, decode("scale")?);

    let store = gale_graph::CsrStore::open(dir.join(GRAPH))?;
    if store.rows() != nodes {
        return Err(bad(format!(
            "manifest says {nodes} nodes but graph has {} rows",
            store.rows()
        )));
    }
    // `load_gae` wants the training adjacency for its internal operator;
    // the streaming engine always embeds through its own delta view, so a
    // materialized copy of the same bits is exactly right.
    let mut triplets = Vec::with_capacity(store.nnz());
    for r in 0..store.rows() {
        store.visit_neighbors(r, &mut |c, v| triplets.push((r, c, v)));
    }
    let sparse = Arc::new(SparseMatrix::from_triplets(nodes, nodes, triplets));
    let gae = load_gae(dir.join(GAE_CKPT), Arc::clone(&sparse))
        .map_err(|e| bad(format!("gae checkpoint: {e}")))?;
    let sgan = Sgan::load(dir.join(SGAN_CKPT)).map_err(|e| bad(format!("sgan checkpoint: {e}")))?;

    let graph = DeltaGraph::new(BaseGraph::Store(store));
    StreamEngine::new(graph, x, gae, sgan, Some(standardizer), cfg).map_err(bad)
}
