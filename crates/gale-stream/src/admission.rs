//! Structure-aware admission filtering for streamed edges.
//!
//! Streamed edges are noisy: "Active Learning for Graphs with Noisy
//! Structures" (arXiv 2402.02321) motivates filtering structure-suspect
//! edges *before* they poison embeddings rather than hoping the learner
//! shrugs them off. Two cheap heuristics run at admission time:
//!
//! 1. **Feature distance** — an edge whose endpoint features sit far
//!    outside the distance distribution of edges admitted so far is
//!    suspect. The filter keeps running mean/variance (Welford) over
//!    admitted-edge feature distances, seeded deterministically from the
//!    base graph's edges, and rejects when `dist > mean + z·std` (once
//!    enough samples exist for the bound to mean anything).
//! 2. **Degree cap** — a node accreting unbounded degree in a stream is
//!    the classic spam/crawler signature; edges that would push an
//!    endpoint past the cap are rejected.
//!
//! Rejected edges land in a fixed-capacity quarantine ring surfaced
//! through `/debug/stream` and the `stream.quarantined_edges` counter —
//! quarantine is observable, not a silent drop.

use std::collections::VecDeque;

/// Why an edge was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Endpoint feature distance beyond the z-score bound.
    FeatureDistance,
    /// An endpoint would exceed the degree cap.
    DegreeCap,
}

impl RejectReason {
    /// Wire/debug label.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::FeatureDistance => "feature_distance",
            RejectReason::DegreeCap => "degree_cap",
        }
    }
}

/// A quarantined edge, as surfaced in `/debug/stream`.
#[derive(Debug, Clone)]
pub struct QuarantinedEdge {
    /// Mutation sequence number that proposed the edge.
    pub seq: u64,
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// Endpoint feature distance at assessment time.
    pub distance: f64,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Admission filter configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Master switch; when off every edge is admitted.
    pub enabled: bool,
    /// Reject when `dist > mean + z_threshold * std`.
    pub z_threshold: f64,
    /// Minimum observed samples before the distance bound binds.
    pub min_samples: usize,
    /// Maximum endpoint degree an admitted edge may produce (0 = no cap).
    pub max_degree: usize,
    /// Quarantine ring capacity.
    pub quarantine_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            z_threshold: 4.0,
            min_samples: 32,
            max_degree: 0,
            quarantine_capacity: 256,
        }
    }
}

/// Welford-accumulated admission statistics plus the quarantine ring.
pub struct AdmissionFilter {
    cfg: AdmissionConfig,
    count: u64,
    mean: f64,
    m2: f64,
    ring: VecDeque<QuarantinedEdge>,
    /// Total edges quarantined (ring evictions included).
    pub quarantined: u64,
}

impl AdmissionFilter {
    /// A fresh filter with no observed distances.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionFilter {
            cfg,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            ring: VecDeque::with_capacity(cfg.quarantine_capacity.min(1024)),
            quarantined: 0,
        }
    }

    /// Number of admitted-edge distances observed so far.
    pub fn samples(&self) -> u64 {
        self.count
    }

    /// Current mean admitted-edge distance.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current admitted-edge distance standard deviation.
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Folds an admitted edge's feature distance into the statistics
    /// (also used to seed from the base graph's edges at build time).
    pub fn observe(&mut self, dist: f64) {
        if !dist.is_finite() {
            return;
        }
        self.count += 1;
        let delta = dist - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (dist - self.mean);
    }

    /// Assesses a proposed edge; `None` admits it. Admitted distances
    /// are *not* auto-observed — call [`AdmissionFilter::observe`] after
    /// the edge is actually applied, so rejected proposals never skew
    /// the statistics.
    pub fn assess(&self, dist: f64, deg_u: usize, deg_v: usize) -> Option<RejectReason> {
        if !self.cfg.enabled {
            return None;
        }
        if self.cfg.max_degree > 0 && (deg_u >= self.cfg.max_degree || deg_v >= self.cfg.max_degree)
        {
            return Some(RejectReason::DegreeCap);
        }
        if self.count >= self.cfg.min_samples as u64 {
            let bound = self.mean + self.cfg.z_threshold * self.std();
            if dist > bound {
                return Some(RejectReason::FeatureDistance);
            }
        }
        None
    }

    /// Records a rejection in the quarantine ring.
    pub fn quarantine(&mut self, edge: QuarantinedEdge) {
        self.quarantined += 1;
        gale_obs::counter_add!("stream.quarantined_edges", 1);
        if self.ring.len() == self.cfg.quarantine_capacity.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(edge);
    }

    /// The quarantine ring, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &QuarantinedEdge> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(samples: &[f64], cfg: AdmissionConfig) -> AdmissionFilter {
        let mut f = AdmissionFilter::new(cfg);
        for &d in samples {
            f.observe(d);
        }
        f
    }

    #[test]
    fn outlier_distance_is_rejected_after_warmup() {
        let cfg = AdmissionConfig {
            min_samples: 4,
            z_threshold: 3.0,
            ..Default::default()
        };
        let f = filter_with(&[1.0, 1.1, 0.9, 1.0, 1.05, 0.95], cfg);
        assert_eq!(f.assess(1.15, 1, 1), None, "inlier admitted");
        assert_eq!(
            f.assess(50.0, 1, 1),
            Some(RejectReason::FeatureDistance),
            "outlier rejected"
        );
    }

    #[test]
    fn bound_does_not_bind_before_min_samples() {
        let cfg = AdmissionConfig {
            min_samples: 100,
            ..Default::default()
        };
        let f = filter_with(&[1.0, 1.0], cfg);
        assert_eq!(f.assess(1e9, 1, 1), None);
    }

    #[test]
    fn degree_cap_rejects_hubs() {
        let cfg = AdmissionConfig {
            max_degree: 5,
            ..Default::default()
        };
        let f = AdmissionFilter::new(cfg);
        assert_eq!(f.assess(0.0, 5, 1), Some(RejectReason::DegreeCap));
        assert_eq!(f.assess(0.0, 4, 4), None);
    }

    #[test]
    fn disabled_filter_admits_everything() {
        let cfg = AdmissionConfig {
            enabled: false,
            max_degree: 1,
            min_samples: 0,
            ..Default::default()
        };
        let f = filter_with(&[0.1], cfg);
        assert_eq!(f.assess(1e12, 100, 100), None);
    }

    #[test]
    fn quarantine_ring_is_bounded() {
        let cfg = AdmissionConfig {
            quarantine_capacity: 2,
            ..Default::default()
        };
        let mut f = AdmissionFilter::new(cfg);
        for seq in 0..4 {
            f.quarantine(QuarantinedEdge {
                seq,
                u: 0,
                v: 1,
                distance: 9.0,
                reason: RejectReason::FeatureDistance,
            });
        }
        assert_eq!(f.quarantined, 4);
        let seqs: Vec<u64> = f.ring().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
    }
}
