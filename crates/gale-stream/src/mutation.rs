//! Typed graph mutations and the append-only mutation log.
//!
//! Mutations arrive over the wire as JSON (`POST /mutate` bodies) and are
//! replayed from the log during recovery, so the codec lives next to the
//! type. Edge mutations are undirected — the delta graph mirrors every
//! edge, matching the batch pipeline's symmetric adjacency.

use gale_json::{json, Value};

/// One typed graph delta.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Appends a fresh isolated node with the given feature row.
    AddNode {
        /// Feature row for the new node; must match the engine's width.
        attrs: Vec<f64>,
    },
    /// Detaches a node: all incident edges are removed and its row becomes
    /// a tombstone. Node ids are stable — the row is never renumbered.
    RemoveNode {
        /// The node to detach.
        node: usize,
    },
    /// Inserts (or re-weights) the undirected edge `{u, v}`.
    AddEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
        /// Edge weight (the batch pipeline uses 1.0).
        weight: f64,
    },
    /// Deletes the undirected edge `{u, v}` if present.
    RemoveEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Replaces a node's feature row.
    UpdateAttrs {
        /// The node whose features change.
        node: usize,
        /// The replacement feature row.
        attrs: Vec<f64>,
    },
}

impl Mutation {
    /// The mutation's wire name (also the metrics label).
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::AddNode { .. } => "add_node",
            Mutation::RemoveNode { .. } => "remove_node",
            Mutation::AddEdge { .. } => "add_edge",
            Mutation::RemoveEdge { .. } => "remove_edge",
            Mutation::UpdateAttrs { .. } => "update_attrs",
        }
    }

    /// Serializes to the wire form.
    pub fn to_json(&self) -> Value {
        match self {
            Mutation::AddNode { attrs } => json!({
                "op": "add_node",
                "attrs": attrs.iter().map(|&v| Value::from(v)).collect::<Vec<_>>(),
            }),
            Mutation::RemoveNode { node } => json!({
                "op": "remove_node",
                "node": *node,
            }),
            Mutation::AddEdge { u, v, weight } => json!({
                "op": "add_edge",
                "u": *u,
                "v": *v,
                "weight": *weight,
            }),
            Mutation::RemoveEdge { u, v } => json!({
                "op": "remove_edge",
                "u": *u,
                "v": *v,
            }),
            Mutation::UpdateAttrs { node, attrs } => json!({
                "op": "update_attrs",
                "node": *node,
                "attrs": attrs.iter().map(|&v| Value::from(v)).collect::<Vec<_>>(),
            }),
        }
    }

    /// Parses one mutation from its wire form.
    pub fn from_json(v: &Value) -> Result<Mutation, String> {
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("mutation needs a string `op`")?;
        let node = |field: &str| -> Result<usize, String> {
            v.get(field)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("`{op}` needs a non-negative integer `{field}`"))
        };
        let attrs = || -> Result<Vec<f64>, String> {
            v.get("attrs")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("`{op}` needs a numeric array `attrs`"))?
                .iter()
                .map(|e| {
                    e.as_f64()
                        .ok_or_else(|| format!("`{op}`: non-numeric attr"))
                })
                .collect()
        };
        match op {
            "add_node" => Ok(Mutation::AddNode { attrs: attrs()? }),
            "remove_node" => Ok(Mutation::RemoveNode {
                node: node("node")?,
            }),
            "add_edge" => {
                let weight = match v.get("weight") {
                    None => 1.0,
                    Some(w) => w.as_f64().ok_or("`add_edge`: non-numeric weight")?,
                };
                if !weight.is_finite() {
                    return Err("`add_edge`: weight must be finite".into());
                }
                Ok(Mutation::AddEdge {
                    u: node("u")?,
                    v: node("v")?,
                    weight,
                })
            }
            "remove_edge" => Ok(Mutation::RemoveEdge {
                u: node("u")?,
                v: node("v")?,
            }),
            "update_attrs" => Ok(Mutation::UpdateAttrs {
                node: node("node")?,
                attrs: attrs()?,
            }),
            other => Err(format!("unknown mutation op `{other}`")),
        }
    }

    /// Parses a `/mutate` request body: `{"mutations": [...]}`.
    pub fn parse_batch(body: &str) -> Result<Vec<Mutation>, String> {
        let v = gale_json::from_str(body).map_err(|e| format!("bad json: {e}"))?;
        let list = v
            .get("mutations")
            .and_then(Value::as_array)
            .ok_or("body needs a `mutations` array")?;
        list.iter().map(Mutation::from_json).collect()
    }
}

/// One applied (or rejected) mutation with its position in the stream.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Monotonic sequence number (1-based; 0 = nothing applied).
    pub seq: u64,
    /// The graph version after this mutation was applied (unchanged for
    /// rejected mutations).
    pub graph_version: u64,
    /// The mutation itself.
    pub mutation: Mutation,
    /// Whether the admission filter let it through.
    pub admitted: bool,
}

/// Append-only in-memory mutation log with a bounded tail.
///
/// The full history is summarized by counters; only the most recent
/// `capacity` entries are kept for introspection (`/debug/stream`).
pub struct MutationLog {
    tail: std::collections::VecDeque<LogEntry>,
    capacity: usize,
    next_seq: u64,
    /// Total mutations ever offered, admitted or not.
    pub total: u64,
    /// Total mutations admitted and applied.
    pub applied: u64,
}

impl MutationLog {
    /// A log keeping the `capacity` most recent entries.
    pub fn new(capacity: usize) -> Self {
        MutationLog {
            tail: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            next_seq: 1,
            total: 0,
            applied: 0,
        }
    }

    /// Records a mutation outcome; returns its sequence number.
    pub fn record(&mut self, mutation: Mutation, admitted: bool, graph_version: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.total += 1;
        if admitted {
            self.applied += 1;
        }
        if self.tail.len() == self.capacity {
            self.tail.pop_front();
        }
        self.tail.push_back(LogEntry {
            seq,
            graph_version,
            mutation,
            admitted,
        });
        seq
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> impl Iterator<Item = &LogEntry> {
        self.tail.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_every_variant() {
        let cases = [
            Mutation::AddNode {
                attrs: vec![1.0, -2.5],
            },
            Mutation::RemoveNode { node: 7 },
            Mutation::AddEdge {
                u: 1,
                v: 2,
                weight: 0.5,
            },
            Mutation::RemoveEdge { u: 3, v: 0 },
            Mutation::UpdateAttrs {
                node: 4,
                attrs: vec![0.0, 9.25],
            },
        ];
        for m in cases {
            let back = Mutation::from_json(&m.to_json()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn batch_parsing_defaults_edge_weight() {
        let body = r#"{"mutations":[{"op":"add_edge","u":0,"v":1}]}"#;
        let batch = Mutation::parse_batch(body).unwrap();
        assert_eq!(
            batch,
            vec![Mutation::AddEdge {
                u: 0,
                v: 1,
                weight: 1.0
            }]
        );
    }

    #[test]
    fn bad_bodies_are_rejected() {
        assert!(Mutation::parse_batch("{}").is_err());
        assert!(Mutation::parse_batch(r#"{"mutations":[{"op":"warp"}]}"#).is_err());
        assert!(
            Mutation::parse_batch(r#"{"mutations":[{"op":"add_edge","u":-1,"v":1}]}"#).is_err()
        );
    }

    #[test]
    fn log_keeps_bounded_tail() {
        let mut log = MutationLog::new(2);
        for i in 0..5u64 {
            log.record(Mutation::RemoveNode { node: i as usize }, i % 2 == 0, i);
        }
        assert_eq!(log.total, 5);
        assert_eq!(log.applied, 3);
        let seqs: Vec<u64> = log.tail().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
    }
}
