//! K-hop dirty tracking: which nodes' GCN outputs a delta invalidates.
//!
//! ## Dirty algebra
//!
//! The 2-layer GCN output of node `v` is a function of the normalized
//! operator rows and feature rows inside `v`'s 2-hop closed neighborhood.
//! An edge delta on `{u, v}` changes the degrees of `u` and `v`, hence
//! the `D̃^{-1/2}` factors in every operator row touching them — so the
//! hidden layer of `{u, v} ∪ N(u) ∪ N(v)` (the 1-hop closure) changes,
//! and the output layer of the 2-hop closure of `{u, v}` changes. The
//! closure must be taken in the union of the pre- and post-delta graphs:
//! a removed neighbor's output still depended on the old edge, so callers
//! mark seeds both **before** and **after** applying a structural delta.
//! A feature delta on `v` leaves the operator alone but flows through
//! both propagation hops: the 2-hop closure of `{v}`, marked once.
//!
//! Dirty nodes live in a `BTreeSet`, so draining yields the sorted order
//! the incremental refresh ([`gale_nn::Gcn::forward_rows_access_into`])
//! requires, deterministically.

use gale_tensor::NeighborAccess;
use std::collections::BTreeSet;

/// Receptive-field depth of the 2-layer GCN encoder.
pub const GCN_HOPS: usize = 2;

/// Tracks the set of nodes whose embeddings are stale, and the graph
/// version at which each was last invalidated.
#[derive(Default)]
pub struct DirtyTracker {
    dirty: BTreeSet<usize>,
}

impl DirtyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently-dirty nodes.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// Whether no node is dirty.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Whether `node` is dirty.
    pub fn contains(&self, node: usize) -> bool {
        self.dirty.contains(&node)
    }

    /// Marks the `k`-hop closed neighborhood of `seeds` in `view` dirty.
    pub fn mark_khop<A: NeighborAccess + ?Sized>(&mut self, view: &A, seeds: &[usize], k: usize) {
        // The BFS visited set must be local to this call: a node already
        // dirtied by an earlier delta still has neighbors this closure
        // needs to reach, so it cannot block frontier expansion.
        let mut visited: BTreeSet<usize> = seeds.iter().copied().collect();
        let mut frontier = visited.clone();
        for _ in 0..k {
            let mut next = BTreeSet::new();
            for &v in &frontier {
                view.visit_neighbors(v, &mut |c, _| {
                    if visited.insert(c) {
                        next.insert(c);
                    }
                });
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        let mut fresh = 0u64;
        for v in visited {
            if self.dirty.insert(v) {
                fresh += 1;
            }
        }
        gale_obs::counter_add!("stream.dirty_nodes", fresh);
    }

    /// Marks a single node dirty with no neighborhood expansion (fresh
    /// isolated nodes).
    pub fn mark_node(&mut self, node: usize) {
        self.dirty.insert(node);
    }

    /// The dirty set, sorted ascending.
    pub fn sorted(&self) -> Vec<usize> {
        self.dirty.iter().copied().collect()
    }

    /// Removes `nodes` from the dirty set (after their refresh).
    pub fn clear_nodes(&mut self, nodes: &[usize]) {
        for n in nodes {
            self.dirty.remove(n);
        }
    }

    /// Drops every dirty mark (after a full refresh).
    pub fn clear(&mut self) {
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::SparseMatrix;

    /// 0-1-2-3-4 path.
    fn path5() -> SparseMatrix {
        let mut t = Vec::new();
        for i in 0..4 {
            t.push((i, i + 1, 1.0));
            t.push((i + 1, i, 1.0));
        }
        SparseMatrix::from_triplets(5, 5, t)
    }

    #[test]
    fn two_hop_closure_of_an_endpoint() {
        let g = path5();
        let mut d = DirtyTracker::new();
        d.mark_khop(&g, &[0], GCN_HOPS);
        assert_eq!(d.sorted(), vec![0, 1, 2]);
    }

    #[test]
    fn marks_accumulate_across_deltas() {
        let g = path5();
        let mut d = DirtyTracker::new();
        d.mark_khop(&g, &[0], 1);
        d.mark_khop(&g, &[4], 1);
        assert_eq!(d.sorted(), vec![0, 1, 3, 4]);
        d.clear_nodes(&[0, 1]);
        assert_eq!(d.sorted(), vec![3, 4]);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn zero_hops_marks_seeds_only() {
        let g = path5();
        let mut d = DirtyTracker::new();
        d.mark_khop(&g, &[2], 0);
        assert_eq!(d.sorted(), vec![2]);
    }
}
