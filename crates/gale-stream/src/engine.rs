//! The streaming engine: mutations in, lazily-refreshed verdicts out.
//!
//! Owns the [`DeltaGraph`], the feature matrix, the trained GAE encoder
//! and SGAN discriminator, the frozen input standardizer, and the cached
//! per-node scoring state. Mutations mark k-hop dirty sets; the next
//! score request triggers a neighborhood-local refresh whose outputs are
//! bitwise-equal to rebuilding and re-scoring the mutated graph from
//! scratch with the same model artifacts (gated in `BENCH_stream.json`).

use crate::admission::{AdmissionConfig, AdmissionFilter, QuarantinedEdge};
use crate::delta::DeltaGraph;
use crate::dirty::{DirtyTracker, GCN_HOPS};
use crate::mutation::{Mutation, MutationLog};
use gale_core::{ColumnStandardizer, MemoCache, Sgan};
use gale_json::{json, Value};
use gale_nn::Gae;
use gale_tensor::{Matrix, NeighborAccess, SparseMatrix, SymNormalized};

/// Edges sampled (deterministically, in row order) from the base graph to
/// seed the admission filter's distance statistics.
const ADMISSION_SEED_CAP: usize = 4096;

/// Streaming engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Admission filtering knobs.
    pub admission: AdmissionConfig,
    /// Retained mutation-log tail length.
    pub log_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            admission: AdmissionConfig::default(),
            log_capacity: 256,
        }
    }
}

/// Outcome of one mutation inside an [`StreamEngine::apply`] batch.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// Log sequence number.
    pub seq: u64,
    /// Wire name of the mutation.
    pub kind: &'static str,
    /// Whether it was admitted and applied.
    pub admitted: bool,
    /// Quarantine reason label for rejected edges.
    pub reason: Option<&'static str>,
    /// Id assigned by `add_node` mutations.
    pub assigned_node: Option<usize>,
}

/// Summary of an applied mutation batch.
#[derive(Debug)]
pub struct ApplyReport {
    /// Per-mutation outcomes, in batch order.
    pub outcomes: Vec<MutationOutcome>,
    /// Graph version after the batch.
    pub graph_version: u64,
    /// Dirty-node count after the batch.
    pub dirty: usize,
    /// Whether the batch triggered a compaction.
    pub compacted: bool,
}

/// One node's scoring state, as returned by [`StreamEngine::score_nodes`].
#[derive(Debug, Clone)]
pub struct NodeScore {
    /// The node id.
    pub node: usize,
    /// 3-class probabilities `(error, correct, synthetic)`.
    pub probs: [f64; 3],
    /// Two-class error score (synthetic dropped, renormalized).
    pub score: f64,
    /// Whether the discriminator calls the node erroneous.
    pub erroneous: bool,
    /// Graph version the verdict was computed at.
    pub graph_version: u64,
}

/// The streaming scoring engine.
pub struct StreamEngine {
    graph: DeltaGraph,
    x: Matrix,
    gae: Gae,
    sgan: Sgan,
    standardizer: ColumnStandardizer,
    /// Current embeddings, one row per node (dirty rows are stale).
    z: Matrix,
    /// Current 3-class probabilities, one row per node.
    probs: Matrix,
    /// Graph version each node's verdict was computed at.
    verdict_version: Vec<u64>,
    graph_version: u64,
    dirty: DirtyTracker,
    filter: AdmissionFilter,
    log: MutationLog,
    memo: MemoCache,
    /// Nanoseconds spent in incremental refreshes (diagnostics).
    pub refresh_ns: u64,
    /// Number of incremental refreshes run.
    pub refreshes: u64,
}

impl StreamEngine {
    /// Builds an engine and runs the initial full embed + score pass.
    ///
    /// `standardizer` freezes the discriminator-input affine map; pass
    /// `None` to fit it on this graph's `[X | Z]` (the artifact is then
    /// available via [`StreamEngine::standardizer`] for exact-rebuild
    /// comparisons and bundle export).
    pub fn new(
        graph: DeltaGraph,
        x: Matrix,
        mut gae: Gae,
        sgan: Sgan,
        standardizer: Option<ColumnStandardizer>,
        cfg: StreamConfig,
    ) -> Result<Self, String> {
        let n = graph.node_count();
        if x.rows() != n {
            return Err(format!("feature rows {} != graph nodes {n}", x.rows()));
        }
        // Initial full embedding over the normalized view.
        let mut z = Matrix::zeros(0, 0);
        {
            let op = SymNormalized::new(&graph);
            gae.embed_access(&op, &x, &mut z);
        }
        let mut inputs = concat_rows(&x, &z);
        let standardizer = match standardizer {
            Some(st) => {
                if st.cols() != inputs.cols() {
                    return Err(format!(
                        "standardizer covers {} columns, inputs have {}",
                        st.cols(),
                        inputs.cols()
                    ));
                }
                st
            }
            None => ColumnStandardizer::fit(&inputs),
        };
        standardizer.apply(&mut inputs);
        let mut sgan = sgan;
        if sgan.input_dim() != inputs.cols() {
            return Err(format!(
                "discriminator wants {} inputs, graph provides {}",
                sgan.input_dim(),
                inputs.cols()
            ));
        }
        let mut probs = Matrix::zeros(0, 0);
        sgan.probs3_into(&inputs, &mut probs);

        let mut filter = AdmissionFilter::new(cfg.admission);
        seed_admission(&mut filter, &graph, &x);
        let mut memo = MemoCache::new(true, 1e-9);
        memo.ensure_len(n);

        Ok(StreamEngine {
            graph,
            x,
            gae,
            sgan,
            standardizer,
            z,
            probs,
            verdict_version: vec![0; n],
            graph_version: 0,
            dirty: DirtyTracker::new(),
            filter,
            log: MutationLog::new(cfg.log_capacity),
            memo,
            refresh_ns: 0,
            refreshes: 0,
        })
    }

    /// Current graph version (bumped once per applied mutation).
    pub fn graph_version(&self) -> u64 {
        self.graph_version
    }

    /// Nodes in the graph (tombstones included).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Currently-dirty node count.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Compactions the delta graph has performed.
    pub fn graph_compactions(&self) -> u64 {
        self.graph.compactions()
    }

    /// Edges the admission filter has quarantined.
    pub fn quarantined_edges(&self) -> u64 {
        self.filter.quarantined
    }

    /// The frozen input standardizer (a model artifact).
    pub fn standardizer(&self) -> &ColumnStandardizer {
        &self.standardizer
    }

    /// The current feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// The current graph view as an in-memory CSR (from-scratch rebuild
    /// comparisons; bitwise-equal to the view by the compaction argument).
    pub fn snapshot_graph(&self) -> SparseMatrix {
        let n = self.graph.node_count();
        let mut triplets = Vec::with_capacity(self.graph.view_nnz());
        for r in 0..n {
            self.graph
                .visit_neighbors(r, &mut |c, v| triplets.push((r, c, v)));
        }
        SparseMatrix::from_triplets(n, n, triplets)
    }

    /// Applies a mutation batch: admission-filters edges, mutates the
    /// overlay and features, marks k-hop dirty sets, and maybe compacts.
    /// Verdicts are *not* refreshed here — that happens lazily on the
    /// next score request.
    pub fn apply(&mut self, muts: &[Mutation]) -> Result<ApplyReport, String> {
        let mut outcomes = Vec::with_capacity(muts.len());
        for m in muts {
            let outcome = self.apply_one(m)?;
            outcomes.push(outcome);
        }
        let compacted = self.graph.maybe_compact();
        self.memo.ensure_len(self.graph.node_count());
        gale_obs::counter_add!("stream.mutations", muts.len() as u64);
        Ok(ApplyReport {
            outcomes,
            graph_version: self.graph_version,
            dirty: self.dirty.len(),
            compacted,
        })
    }

    fn apply_one(&mut self, m: &Mutation) -> Result<MutationOutcome, String> {
        let n = self.graph.node_count();
        let check = |node: usize| -> Result<(), String> {
            if node >= n {
                Err(format!("node {node} out of range ({n} nodes)"))
            } else {
                Ok(())
            }
        };
        let kind = m.kind();
        let mut assigned_node = None;
        let mut admitted = true;
        let mut reason = None;
        match m {
            Mutation::AddNode { attrs } => {
                if attrs.len() != self.x.cols() {
                    return Err(format!(
                        "add_node attrs width {} != feature width {}",
                        attrs.len(),
                        self.x.cols()
                    ));
                }
                let id = self.graph.add_node();
                self.x.resize(id + 1, self.x.cols());
                self.x.set_row(id, attrs);
                self.memo.ensure_len(id + 1);
                self.z.resize(id + 1, self.z.cols());
                self.probs.resize(id + 1, self.probs.cols());
                self.verdict_version.push(0);
                self.graph_version += 1;
                self.dirty.mark_node(id);
                assigned_node = Some(id);
            }
            Mutation::RemoveNode { node } => {
                check(*node)?;
                let mut seeds = vec![*node];
                self.graph.visit_neighbors(*node, &mut |c, _| seeds.push(c));
                self.dirty.mark_khop(&self.graph, &seeds, GCN_HOPS);
                self.graph.remove_node(*node);
                self.dirty.mark_khop(&self.graph, &seeds, GCN_HOPS);
                self.graph_version += 1;
            }
            Mutation::AddEdge { u, v, weight } => {
                check(*u)?;
                check(*v)?;
                if u == v {
                    return Err("add_edge: self-loops are implicit".into());
                }
                let dist = self.memo.distance(&self.x, *u, *v);
                match self
                    .filter
                    .assess(dist, self.graph.degree(*u), self.graph.degree(*v))
                {
                    Some(why) => {
                        admitted = false;
                        reason = Some(why.label());
                        self.filter.quarantine(QuarantinedEdge {
                            seq: 0, // patched after the log assigns one
                            u: *u,
                            v: *v,
                            distance: dist,
                            reason: why,
                        });
                    }
                    None => {
                        let seeds = [*u, *v];
                        self.dirty.mark_khop(&self.graph, &seeds, GCN_HOPS);
                        self.graph.add_edge(*u, *v, *weight);
                        self.dirty.mark_khop(&self.graph, &seeds, GCN_HOPS);
                        self.filter.observe(dist);
                        self.graph_version += 1;
                    }
                }
            }
            Mutation::RemoveEdge { u, v } => {
                check(*u)?;
                check(*v)?;
                let seeds = [*u, *v];
                self.dirty.mark_khop(&self.graph, &seeds, GCN_HOPS);
                self.graph.remove_edge(*u, *v);
                self.dirty.mark_khop(&self.graph, &seeds, GCN_HOPS);
                self.graph_version += 1;
            }
            Mutation::UpdateAttrs { node, attrs } => {
                check(*node)?;
                if attrs.len() != self.x.cols() {
                    return Err(format!(
                        "update_attrs width {} != feature width {}",
                        attrs.len(),
                        self.x.cols()
                    ));
                }
                self.x.set_row(*node, attrs);
                self.memo.invalidate_nodes(&[*node]);
                // The operator is unchanged; features flow through both
                // hops, so one post-apply marking covers the closure.
                self.dirty.mark_khop(&self.graph, &[*node], GCN_HOPS);
                self.graph_version += 1;
            }
        }
        let seq = self.log.record(m.clone(), admitted, self.graph_version);
        Ok(MutationOutcome {
            seq,
            kind,
            admitted,
            reason,
            assigned_node,
        })
    }

    /// Refreshes every dirty node's embedding, probabilities, and verdict
    /// via the neighborhood-local forward. Returns the number refreshed.
    pub fn refresh(&mut self) -> usize {
        if self.dirty.is_empty() {
            return 0;
        }
        let started = std::time::Instant::now();
        let rows = self.dirty.sorted();
        let mut z_sub = Matrix::zeros(0, 0);
        {
            let op = SymNormalized::new(&self.graph);
            self.gae.embed_rows_access(&op, &rows, &self.x, &mut z_sub);
        }
        let dx = self.x.cols();
        let dz = self.z.cols();
        let mut inputs = Matrix::zeros(rows.len(), dx + dz);
        for (k, &v) in rows.iter().enumerate() {
            self.z.set_row(v, z_sub.row(k));
            let row = inputs.row_mut(k);
            row[..dx].copy_from_slice(self.x.row(v));
            row[dx..].copy_from_slice(z_sub.row(k));
            self.standardizer.apply_row(row);
        }
        let mut probs_sub = Matrix::zeros(0, 0);
        self.sgan.probs3_into(&inputs, &mut probs_sub);
        for (k, &v) in rows.iter().enumerate() {
            self.probs.set_row(v, probs_sub.row(k));
            self.verdict_version[v] = self.graph_version;
        }
        self.dirty.clear();
        let elapsed = started.elapsed();
        self.refresh_ns += elapsed.as_nanos() as u64;
        self.refreshes += 1;
        gale_obs::counter_add!("stream.refreshes", 1);
        rows.len()
    }

    /// Recomputes every node's embedding, probabilities, and verdict from
    /// scratch over the current graph view — the exact computation
    /// [`StreamEngine::new`] runs at construction. This is the control the
    /// incremental [`StreamEngine::refresh`] is timed and bit-compared
    /// against in `BENCH_stream.json`. Returns the node count.
    pub fn rescore_full(&mut self) -> usize {
        {
            let op = SymNormalized::new(&self.graph);
            self.gae.embed_access(&op, &self.x, &mut self.z);
        }
        let mut inputs = concat_rows(&self.x, &self.z);
        self.standardizer.apply(&mut inputs);
        self.sgan.probs3_into(&inputs, &mut self.probs);
        for version in &mut self.verdict_version {
            *version = self.graph_version;
        }
        self.dirty.clear();
        self.graph.node_count()
    }

    /// Scores the requested nodes, lazily refreshing dirty state first.
    pub fn score_nodes(&mut self, nodes: &[usize]) -> Result<Vec<NodeScore>, String> {
        let n = self.graph.node_count();
        for &v in nodes {
            if v >= n {
                return Err(format!("node {v} out of range ({n} nodes)"));
            }
        }
        self.refresh();
        Ok(nodes.iter().map(|&v| self.node_score(v)).collect())
    }

    /// One node's current (refreshed) scoring state. Callers must have
    /// refreshed first; [`StreamEngine::score_nodes`] does.
    fn node_score(&self, v: usize) -> NodeScore {
        let row = self.probs.row(v);
        let (pe, pc, ps) = (row[0], row[1], row[2]);
        NodeScore {
            node: v,
            probs: [pe, pc, ps],
            // Mirrors gale-serve's verdict derivation exactly.
            score: pe / (pe + pc).max(1e-12),
            erroneous: pe > pc,
            graph_version: self.verdict_version[v],
        }
    }

    /// Every node's verdict, refreshed. For equality gates in the bench.
    pub fn all_scores(&mut self) -> Vec<NodeScore> {
        self.refresh();
        (0..self.graph.node_count())
            .map(|v| self.node_score(v))
            .collect()
    }

    /// Introspection document for `/debug/stream`.
    pub fn debug_json(&self) -> Value {
        let ring: Vec<Value> = self
            .filter
            .ring()
            .map(|e| {
                json!({
                    "seq": e.seq as f64,
                    "u": e.u as f64,
                    "v": e.v as f64,
                    "distance": e.distance,
                    "reason": e.reason.label(),
                })
            })
            .collect();
        let tail: Vec<Value> = self
            .log
            .tail()
            .map(|e| {
                json!({
                    "seq": e.seq as f64,
                    "graph_version": e.graph_version as f64,
                    "op": e.mutation.kind(),
                    "admitted": e.admitted,
                })
            })
            .collect();
        json!({
            "graph_version": self.graph_version as f64,
            "nodes": self.graph.node_count() as f64,
            "view_nnz": self.graph.view_nnz() as f64,
            "overlay_churn": self.graph.churn() as f64,
            "compactions": self.graph.compactions() as f64,
            "dirty_nodes": self.dirty.len() as f64,
            "mutations_total": self.log.total as f64,
            "mutations_applied": self.log.applied as f64,
            "quarantined_edges": self.filter.quarantined as f64,
            "admission": {
                "samples": self.filter.samples() as f64,
                "mean_distance": self.filter.mean(),
                "std_distance": self.filter.std(),
            },
            "refreshes": self.refreshes as f64,
            "refresh_us_total": (self.refresh_ns / 1_000) as f64,
            "quarantine_ring": Value::Array(ring),
            "log_tail": Value::Array(tail),
        })
    }
}

/// `[x | z]` row-wise concatenation (unstandardized).
fn concat_rows(x: &Matrix, z: &Matrix) -> Matrix {
    assert_eq!(x.rows(), z.rows(), "concat_rows: row mismatch");
    let (dx, dz) = (x.cols(), z.cols());
    let mut out = Matrix::zeros(x.rows(), dx + dz);
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        row[..dx].copy_from_slice(x.row(r));
        row[dx..].copy_from_slice(z.row(r));
    }
    out
}

/// Seeds the admission distance statistics from the base graph's edges,
/// deterministically: undirected edges in ascending `(row, col)` order,
/// capped at [`ADMISSION_SEED_CAP`].
fn seed_admission(filter: &mut AdmissionFilter, graph: &DeltaGraph, x: &Matrix) {
    let mut seen = 0usize;
    'rows: for r in 0..graph.node_count() {
        let mut cols = Vec::new();
        graph.visit_neighbors(r, &mut |c, _| {
            if c > r {
                cols.push(c);
            }
        });
        for c in cols {
            filter.observe(gale_tensor::distance::euclidean(x.row(r), x.row(c)));
            seen += 1;
            if seen >= ADMISSION_SEED_CAP {
                break 'rows;
            }
        }
    }
}
