//! gale-stream: delta ingestion, incremental embedding refresh, and
//! online re-scoring for GALE graphs.
//!
//! The batch pipeline (gale-core / gale-nn) scores a frozen graph. This
//! crate makes the graph *mutable in production* without giving up the
//! repo's bitwise-determinism contract:
//!
//! - [`Mutation`] / [`MutationLog`] — typed deltas with a JSON wire codec
//!   and a bounded introspection tail.
//! - [`DeltaGraph`] — insert/delete overlays layered over an immutable
//!   CSR base ([`gale_tensor::SparseMatrix`] or [`gale_graph::CsrStore`])
//!   behind [`gale_tensor::NeighborAccess`]; threshold-triggered
//!   compaction folds the overlay into a fresh CSR whose neighbor view is
//!   bitwise-identical to a from-scratch build.
//! - [`AdmissionFilter`] — structure-aware edge filtering (feature
//!   distance z-bound + degree cap) with an observable quarantine ring.
//! - [`DirtyTracker`] — k-hop invalidation matching the 2-layer GCN's
//!   receptive field.
//! - [`StreamEngine`] — owns graph + features + models, applies mutation
//!   batches, and lazily refreshes dirty verdicts via neighborhood-local
//!   forward passes that are bitwise-equal to a full rebuild + re-score.
//! - [`save_bundle`] / [`load_bundle`] — the on-disk artifact a serving
//!   process boots from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bundle;
pub mod delta;
pub mod dirty;
pub mod engine;
pub mod mutation;

pub use admission::{AdmissionConfig, AdmissionFilter, QuarantinedEdge, RejectReason};
pub use bundle::{load_bundle, save_bundle};
pub use delta::{BaseGraph, CompactionPolicy, DeltaGraph};
pub use dirty::{DirtyTracker, GCN_HOPS};
pub use engine::{ApplyReport, MutationOutcome, NodeScore, StreamConfig, StreamEngine};
pub use mutation::{LogEntry, Mutation, MutationLog};
