//! The delta-overlay graph: an immutable CSR base plus per-row
//! insert/delete overlays, presented through [`NeighborAccess`].
//!
//! ## Overlay layout
//!
//! Each mutated row carries a [`RowOverlay`]: a `BTreeMap` of added
//! `(col, weight)` entries and a `BTreeSet` of masked base columns. The
//! invariant is that a column lives in **either** the added map **or**
//! the visible part of the base row, never both — re-weighting a base
//! edge masks the base entry and adds the replacement, so a merged row
//! visit is a plain two-pointer merge of two sorted sequences with no
//! tie-breaking. That keeps the visit order (ascending columns) and the
//! visited bits identical to a from-scratch CSR of the same edge set,
//! which is what makes downstream GCN forwards bitwise-reproducible.
//!
//! ## Compaction
//!
//! Overlay churn (added + masked entries) is O(mutations since the last
//! compaction); once it crosses the [`CompactionPolicy`] threshold the
//! merged view is folded into a fresh in-memory CSR base (or an on-disk
//! [`CsrStore`] via [`DeltaGraph::compact_into_store`]) and the overlays
//! are cleared. Because the merged visit order equals a from-scratch
//! build's order, the compacted base is bitwise-equal to building the
//! final graph directly (proptested in `tests/delta_equivalence.rs`).

use gale_graph::{write_csr, CsrStore, StoreError};
use gale_tensor::{NeighborAccess, SparseMatrix};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The immutable CSR layer a [`DeltaGraph`] overlays.
pub enum BaseGraph {
    /// In-memory CSR.
    Mem(SparseMatrix),
    /// Memory-mapped (or decoded) on-disk CSR.
    Store(CsrStore),
}

impl BaseGraph {
    fn rows(&self) -> usize {
        match self {
            BaseGraph::Mem(s) => s.rows(),
            BaseGraph::Store(s) => s.rows(),
        }
    }

    fn nnz(&self) -> usize {
        match self {
            BaseGraph::Mem(s) => s.nnz(),
            BaseGraph::Store(s) => s.nnz(),
        }
    }

    fn row_len(&self, r: usize) -> usize {
        match self {
            BaseGraph::Mem(s) => s.row_nnz(r),
            BaseGraph::Store(s) => s.neighbor_count(r),
        }
    }

    fn has(&self, r: usize, c: usize) -> bool {
        match self {
            // Search stored columns directly: a structural entry counts
            // even if its stored value happens to be 0.0.
            BaseGraph::Mem(s) => s.row_slices(r).0.binary_search(&c).is_ok(),
            BaseGraph::Store(s) => s.has_neighbor(r, c),
        }
    }

    /// Entry `k` (by in-row position) of row `r` as `(col, value)`.
    fn entry(&self, r: usize, k: usize) -> (usize, f64) {
        match self {
            BaseGraph::Mem(s) => {
                let (cols, vals) = s.row_slices(r);
                (cols[k], vals[k])
            }
            BaseGraph::Store(s) => {
                let (cols, vals) = s.row(r);
                (cols[k] as usize, vals[k])
            }
        }
    }
}

/// Insert/delete overlay for one row. See the module docs for the
/// disjointness invariant.
#[derive(Default, Debug)]
struct RowOverlay {
    /// Edges visible in the view but absent from (or masking) the base.
    added: BTreeMap<usize, f64>,
    /// Base columns masked out of the view.
    removed: BTreeSet<usize>,
}

/// When overlay churn triggers folding the view back into a fresh base.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Churn floor below which compaction never triggers.
    pub min_churn: usize,
    /// Compact when `churn >= churn_ratio * base nnz` (and above the floor).
    pub churn_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_churn: 256,
            churn_ratio: 0.25,
        }
    }
}

/// A mutable graph view: immutable CSR base + per-row overlays.
///
/// Implements [`NeighborAccess`], so every access-path kernel (normalized
/// propagation, GCN forwards, PPR) runs over it unchanged.
pub struct DeltaGraph {
    base: BaseGraph,
    overlays: HashMap<usize, RowOverlay>,
    /// Total rows in the view (base rows + appended nodes).
    nodes: usize,
    /// Added overlay entries across all rows (directed count).
    overlay_edges: usize,
    /// Masked base entries across all rows (directed count).
    masked_edges: usize,
    policy: CompactionPolicy,
    compactions: u64,
}

impl DeltaGraph {
    /// Wraps an immutable base with empty overlays.
    pub fn new(base: BaseGraph) -> Self {
        Self::with_policy(base, CompactionPolicy::default())
    }

    /// Wraps a base with an explicit compaction policy.
    pub fn with_policy(base: BaseGraph, policy: CompactionPolicy) -> Self {
        let nodes = base.rows();
        DeltaGraph {
            base,
            overlays: HashMap::new(),
            nodes,
            overlay_edges: 0,
            masked_edges: 0,
            policy,
            compactions: 0,
        }
    }

    /// Total overlay churn: added plus masked directed entries.
    pub fn churn(&self) -> usize {
        self.overlay_edges + self.masked_edges
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Stored entries in the current view (directed count).
    pub fn view_nnz(&self) -> usize {
        self.base.nnz() + self.overlay_edges - self.masked_edges
    }

    /// Whether the view contains the directed entry `(r, c)`.
    pub fn has_edge(&self, r: usize, c: usize) -> bool {
        self.has_neighbor(r, c)
    }

    /// Degree of `r` in the view.
    pub fn degree(&self, r: usize) -> usize {
        self.neighbor_count(r)
    }

    /// Appends a fresh isolated node, returning its id.
    pub fn add_node(&mut self) -> usize {
        let id = self.nodes;
        self.nodes += 1;
        id
    }

    /// Inserts (or re-weights) the undirected edge `{u, v}`. Self-loops
    /// are rejected — the normalized operator adds its own.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(u != v, "DeltaGraph: self-loops are implicit");
        assert!(
            u < self.nodes && v < self.nodes,
            "DeltaGraph: edge {{{u}, {v}}} out of range ({} nodes)",
            self.nodes
        );
        self.upsert(u, v, weight);
        self.upsert(v, u, weight);
    }

    /// Removes the undirected edge `{u, v}`; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.nodes && v < self.nodes,
            "DeltaGraph: edge {{{u}, {v}}} out of range ({} nodes)",
            self.nodes
        );
        let existed = self.has_neighbor(u, v);
        self.drop_directed(u, v);
        self.drop_directed(v, u);
        existed
    }

    /// Detaches `node`: removes all incident edges, leaving a tombstone
    /// row. Ids are stable; the row is never renumbered. Returns the
    /// neighbors that were detached.
    pub fn remove_node(&mut self, node: usize) -> Vec<usize> {
        assert!(node < self.nodes, "DeltaGraph: node {node} out of range");
        let mut neighbors = Vec::with_capacity(self.neighbor_count(node));
        self.visit_neighbors(node, &mut |c, _| neighbors.push(c));
        for &c in &neighbors {
            self.remove_edge(node, c);
        }
        neighbors
    }

    fn upsert(&mut self, r: usize, c: usize, w: f64) {
        let in_base = r < self.base.rows() && self.base.has(r, c);
        let ov = self.overlays.entry(r).or_default();
        if in_base && ov.removed.insert(c) {
            self.masked_edges += 1;
        }
        if ov.added.insert(c, w).is_none() {
            self.overlay_edges += 1;
        }
    }

    fn drop_directed(&mut self, r: usize, c: usize) {
        let in_base = r < self.base.rows() && self.base.has(r, c);
        let ov = self.overlays.entry(r).or_default();
        if ov.added.remove(&c).is_some() {
            self.overlay_edges -= 1;
        }
        if in_base && ov.removed.insert(c) {
            self.masked_edges += 1;
        }
    }

    /// Compacts when the policy says churn warrants it; returns whether a
    /// compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        let threshold = (self.policy.churn_ratio * self.base.nnz() as f64).ceil() as usize;
        if self.churn() >= self.policy.min_churn.max(threshold) {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Folds the overlays into a fresh in-memory CSR base. The merged
    /// visit order is ascending columns per row — exactly a from-scratch
    /// build of the final edge set — so the new base is bitwise-equal to
    /// one built directly.
    pub fn compact(&mut self) {
        let mut triplets = Vec::with_capacity(self.view_nnz());
        for r in 0..self.nodes {
            self.visit_neighbors(r, &mut |c, v| triplets.push((r, c, v)));
        }
        self.install_base(BaseGraph::Mem(SparseMatrix::from_triplets(
            self.nodes, self.nodes, triplets,
        )));
    }

    /// Folds the overlays into a durable on-disk CSR at `path` and remaps
    /// it as the new base. The overlays are only discarded after
    /// [`gale_graph::CsrWriter::finish`] has fsynced the file — on error
    /// the view is left untouched.
    pub fn compact_into_store(&mut self, path: &std::path::Path) -> Result<(), StoreError> {
        write_csr(&*self, self.nodes, path)?;
        let store = CsrStore::open(path)?;
        self.install_base(BaseGraph::Store(store));
        Ok(())
    }

    fn install_base(&mut self, base: BaseGraph) {
        self.base = base;
        self.overlays.clear();
        self.overlay_edges = 0;
        self.masked_edges = 0;
        self.compactions += 1;
        gale_obs::counter_add!("stream.compactions", 1);
    }
}

impl NeighborAccess for DeltaGraph {
    fn node_count(&self) -> usize {
        self.nodes
    }

    fn neighbor_count(&self, r: usize) -> usize {
        let base_len = if r < self.base.rows() {
            self.base.row_len(r)
        } else {
            0
        };
        match self.overlays.get(&r) {
            None => base_len,
            Some(ov) => base_len - ov.removed.len() + ov.added.len(),
        }
    }

    fn visit_neighbors(&self, r: usize, f: &mut dyn FnMut(usize, f64)) {
        let base_len = if r < self.base.rows() {
            self.base.row_len(r)
        } else {
            0
        };
        match self.overlays.get(&r) {
            None => {
                for k in 0..base_len {
                    let (c, v) = self.base.entry(r, k);
                    f(c, v);
                }
            }
            Some(ov) => {
                // Two-pointer merge: base (minus masked) with added. The
                // disjointness invariant means no column ties.
                let mut added = ov.added.iter().peekable();
                let mut k = 0;
                while k < base_len {
                    let (c, v) = self.base.entry(r, k);
                    if ov.removed.contains(&c) {
                        k += 1;
                        continue;
                    }
                    match added.peek() {
                        Some(&(&ac, &av)) if ac < c => {
                            f(ac, av);
                            added.next();
                        }
                        _ => {
                            f(c, v);
                            k += 1;
                        }
                    }
                }
                for (&ac, &av) in added {
                    f(ac, av);
                }
            }
        }
    }

    fn has_neighbor(&self, r: usize, c: usize) -> bool {
        if let Some(ov) = self.overlays.get(&r) {
            if ov.added.contains_key(&c) {
                return true;
            }
            if ov.removed.contains(&c) {
                return false;
            }
        }
        r < self.base.rows() && self.base.has(r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_path() -> SparseMatrix {
        // 0-1-2-3 path, symmetric.
        SparseMatrix::from_triplets(
            4,
            4,
            [
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        )
    }

    fn row(g: &impl NeighborAccess, r: usize) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        g.visit_neighbors(r, &mut |c, v| out.push((c, v.to_bits())));
        out
    }

    #[test]
    fn overlay_merges_in_ascending_order() {
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        g.add_edge(1, 3, 2.0);
        assert_eq!(
            row(&g, 1),
            vec![
                (0, 1.0f64.to_bits()),
                (2, 1.0f64.to_bits()),
                (3, 2.0f64.to_bits())
            ]
        );
        assert_eq!(g.neighbor_count(1), 3);
        assert!(g.has_neighbor(3, 1));
    }

    #[test]
    fn removal_masks_base_edges() {
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2), "second removal is a no-op");
        assert_eq!(row(&g, 1), vec![(0, 1.0f64.to_bits())]);
        assert_eq!(g.neighbor_count(2), 1);
        assert!(!g.has_neighbor(2, 1));
    }

    #[test]
    fn reweight_replaces_base_value() {
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        g.add_edge(0, 1, 0.25);
        assert_eq!(row(&g, 0), vec![(1, 0.25f64.to_bits())]);
        assert_eq!(g.neighbor_count(0), 1);
    }

    #[test]
    fn added_nodes_get_fresh_ids() {
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        let v = g.add_node();
        assert_eq!(v, 4);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.neighbor_count(v), 0);
        g.add_edge(v, 0, 1.0);
        assert_eq!(row(&g, v), vec![(0, 1.0f64.to_bits())]);
    }

    #[test]
    fn remove_node_leaves_tombstone() {
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        let detached = g.remove_node(1);
        assert_eq!(detached, vec![0, 2]);
        assert_eq!(g.neighbor_count(1), 0);
        assert_eq!(g.node_count(), 4, "ids are stable");
        assert_eq!(row(&g, 0), vec![]);
        assert_eq!(row(&g, 2), vec![(3, 1.0f64.to_bits())]);
    }

    #[test]
    fn compaction_is_bitwise_equal_to_from_scratch() {
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        g.add_edge(0, 3, 1.5);
        g.remove_edge(1, 2);
        let n = g.add_node();
        g.add_edge(n, 2, 0.5);
        let before: Vec<_> = (0..g.node_count()).map(|r| row(&g, r)).collect();
        g.compact();
        assert_eq!(g.churn(), 0);
        assert_eq!(g.compactions(), 1);
        let after: Vec<_> = (0..g.node_count()).map(|r| row(&g, r)).collect();
        assert_eq!(before, after);
        // And equal to building the final edge set directly.
        let direct = SparseMatrix::from_triplets(
            5,
            5,
            [
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (0, 3, 1.5),
                (3, 0, 1.5),
                (4, 2, 0.5),
                (2, 4, 0.5),
            ],
        );
        for r in 0..5 {
            assert_eq!(row(&g, r), row(&direct, r), "row {r}");
        }
    }

    #[test]
    fn policy_triggers_compaction_on_churn() {
        let policy = CompactionPolicy {
            min_churn: 4,
            churn_ratio: 0.0,
        };
        let mut g = DeltaGraph::with_policy(BaseGraph::Mem(base_path()), policy);
        g.add_edge(0, 2, 1.0); // churn 2
        assert!(!g.maybe_compact());
        g.add_edge(0, 3, 1.0); // churn 4
        assert!(g.maybe_compact());
        assert_eq!(g.churn(), 0);
    }

    #[test]
    fn compact_into_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gale-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compacted.csr");
        let mut g = DeltaGraph::new(BaseGraph::Mem(base_path()));
        g.add_edge(0, 3, 2.0);
        let before: Vec<_> = (0..4).map(|r| row(&g, r)).collect();
        g.compact_into_store(&path).unwrap();
        let after: Vec<_> = (0..4).map(|r| row(&g, r)).collect();
        assert_eq!(before, after);
        let reopened = CsrStore::open(&path).unwrap();
        for (r, expected) in before.iter().enumerate() {
            assert_eq!(&row(&reopened, r), expected, "row {r}");
        }
    }
}
