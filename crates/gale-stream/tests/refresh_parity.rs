//! Engine-level parity: after any mutation stream, the incremental
//! refresh produces verdicts bitwise-equal to building a fresh engine
//! over the mutated graph with the same model artifacts, and a bundle
//! round trip preserves every bit.

use gale_core::{Sgan, SganConfig};
use gale_nn::{Activation, Gae, Gcn};
use gale_stream::{
    load_bundle, save_bundle, BaseGraph, DeltaGraph, Mutation, StreamConfig, StreamEngine,
};
use gale_tensor::{Matrix, Rng, SparseMatrix};
use proptest::prelude::*;
use std::collections::BTreeSet;

const DX: usize = 4;
const HID: usize = 6;
const DZ: usize = 3;

/// Deterministic model pair: same seed → identical weight bits.
fn artifacts(seed: u64) -> (Gae, Sgan) {
    let mut rng = Rng::seed_from_u64(seed);
    let gae = Gae::from_parts(
        Gcn::new_detached(DX, HID, DZ, Activation::Identity, &mut rng),
        0.0,
    );
    let cfg = SganConfig {
        d_hidden: vec![8, 5],
        g_hidden: vec![8],
        ..Default::default()
    };
    let sgan = Sgan::new(DX + DZ, &cfg, &mut rng);
    (gae, sgan)
}

fn random_graph(n: usize, seed: u64) -> (SparseMatrix, Matrix) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut edges = BTreeSet::new();
    for _ in 0..(n * 2) {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    let mut t = Vec::new();
    for (u, v) in edges {
        t.push((u, v, 1.0));
        t.push((v, u, 1.0));
    }
    let a = SparseMatrix::from_triplets(n, n, t);
    let mut x = Matrix::zeros(n, DX);
    for r in 0..n {
        for c in 0..DX {
            x[(r, c)] = rng.f64() * 2.0 - 1.0;
        }
    }
    (a, x)
}

fn random_mutations(n: usize, count: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xabcd_1234);
    let mut muts = Vec::new();
    let mut nodes = n;
    for _ in 0..count {
        match rng.next_u64() % 8 {
            0..=2 => {
                let u = rng.below(nodes);
                let v = rng.below(nodes);
                if u != v {
                    muts.push(Mutation::AddEdge { u, v, weight: 1.0 });
                }
            }
            3..=4 => {
                let u = rng.below(nodes);
                let v = rng.below(nodes);
                if u != v {
                    muts.push(Mutation::RemoveEdge { u, v });
                }
            }
            5 => {
                let attrs = (0..DX).map(|_| rng.f64() * 2.0 - 1.0).collect();
                muts.push(Mutation::UpdateAttrs {
                    node: rng.below(nodes),
                    attrs,
                });
            }
            6 => {
                let attrs = (0..DX).map(|_| rng.f64() * 2.0 - 1.0).collect();
                muts.push(Mutation::AddNode { attrs });
                nodes += 1;
            }
            _ => {
                muts.push(Mutation::RemoveNode {
                    node: rng.below(nodes),
                });
            }
        }
    }
    muts
}

fn engine_over(a: SparseMatrix, x: Matrix, seed: u64) -> StreamEngine {
    let (gae, sgan) = artifacts(seed);
    let mut cfg = StreamConfig::default();
    // Parity runs must apply every mutation the reference applies.
    cfg.admission.enabled = false;
    StreamEngine::new(DeltaGraph::new(BaseGraph::Mem(a)), x, gae, sgan, None, cfg)
        .expect("engine build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_refresh_matches_from_scratch(
        n in 5usize..24,
        count in 1usize..24,
        seed in 0u64..500,
    ) {
        let (a, x) = random_graph(n, seed);
        let mut live = engine_over(a, x, seed);
        let muts = random_mutations(n, count, seed);
        live.apply(&muts).expect("mutations apply");
        let incremental = live.all_scores();

        // From-scratch reference over the mutated graph with the same
        // artifacts and the same frozen standardizer.
        let (gae, sgan) = artifacts(seed);
        let mut cfg = StreamConfig::default();
        cfg.admission.enabled = false;
        let mut fresh = StreamEngine::new(
            DeltaGraph::new(BaseGraph::Mem(live.snapshot_graph())),
            live.features().clone(),
            gae,
            sgan,
            Some(live.standardizer().clone()),
            cfg,
        )
        .expect("reference build");
        let reference = fresh.all_scores();

        prop_assert_eq!(incremental.len(), reference.len());
        for (i, r) in incremental.iter().zip(&reference) {
            prop_assert_eq!(i.node, r.node);
            for d in 0..3 {
                prop_assert_eq!(
                    i.probs[d].to_bits(),
                    r.probs[d].to_bits(),
                    "node {} prob {} bits", i.node, d
                );
            }
            prop_assert_eq!(i.score.to_bits(), r.score.to_bits(), "node {}", i.node);
            prop_assert_eq!(i.erroneous, r.erroneous, "node {}", i.node);
        }
    }
}

#[test]
fn graph_version_stamps_refreshed_verdicts() {
    let (a, x) = random_graph(10, 42);
    let mut engine = engine_over(a, x, 42);
    assert_eq!(engine.graph_version(), 0);

    let report = engine
        .apply(&[Mutation::AddEdge {
            u: 0,
            v: 5,
            weight: 1.0,
        }])
        .unwrap();
    assert_eq!(report.graph_version, 1);
    assert!(report.dirty > 0, "edge mutation must dirty its closure");

    let scores = engine.score_nodes(&[0, 5]).unwrap();
    for s in &scores {
        assert_eq!(s.graph_version, 1, "refreshed verdicts carry the version");
    }
    assert_eq!(engine.dirty_count(), 0, "scoring drains the dirty set");
}

#[test]
fn bundle_roundtrip_preserves_verdict_bits() {
    let n = 12;
    let (a, x) = random_graph(n, 99);
    let mut direct = engine_over(a.clone(), x.clone(), 99);
    let expected = direct.all_scores();

    let dir = std::env::temp_dir().join(format!("gale-stream-bundle-{}", std::process::id()));
    let (gae, sgan) = artifacts(99);
    save_bundle(&dir, &a, &x, &gae, &sgan, direct.standardizer()).expect("save bundle");
    let mut cfg = StreamConfig::default();
    cfg.admission.enabled = false;
    let mut loaded = load_bundle(&dir, cfg).expect("load bundle");
    let got = loaded.all_scores();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        for d in 0..3 {
            assert_eq!(g.probs[d].to_bits(), e.probs[d].to_bits());
        }
        assert_eq!(g.score.to_bits(), e.score.to_bits());
        assert_eq!(g.erroneous, e.erroneous);
    }
}
