//! Property tests: any interleaving of mutations and compactions yields a
//! [`DeltaGraph`] whose `NeighborAccess` view — and whose normalized
//! operator and SpMM products — are bitwise-identical to a from-scratch
//! graph build, at 1, 2, and 8 threads.

use gale_stream::{BaseGraph, CompactionPolicy, DeltaGraph};
use gale_tensor::par::with_threads;
use gale_tensor::{spmm_access_into, Matrix, NeighborAccess, Rng, SparseMatrix, SymNormalized};
use proptest::prelude::*;
use std::collections::BTreeMap;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Reference model: undirected edge map keyed by `(min, max)`.
#[derive(Default)]
struct Model {
    nodes: usize,
    edges: BTreeMap<(usize, usize), f64>,
}

impl Model {
    fn key(u: usize, v: usize) -> (usize, usize) {
        (u.min(v), u.max(v))
    }

    fn to_sparse(&self) -> SparseMatrix {
        let mut t = Vec::with_capacity(self.edges.len() * 2);
        for (&(u, v), &w) in &self.edges {
            t.push((u, v, w));
            t.push((v, u, w));
        }
        SparseMatrix::from_triplets(self.nodes, self.nodes, t)
    }
}

/// A random starting graph plus its reference model.
fn seed_graph(n: usize, seed: u64) -> (DeltaGraph, Model) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut model = Model {
        nodes: n,
        edges: BTreeMap::new(),
    };
    for _ in 0..(n * 2) {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            model.edges.insert(Model::key(u, v), 1.0);
        }
    }
    let base = model.to_sparse();
    // An aggressive policy so proptest runs actually cross the threshold.
    let policy = CompactionPolicy {
        min_churn: 4,
        churn_ratio: 0.125,
    };
    (DeltaGraph::with_policy(BaseGraph::Mem(base), policy), model)
}

/// Applies `steps` random mutations (plus occasional forced compactions)
/// to both the delta graph and the reference model.
fn churn(g: &mut DeltaGraph, model: &mut Model, steps: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for _ in 0..steps {
        let n = model.nodes;
        match rng.next_u64() % 10 {
            // Add (or re-weight) an edge.
            0..=3 => {
                let u = rng.below(n);
                let v = rng.below(n);
                if u != v {
                    let w = 1.0 + (rng.next_u64() % 4) as f64;
                    g.add_edge(u, v, w);
                    model.edges.insert(Model::key(u, v), w);
                }
            }
            // Remove an edge (maybe absent — both sides must agree).
            4..=6 => {
                let u = rng.below(n);
                let v = rng.below(n);
                if u != v {
                    let existed = g.remove_edge(u, v);
                    let modeled = model.edges.remove(&Model::key(u, v)).is_some();
                    assert_eq!(existed, modeled, "removal disagreement on ({u},{v})");
                }
            }
            // Append a node.
            7 => {
                let id = g.add_node();
                assert_eq!(id, model.nodes);
                model.nodes += 1;
            }
            // Detach a node.
            8 => {
                let victim = rng.below(n);
                g.remove_node(victim);
                model.edges.retain(|&(u, v), _| u != victim && v != victim);
            }
            // Force a compaction mid-stream.
            _ => g.compact(),
        }
        g.maybe_compact();
    }
}

/// Sorted `(col, value-bits)` adjacency row via the access trait.
fn row_bits(g: &(impl NeighborAccess + ?Sized), r: usize) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    g.visit_neighbors(r, &mut |c, v| out.push((c, v.to_bits())));
    out
}

fn assert_views_identical(delta: &DeltaGraph, fresh: &SparseMatrix) {
    assert_eq!(delta.node_count(), fresh.rows());
    for r in 0..fresh.rows() {
        assert_eq!(delta.neighbor_count(r), fresh.neighbor_count(r), "row {r}");
        assert_eq!(row_bits(delta, r), row_bits(fresh, r), "row {r}");
    }
}

fn dense_for(n: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, cols);
    for r in 0..n {
        for c in 0..cols {
            m[(r, c)] = rng.f64() * 2.0 - 1.0;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_mutations_match_from_scratch(
        n in 4usize..28,
        steps in 0usize..48,
        seed in 0u64..1000,
    ) {
        let (mut g, mut model) = seed_graph(n, seed);
        churn(&mut g, &mut model, steps, seed);
        let fresh = model.to_sparse();

        // Raw adjacency view, bitwise.
        prop_assert_eq!(g.node_count(), fresh.rows());
        for r in 0..fresh.rows() {
            prop_assert_eq!(g.neighbor_count(r), fresh.neighbor_count(r));
            prop_assert_eq!(row_bits(&g, r), row_bits(&fresh, r));
            for c in 0..fresh.rows() {
                prop_assert_eq!(g.has_neighbor(r, c), fresh.has_neighbor(r, c));
            }
        }

        // Normalized-operator view and SpMM products, per thread count.
        let nd = g.node_count();
        let x = dense_for(nd, 3, seed.wrapping_add(17));
        for &t in &THREAD_COUNTS {
            with_threads(t, || {
                let (mut yd, mut yf) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
                {
                    let op_d = SymNormalized::new(&g);
                    let op_f = SymNormalized::new(&fresh);
                    for r in 0..nd {
                        assert_eq!(row_bits(&op_d, r), row_bits(&op_f, r), "S row {r}");
                    }
                    spmm_access_into(&op_d, &x, &mut yd);
                    spmm_access_into(&op_f, &x, &mut yf);
                }
                assert_eq!(yd.data().len(), yf.data().len());
                for (a, b) in yd.data().iter().zip(yf.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{t}-thread SpMM bits");
                }
            });
        }
    }

    #[test]
    fn compaction_after_churn_preserves_bits(
        n in 4usize..20,
        steps in 1usize..32,
        seed in 0u64..500,
    ) {
        let (mut g, mut model) = seed_graph(n, seed);
        churn(&mut g, &mut model, steps, seed);
        let before: Vec<Vec<(usize, u64)>> =
            (0..g.node_count()).map(|r| row_bits(&g, r)).collect();
        let compactions = g.compactions();
        g.compact();
        prop_assert_eq!(g.compactions(), compactions + 1);
        prop_assert_eq!(g.churn(), 0);
        for (r, row) in before.iter().enumerate() {
            prop_assert_eq!(&row_bits(&g, r), row, "row {} changed by compaction", r);
        }
    }
}

#[test]
fn unused_helper_guard() {
    // Keep the non-macro helpers referenced even if proptest shrinks away.
    let (g, model) = seed_graph(5, 7);
    assert_views_identical(&g, &model.to_sparse());
}
