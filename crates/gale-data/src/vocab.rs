//! Deterministic vocabularies for the synthetic dataset generators.
//!
//! Each list is themed after one of the paper's source graphs (DBpedia
//! species, Open Academic Graph topics, Yelp services) so that generated
//! attribute values look like the real thing and the string-noise detectors
//! have realistic character statistics to model.

/// Botanical/zoological order names (DBP species analogue).
pub const ORDERS: &[&str] = &[
    "Malvales",
    "Fabales",
    "Rosales",
    "Asterales",
    "Poales",
    "Lamiales",
    "Brassicales",
    "Sapindales",
    "Myrtales",
    "Gentianales",
    "Ericales",
    "Caryophyllales",
    "Ranunculales",
    "Asparagales",
    "Liliales",
    "Pinales",
    "Lepidoptera",
    "Coleoptera",
    "Diptera",
    "Hymenoptera",
    "Hemiptera",
    "Odonata",
    "Orthoptera",
    "Passeriformes",
];

/// Kingdom names, grouped so each order maps deterministically to one.
pub const KINGDOMS: &[&str] = &["plantae", "animalia", "fungi", "protista"];

/// Latin-ish species epithets for name generation.
pub const EPITHETS: &[&str] = &[
    "alba",
    "rubra",
    "verde",
    "minor",
    "major",
    "vulgaris",
    "officinalis",
    "sylvatica",
    "campestris",
    "montana",
    "aquatica",
    "arvensis",
    "nigra",
    "lutea",
    "grandis",
    "parva",
    "elegans",
    "robusta",
    "gracilis",
    "communis",
];

/// Genus-like stems.
pub const GENERA: &[&str] = &[
    "cavanillesia",
    "quercus",
    "acer",
    "salix",
    "betula",
    "pinus",
    "abies",
    "rosa",
    "malva",
    "viola",
    "iris",
    "lilium",
    "carex",
    "festuca",
    "poa",
    "papilio",
    "morpho",
    "danaus",
    "vanessa",
    "pieris",
    "apis",
    "bombus",
];

/// Academic venue names (OAG analogue).
pub const VENUES: &[&str] = &[
    "ICDE", "SIGMOD", "VLDB", "KDD", "ICML", "NeurIPS", "ICLR", "AAAI", "IJCAI", "WWW", "WSDM",
    "CIKM", "EDBT", "ICDM", "SDM", "ECML", "UAI", "COLT", "ACL", "EMNLP", "CVPR", "ICCV", "SIGIR",
    "RecSys",
];

/// Research fields, grouped so venues map deterministically onto them.
pub const FIELDS: &[&str] = &[
    "databases",
    "data mining",
    "machine learning",
    "natural language",
    "computer vision",
    "information retrieval",
];

/// Paper-title stock words.
pub const TITLE_WORDS: &[&str] = &[
    "learning",
    "graphs",
    "efficient",
    "scalable",
    "neural",
    "deep",
    "adversarial",
    "detection",
    "queries",
    "optimization",
    "embedding",
    "attention",
    "transformers",
    "clustering",
    "sampling",
    "distributed",
    "streaming",
    "indexes",
    "joins",
    "provenance",
    "cleaning",
    "repair",
];

/// City names (Yelp analogue).
pub const CITIES: &[&str] = &[
    "Phoenix",
    "Las Vegas",
    "Toronto",
    "Charlotte",
    "Pittsburgh",
    "Montreal",
    "Madison",
    "Cleveland",
    "Edinburgh",
    "Stuttgart",
    "Champaign",
    "Urbana",
    "Scottsdale",
    "Henderson",
    "Tempe",
    "Mesa",
];

/// Yelp-ish business categories.
pub const CATEGORIES: &[&str] = &[
    "restaurants",
    "plumbers",
    "electricians",
    "cafes",
    "bars",
    "salons",
    "dentists",
    "mechanics",
    "bakeries",
    "gyms",
    "florists",
    "movers",
];

/// Personal-name stems for user names.
pub const FIRST_NAMES: &[&str] = &[
    "alex", "sam", "jordan", "taylor", "casey", "morgan", "riley", "jamie", "avery", "quinn",
    "dana", "reese", "skyler", "devon", "kendall", "logan",
];

/// Surname stems.
pub const LAST_NAMES: &[&str] = &[
    "smith", "garcia", "chen", "mueller", "rossi", "tanaka", "kowalski", "johnson", "brown",
    "davis", "martin", "lopez", "gonzalez", "wilson",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_non_empty_and_unique() {
        for (name, list) in [
            ("ORDERS", ORDERS),
            ("KINGDOMS", KINGDOMS),
            ("EPITHETS", EPITHETS),
            ("GENERA", GENERA),
            ("VENUES", VENUES),
            ("FIELDS", FIELDS),
            ("TITLE_WORDS", TITLE_WORDS),
            ("CITIES", CITIES),
            ("CATEGORIES", CATEGORIES),
            ("FIRST_NAMES", FIRST_NAMES),
            ("LAST_NAMES", LAST_NAMES),
        ] {
            assert!(!list.is_empty(), "{name} empty");
            let mut v: Vec<&&str> = list.iter().collect();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), list.len(), "{name} has duplicates");
        }
    }

    #[test]
    fn orders_cover_multiple_kingdom_groups() {
        assert!(ORDERS.len() >= 2 * KINGDOMS.len());
    }
}
