//! Feature engineering pipeline (Section VII, "Feature Engineering").
//!
//! The paper (1) maps attribute tokens to word-embedding vectors, (2) feeds
//! them to a graph autoencoder to learn structural node representations,
//! (3) concatenates attribute-level and node-level representations, and (4)
//! reduces with PCA to cut training cost. This module reproduces that
//! pipeline with hash embeddings in place of pretrained word vectors.

use gale_detect::{Constraint, DetectorLibrary};
use gale_graph::{AttrKind, FeatureRepr, Graph};
use gale_nn::{Gae, GaeConfig, HashEmbedder};
use gale_tensor::{stats, Matrix, Pca, Rng};
use std::sync::Arc;

/// Featurization configuration.
#[derive(Debug, Clone)]
pub struct FeaturizeConfig {
    /// Per-attribute token-embedding width.
    pub token_dim: usize,
    /// PCA output dimensionality for the attribute block; `None` keeps the
    /// raw concatenation.
    pub pca_dim: Option<usize>,
    /// GAE settings for the structural block.
    pub gae: GaeConfig,
    /// Skip the GAE entirely (attribute features only).
    pub skip_gae: bool,
    /// Append per-detector signal columns (the Raha-style feature block:
    /// each base detector in Ψ contributes its max per-node confidence).
    pub detector_signals: bool,
}

impl Default for FeaturizeConfig {
    fn default() -> Self {
        FeaturizeConfig {
            token_dim: 12,
            pca_dim: Some(24),
            gae: GaeConfig {
                hidden_dim: 24,
                embed_dim: 12,
                epochs: 40,
                lr: 0.01,
                negative_ratio: 1,
            },
            skip_gae: false,
            detector_signals: true,
        }
    }
}

/// Builds the raw attribute-level feature matrix.
///
/// Per attribute the layout is:
/// * numeric — `[z-score, is-null, local-deviation]` where the local
///   deviation compares the value against the node's graph neighbors
///   (scaled by the global σ);
/// * textual/categorical — `[token embedding (token_dim), is-null, rarity,
///   neighborhood-mismatch, neighbor-agreement]`, where rarity is the
///   value's negative log frequency within its `(type, attribute)` slice,
///   the mismatch is the cosine distance between the node's token embedding
///   and the mean embedding of its neighbors, and the agreement is the
///   fraction of neighbors carrying a semantically equal value (the signal
///   that exposes consistent-but-wrong swaps, the paper's cases 3/4).
///
/// The rarity and context columns are the offline stand-in for what
/// pretrained word embeddings give the paper: a signal for how *plausible*
/// a value is globally and in its graph context.
pub fn attribute_features(g: &Graph, token_dim: usize) -> Matrix {
    let n = g.node_count();
    let attr_count = g.schema.attr_count() as u32;
    let neighbors = g.neighbor_lists();
    // Per-attribute z-score statistics over the full graph.
    let mut numeric_stats = Vec::new();
    for a in 0..attr_count {
        if g.schema.attr_kind(a) == AttrKind::Numeric {
            let vals: Vec<f64> = g
                .nodes()
                .filter_map(|(_, node)| node.get(a).and_then(|v| v.as_f64()))
                .collect();
            numeric_stats.push((a, stats::mean(&vals), stats::std_dev(&vals).max(1e-9)));
        } else {
            numeric_stats.push((a, 0.0, 1.0));
        }
    }
    // Canonical-value frequency tables for the rarity column.
    let mut value_counts: Vec<std::collections::HashMap<String, usize>> =
        vec![std::collections::HashMap::new(); attr_count as usize];
    let mut value_totals: Vec<usize> = vec![0; attr_count as usize];
    for (_, node) in g.nodes() {
        for (a, v) in node.attrs() {
            if g.schema.attr_kind(a) != AttrKind::Numeric && !v.is_null() {
                *value_counts[a as usize].entry(v.canonical()).or_insert(0) += 1;
                value_totals[a as usize] += 1;
            }
        }
    }
    // Column layout.
    let width_of = |a: u32| match g.schema.attr_kind(a) {
        AttrKind::Numeric => 3,
        _ => token_dim + 4,
    };
    let total: usize = (0..attr_count).map(width_of).sum();
    // Distinct salt per attribute keeps token namespaces independent.
    let embedders: Vec<HashEmbedder> = (0..attr_count)
        .map(|a| HashEmbedder::new(token_dim, 0x9a1e_0000 + u64::from(a)))
        .collect();

    // Pre-compute each node's token embedding per non-numeric attribute so
    // the neighborhood mismatch is O(|E|) per attribute.
    let mut attr_embeds: Vec<Option<Matrix>> = Vec::with_capacity(attr_count as usize);
    for a in 0..attr_count {
        if g.schema.attr_kind(a) == AttrKind::Numeric {
            attr_embeds.push(None);
            continue;
        }
        let mut m = Matrix::zeros(n, token_dim);
        for (id, node) in g.nodes() {
            if let Some(v) = node.get(a) {
                if !v.is_null() {
                    m.set_row(id, &embedders[a as usize].embed_tokens(&v.tokens()));
                }
            }
        }
        attr_embeds.push(Some(m));
    }

    let mut x = Matrix::zeros(n, total.max(1));
    for (id, node) in g.nodes() {
        let mut col = 0usize;
        for a in 0..attr_count {
            let value = node.get(a);
            match g.schema.attr_kind(a) {
                AttrKind::Numeric => {
                    let (_, mean, sd) = numeric_stats[a as usize];
                    match value.and_then(|v| v.as_f64()) {
                        Some(v) => {
                            x[(id, col)] = (v - mean) / sd;
                            x[(id, col + 1)] = 0.0;
                            // Local deviation against neighbor values.
                            let nbr_vals: Vec<f64> = neighbors[id]
                                .iter()
                                .filter_map(|&u| g.node(u).get(a).and_then(|w| w.as_f64()))
                                .collect();
                            x[(id, col + 2)] = if nbr_vals.len() >= 2 {
                                ((v - stats::mean(&nbr_vals)) / sd).clamp(-10.0, 10.0)
                            } else {
                                0.0
                            };
                        }
                        None => {
                            x[(id, col)] = 0.0;
                            x[(id, col + 1)] = 1.0; // missing marker
                            x[(id, col + 2)] = 0.0;
                        }
                    }
                    col += 3;
                }
                _ => {
                    let (tokens, is_null) = match value {
                        Some(v) if !v.is_null() => (v.tokens(), 0.0),
                        Some(_) => (vec!["<null>".to_string()], 1.0),
                        None => (Vec::new(), 1.0),
                    };
                    let emb = embedders[a as usize].embed_tokens(&tokens);
                    for (j, e) in emb.iter().enumerate() {
                        x[(id, col + j)] = *e;
                    }
                    x[(id, col + token_dim)] = is_null;
                    // Rarity: -ln(freq) normalized by ln(total).
                    let rarity = if is_null > 0.0 {
                        1.0
                    } else {
                        let canon = value.expect("non-null").canonical();
                        let count = value_counts[a as usize]
                            .get(&canon)
                            .copied()
                            .unwrap_or(0)
                            .max(1);
                        let tot = value_totals[a as usize].max(2);
                        (-((count as f64) / (tot as f64)).ln()) / (tot as f64).ln()
                    };
                    x[(id, col + token_dim + 1)] = rarity;
                    // Neighborhood mismatch: cosine distance to the mean
                    // neighbor embedding for the same attribute.
                    let mismatch = if is_null > 0.0 || neighbors[id].is_empty() {
                        0.0
                    } else {
                        let embeds = attr_embeds[a as usize].as_ref().expect("non-numeric");
                        let mut mean_nbr = vec![0.0; token_dim];
                        let mut cnt = 0usize;
                        for &u in &neighbors[id] {
                            let row = embeds.row(u);
                            if row.iter().any(|e| *e != 0.0) {
                                for (m, e) in mean_nbr.iter_mut().zip(row) {
                                    *m += e;
                                }
                                cnt += 1;
                            }
                        }
                        if cnt == 0 {
                            0.0
                        } else {
                            for m in &mut mean_nbr {
                                *m /= cnt as f64;
                            }
                            gale_tensor::distance::cosine_distance(&emb, &mean_nbr)
                        }
                    };
                    x[(id, col + token_dim + 2)] = mismatch;
                    // Neighbor agreement on the raw value.
                    let agreement = if is_null > 0.0 {
                        0.0
                    } else {
                        let own = value.expect("non-null");
                        let mut same = 0usize;
                        let mut with_attr = 0usize;
                        for &u in &neighbors[id] {
                            if let Some(w) = g.node(u).get(a) {
                                if !w.is_null() {
                                    with_attr += 1;
                                    if w.semantically_eq(own) {
                                        same += 1;
                                    }
                                }
                            }
                        }
                        if with_attr == 0 {
                            0.0
                        } else {
                            same as f64 / with_attr as f64
                        }
                    };
                    x[(id, col + token_dim + 3)] = agreement;
                    col += token_dim + 4;
                }
            }
        }
    }
    x
}

/// Column indices of the token-embedding blocks vs the diagnostic scalars
/// (z-scores, null flags, local deviations, rarity, mismatch) within the raw
/// attribute-feature matrix of [`attribute_features`].
pub fn attribute_feature_layout(g: &Graph, token_dim: usize) -> (Vec<usize>, Vec<usize>) {
    let mut token_cols = Vec::new();
    let mut diag_cols = Vec::new();
    let mut col = 0usize;
    for a in 0..g.schema.attr_count() as u32 {
        match g.schema.attr_kind(a) {
            AttrKind::Numeric => {
                diag_cols.extend([col, col + 1, col + 2]);
                col += 3;
            }
            _ => {
                token_cols.extend(col..col + token_dim);
                diag_cols.extend([
                    col + token_dim,
                    col + token_dim + 1,
                    col + token_dim + 2,
                    col + token_dim + 3,
                ]);
                col += token_dim + 4;
            }
        }
    }
    (token_cols, diag_cols)
}

/// Selects a set of columns from a matrix into a new matrix.
fn select_cols(m: &Matrix, cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), cols.len());
    for r in 0..m.rows() {
        for (j, &c) in cols.iter().enumerate() {
            out[(r, j)] = m[(r, c)];
        }
    }
    out
}

/// Per-detector signal columns: column `i` holds detector `i`'s maximum
/// detection confidence on each node (0 when unflagged). This is the
/// Raha-style feature block that lets the classifier *learn* which detector
/// patterns to trust instead of unioning them.
pub fn detector_signal_features(g: &Graph, lib: &DetectorLibrary) -> Matrix {
    let report = lib.run(g);
    let mut x: Matrix = Matrix::zeros(g.node_count(), lib.len().max(1));
    for (i, dets) in report.per_detector.iter().enumerate() {
        for d in dets {
            x[(d.node, i)] = x[(d.node, i)].max(d.confidence);
        }
    }
    x
}

/// A fitted featurization pipeline.
///
/// GALE's graph-augmentation step needs to encode a *polluted clone* of the
/// graph with the exact same projection as the real graph, so the fitted PCA
/// basis and GAE encoder are kept and re-applied by [`FeaturePipeline::transform`].
pub struct FeaturePipeline {
    cfg: FeaturizeConfig,
    pca: Option<Pca>,
    gae: Option<Gae>,
    lib: Option<DetectorLibrary>,
    token_cols: Vec<usize>,
    diag_cols: Vec<usize>,
    attr_dim: usize,
}

impl FeaturePipeline {
    /// Fits the pipeline on a graph and returns it with the graph's
    /// feature representation.
    pub fn fit(
        g: &Graph,
        constraints: &[Constraint],
        cfg: &FeaturizeConfig,
        rng: &mut Rng,
    ) -> (FeaturePipeline, FeatureRepr) {
        let raw = attribute_features(g, cfg.token_dim);
        let (token_cols, diag_cols) = attribute_feature_layout(g, cfg.token_dim);
        // PCA compresses only the token-embedding columns: the diagnostic
        // scalars are low-variance but high-signal and must survive intact.
        let token_block = select_cols(&raw, &token_cols);
        let pca = match cfg.pca_dim {
            Some(k) if k < token_block.cols() && g.node_count() > 1 => {
                Some(Pca::fit(&token_block, k))
            }
            _ => None,
        };
        let reduced = match &pca {
            Some(p) => p.transform(&token_block),
            None => token_block,
        };
        let diag_block = select_cols(&raw, &diag_cols);
        let mut attr_block = diag_block.hstack(&reduced);
        let lib = if cfg.detector_signals {
            let lib = DetectorLibrary::standard(constraints.to_vec());
            attr_block = attr_block.hstack(&detector_signal_features(g, &lib));
            Some(lib)
        } else {
            None
        };
        let attr_block_dim = attr_block.cols();
        let (gae, x) = if cfg.skip_gae {
            (None, attr_block)
        } else {
            let a = g.adjacency();
            let s_norm = Arc::new(a.sym_normalized_with_self_loops());
            let mut gae = Gae::train(&raw, &a, s_norm, &cfg.gae, rng);
            let struct_block = gae.embed(&raw);
            (Some(gae), attr_block.hstack(&struct_block))
        };
        let pipeline = FeaturePipeline {
            cfg: cfg.clone(),
            pca,
            gae,
            lib,
            token_cols,
            diag_cols,
            attr_dim: attr_block_dim,
        };
        (pipeline, FeatureRepr::new(g, x))
    }

    /// Encodes another graph (typically a polluted clone with the same
    /// topology) using the already-fitted PCA basis and GAE encoder.
    pub fn transform(&mut self, g: &Graph) -> Matrix {
        let raw = attribute_features(g, self.cfg.token_dim);
        let token_block = select_cols(&raw, &self.token_cols);
        let reduced = match &self.pca {
            Some(p) => p.transform(&token_block),
            None => token_block,
        };
        let diag_block = select_cols(&raw, &self.diag_cols);
        let mut attr_block = diag_block.hstack(&reduced);
        if let Some(lib) = &self.lib {
            attr_block = attr_block.hstack(&detector_signal_features(g, lib));
        }
        match &mut self.gae {
            Some(gae) => attr_block.hstack(&gae.embed(&raw)),
            None => attr_block,
        }
    }

    /// Output feature dimensionality.
    pub fn out_dim(&self) -> usize {
        let gae = if self.gae.is_some() {
            self.cfg.gae.embed_dim
        } else {
            0
        };
        self.attr_dim + gae
    }
}

/// The full pipeline: attribute features (PCA-reduced) concatenated with GAE
/// structural embeddings, wrapped into a [`FeatureRepr`].
pub fn featurize(
    g: &Graph,
    constraints: &[Constraint],
    cfg: &FeaturizeConfig,
    rng: &mut Rng,
) -> FeatureRepr {
    FeaturePipeline::fit(g, constraints, cfg, rng).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{prepare, DatasetId};
    use gale_detect::ErrorGenConfig;
    use gale_graph::AttrKind;
    use gale_tensor::distance::euclidean;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..20 {
            let id = g.add_node_with(
                "t",
                &[
                    ("num", AttrKind::Numeric, (i as f64).into()),
                    (
                        "cat",
                        AttrKind::Categorical,
                        ["a", "b"][(i % 2) as usize].into(),
                    ),
                ],
            );
            if i > 0 {
                g.add_edge_named(id - 1, id, "e");
            }
        }
        g
    }

    #[test]
    fn attribute_feature_layout() {
        let g = tiny_graph();
        let x = attribute_features(&g, 8);
        // num: 3 cols; cat: 8 + 4 cols.
        assert_eq!(x.cols(), 3 + 12);
        assert_eq!(x.rows(), 20);
        // Numeric column is z-scored: mean ~ 0.
        let col0 = x.col(0);
        assert!(stats::mean(&col0).abs() < 1e-9);
    }

    #[test]
    fn same_category_closer_than_different() {
        let g = tiny_graph();
        let x = attribute_features(&g, 8);
        // Rows 0 and 2 share "a"; rows 0 and 1 differ; compare only the
        // categorical token block (columns 3..11).
        let block = |r: usize| x.row(r)[3..11].to_vec();
        let same = euclidean(&block(0), &block(2));
        let diff = euclidean(&block(0), &block(1));
        assert!(same < diff, "same {same} diff {diff}");
    }

    #[test]
    fn null_flag_set() {
        let mut g = tiny_graph();
        let cat = g.schema.find_attr("cat").unwrap();
        g.node_mut(3).set(cat, gale_graph::AttrValue::Null);
        let x = attribute_features(&g, 8);
        // The is-null flag sits at offset 3 + 8 within the cat block.
        assert_eq!(x[(3, 3 + 8)], 1.0);
        assert_eq!(x[(4, 3 + 8)], 0.0);
    }

    #[test]
    fn full_pipeline_shapes() {
        let d = prepare(
            DatasetId::MachineLearning,
            0.05,
            &ErrorGenConfig::default(),
            1,
        );
        let mut rng = Rng::seed_from_u64(9);
        let cfg = FeaturizeConfig {
            gae: GaeConfig {
                epochs: 5,
                ..FeaturizeConfig::default().gae
            },
            ..Default::default()
        };
        let fr = featurize(&d.graph, &d.constraints, &cfg, &mut rng);
        assert_eq!(fr.node_count(), d.graph.node_count());
        // 3 attrs x 3 diagnostic scalars + PCA(24 capped by token cols) + GAE.
        assert!(fr.dim() >= 9 + 12);
        assert!(!fr.x.has_non_finite());
    }

    #[test]
    fn skip_gae_gives_attr_block_only() {
        let g = tiny_graph();
        let mut rng = Rng::seed_from_u64(10);
        let cfg = FeaturizeConfig {
            skip_gae: true,
            pca_dim: None,
            detector_signals: false,
            ..Default::default()
        };
        let fr = featurize(&g, &[], &cfg, &mut rng);
        assert_eq!(fr.dim(), attribute_features(&g, cfg.token_dim).cols());
    }

    #[test]
    fn pipeline_transform_matches_fit_output() {
        let g = tiny_graph();
        let mut rng = Rng::seed_from_u64(12);
        let cfg = FeaturizeConfig {
            gae: gale_nn::GaeConfig {
                epochs: 5,
                ..FeaturizeConfig::default().gae
            },
            ..Default::default()
        };
        let (mut pipe, fr) = FeaturePipeline::fit(&g, &[], &cfg, &mut rng);
        // Transforming the same (unchanged) graph reproduces the fit output.
        let x2 = pipe.transform(&g);
        assert!(fr.x.approx_eq(&x2, 1e-9));
        assert_eq!(pipe.out_dim(), fr.dim());
    }

    #[test]
    fn pipeline_transform_shifts_only_changed_rows_attr_block() {
        let g = tiny_graph();
        let mut rng = Rng::seed_from_u64(13);
        let cfg = FeaturizeConfig {
            skip_gae: true,
            pca_dim: None,
            detector_signals: false,
            ..Default::default()
        };
        let (mut pipe, fr) = FeaturePipeline::fit(&g, &[], &cfg, &mut rng);
        let mut polluted = g.clone();
        let cat = polluted.schema.find_attr("cat").unwrap();
        polluted.node_mut(5).set(cat, "zzz".into());
        let x2 = pipe.transform(&polluted);
        // Row 5's categorical block moved; other rows only see second-order
        // effects (frequency tables, neighbor context), which must be far
        // smaller than the direct change.
        let changed = gale_tensor::distance::euclidean(fr.x.row(5), x2.row(5));
        let side_effect = gale_tensor::distance::euclidean(fr.x.row(15), x2.row(15));
        assert!(changed > 0.1, "changed {changed}");
        assert!(
            side_effect < changed / 5.0,
            "side effect {side_effect} vs changed {changed}"
        );
    }

    #[test]
    fn pca_dim_respected() {
        let g = tiny_graph();
        let mut rng = Rng::seed_from_u64(11);
        let cfg = FeaturizeConfig {
            skip_gae: true,
            pca_dim: Some(4),
            detector_signals: false,
            ..Default::default()
        };
        let fr = featurize(&g, &[], &cfg, &mut rng);
        // numeric: 3 diagnostics, categorical: 4, + 4 PCA token dims.
        assert_eq!(fr.dim(), 7 + 4);
    }
}
