//! Train/validation/test folds.
//!
//! The paper randomly partitions nodes into 10 folds: 6 for training
//! examples, 1 for validation, 3 for testing (Section VIII).

use gale_graph::NodeId;
use gale_tensor::Rng;

/// A node-level split of a graph.
#[derive(Debug, Clone)]
pub struct DataSplit {
    /// Training-pool node ids (the paper's `V_T` candidates).
    pub train: Vec<NodeId>,
    /// Validation node ids (early stopping).
    pub val: Vec<NodeId>,
    /// Held-out test node ids (all reported metrics).
    pub test: Vec<NodeId>,
}

impl DataSplit {
    /// Random fold split with the given per-split fold counts out of
    /// `train_folds + val_folds + test_folds` total folds.
    pub fn folds(
        n_nodes: usize,
        train_folds: usize,
        val_folds: usize,
        test_folds: usize,
        rng: &mut Rng,
    ) -> Self {
        let total = train_folds + val_folds + test_folds;
        assert!(total > 0, "DataSplit::folds: zero folds");
        let mut ids: Vec<NodeId> = (0..n_nodes).collect();
        rng.shuffle(&mut ids);
        let train_end = n_nodes * train_folds / total;
        let val_end = n_nodes * (train_folds + val_folds) / total;
        DataSplit {
            train: ids[..train_end].to_vec(),
            val: ids[train_end..val_end].to_vec(),
            test: ids[val_end..].to_vec(),
        }
    }

    /// The paper's 6/1/3 split.
    pub fn paper_default(n_nodes: usize, rng: &mut Rng) -> Self {
        DataSplit::folds(n_nodes, 6, 1, 3, rng)
    }

    /// Total number of nodes across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// `true` when every split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Down-samples the training pool to a fraction `p_t` of the *graph*
    /// (the paper's training-data-ratio knob, Fig. 7(b)); keeps order.
    pub fn with_train_ratio(&self, n_nodes: usize, p_t: f64) -> DataSplit {
        let keep = ((n_nodes as f64 * p_t).round() as usize).min(self.train.len());
        DataSplit {
            train: self.train[..keep].to_vec(),
            val: self.val.clone(),
            test: self.test.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_nodes() {
        let mut rng = Rng::seed_from_u64(1);
        let s = DataSplit::paper_default(1000, &mut rng);
        assert_eq!(s.len(), 1000);
        let mut all: Vec<NodeId> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn paper_ratios_hold() {
        let mut rng = Rng::seed_from_u64(2);
        let s = DataSplit::paper_default(1000, &mut rng);
        assert_eq!(s.train.len(), 600);
        assert_eq!(s.val.len(), 100);
        assert_eq!(s.test.len(), 300);
    }

    #[test]
    fn train_ratio_downsamples() {
        let mut rng = Rng::seed_from_u64(3);
        let s = DataSplit::paper_default(1000, &mut rng);
        let s5 = s.with_train_ratio(1000, 0.05);
        assert_eq!(s5.train.len(), 50);
        assert_eq!(s5.test.len(), 300);
        // Ratio above the pool clamps.
        let s_all = s.with_train_ratio(1000, 0.99);
        assert_eq!(s_all.train.len(), 600);
    }

    #[test]
    fn deterministic_split() {
        let a = DataSplit::paper_default(500, &mut Rng::seed_from_u64(4));
        let b = DataSplit::paper_default(500, &mut Rng::seed_from_u64(4));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn tiny_graph_split() {
        let mut rng = Rng::seed_from_u64(5);
        let s = DataSplit::folds(3, 1, 1, 1, &mut rng);
        assert_eq!(s.len(), 3);
    }
}
