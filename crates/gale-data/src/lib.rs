//! # gale-data
//!
//! Synthetic evaluation data for the GALE reproduction (ICDE 2023): the five
//! Table III dataset analogues (community-structured graphs with minable
//! constraints, numeric distributions, and text attributes), the 6/1/3 fold
//! split, and the feature-engineering pipeline of Section VII.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod featurize;
pub mod generator;
pub mod scale;
pub mod split;
pub mod vocab;

pub use datasets::{prepare, table2_sources, DatasetId, PreparedDataset, SourceGraphInfo};
pub use featurize::{
    attribute_feature_layout, attribute_features, detector_signal_features, featurize,
    FeaturePipeline, FeaturizeConfig,
};
pub use generator::{generate, sbm_edges, AttrSpec, EdgeSink, GeneratedGraph, GraphSpec};
pub use scale::{generate_scale, ScaleGraph, ScaleSpec};
pub use split::DataSplit;
