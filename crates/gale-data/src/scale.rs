//! Streaming million-node SBM generation straight to the on-disk CSR
//! format.
//!
//! The small-graph path ([`crate::generator`]) materializes a [`Graph`]
//! with full attribute records; at 10M edges that is the wrong shape — the
//! scale pipeline only needs the adjacency operator, a feature matrix, and
//! a ground-truth error mask. This module reuses the exact same SBM edge
//! core ([`crate::generator::sbm_edges`]) but sinks each edge (both
//! directions) into row-range bucket spill files, then sorts one bucket at
//! a time into a [`gale_graph::CsrWriter`]. Peak memory is O(nodes) for
//! the community assignment plus one bucket's entries — the 10M-edge list
//! is never held in RAM.
//!
//! Features are community-shifted Gaussians (the attribute analogue of the
//! generator's `NumericByCommunity` spec); planted erroneous nodes draw
//! their features from a *different* community's center plus extra noise,
//! so attribute evidence disagrees with structural community — the error
//! model GALE's discriminator is built to catch.
//!
//! [`Graph`]: gale_graph::Graph

use crate::generator::sbm_edges;
use gale_graph::{CsrStore, CsrWriter};
use gale_tensor::{Matrix, Rng};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Specification for a streaming scale graph.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected SBM edge draws.
    pub edges: usize,
    /// Number of communities.
    pub communities: usize,
    /// Probability an edge stays inside one community.
    pub intra_community_edge_prob: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Fraction of nodes planted as erroneous.
    pub error_rate: f64,
    /// Master seed; everything below derives from it deterministically.
    pub seed: u64,
}

impl ScaleSpec {
    /// A spec with the shared SBM shape (8 communities, 90% intra edges,
    /// 16-dim features, 5% planted errors) at the given size.
    pub fn sized(nodes: usize, edges: usize, seed: u64) -> ScaleSpec {
        ScaleSpec {
            nodes,
            edges,
            communities: 8,
            intra_community_edge_prob: 0.9,
            feature_dim: 16,
            error_rate: 0.05,
            seed,
        }
    }
}

/// A generated scale graph: on-disk adjacency plus in-memory per-node data.
pub struct ScaleGraph {
    /// The symmetric adjacency operator, memory-mapped from disk (values
    /// are duplicate-edge counts, no self-loops).
    pub adjacency: CsrStore,
    /// Path of the on-disk CSR file backing `adjacency`.
    pub adjacency_path: PathBuf,
    /// `communities[v]` is node `v`'s planted community.
    pub communities: Vec<usize>,
    /// `nodes x feature_dim` attribute features.
    pub features: Matrix,
    /// `truth[v]` is true iff node `v` was planted as erroneous.
    pub truth: Vec<bool>,
}

/// Rows per sort bucket: bounds the per-bucket in-RAM entry vector while
/// keeping the bucket count small for 10k-scale specs.
const BUCKET_ROWS: usize = 32 * 1024;

/// An [`crate::generator::EdgeSink`] that spills each directed entry into
/// the bucket file owning its source row.
struct BucketSink {
    writers: Vec<BufWriter<File>>,
    counts: Vec<u64>,
}

impl BucketSink {
    fn spill(&mut self, src: usize, dst: usize) {
        let b = src / BUCKET_ROWS;
        let mut rec = [0u8; 8];
        rec[..4].copy_from_slice(&(src as u32).to_le_bytes());
        rec[4..].copy_from_slice(&(dst as u32).to_le_bytes());
        self.writers[b]
            .write_all(&rec)
            .expect("scale: bucket spill write failed");
        self.counts[b] += 1;
    }
}

/// Generates a scale graph, writing the adjacency to `dir` and returning
/// it memory-mapped. Deterministic in `spec` (including the seed) and
/// independent of thread count. `dir` is created if missing; spill files
/// are removed before returning.
pub fn generate_scale(spec: &ScaleSpec, dir: impl AsRef<Path>) -> io::Result<ScaleGraph> {
    assert!(spec.nodes > 0, "generate_scale: need at least one node");
    assert!(
        spec.nodes <= u32::MAX as usize,
        "generate_scale: bucket records are u32"
    );
    assert!(
        spec.communities > 0,
        "generate_scale: need at least one community"
    );
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let mut rng = Rng::seed_from_u64(spec.seed);
    // Balanced community assignment, shuffled — same scheme as `generate`.
    let mut communities: Vec<usize> = (0..spec.nodes).map(|i| i % spec.communities).collect();
    rng.shuffle(&mut communities);

    // Independent streams so edge volume never shifts the feature draws.
    let mut edge_rng = rng.fork();
    let mut center_rng = rng.fork();
    let mut feat_rng = rng.fork();
    let mut err_rng = rng.fork();

    // 1. Edges: SBM core -> per-row-range bucket spill files (both
    //    directions, so the assembled CSR is symmetric).
    let n_buckets = spec.nodes.div_ceil(BUCKET_ROWS);
    let bucket_path = |b: usize| dir.join(format!("adjacency.bucket{b}.tmp"));
    let mut sink = BucketSink {
        writers: (0..n_buckets)
            .map(|b| File::create(bucket_path(b)).map(BufWriter::new))
            .collect::<io::Result<_>>()?,
        counts: vec![0; n_buckets],
    };
    let mut spill = |a: usize, b: usize| {
        sink.spill(a, b);
        sink.spill(b, a);
    };
    sbm_edges(
        &communities,
        spec.communities,
        spec.edges,
        spec.intra_community_edge_prob,
        &mut edge_rng,
        &mut spill,
    );
    for w in &mut sink.writers {
        w.flush()?;
    }
    drop(sink.writers);

    // 2. Assemble: sort one bucket at a time, merge duplicate entries into
    //    counts (the semantics of `SparseMatrix::from_triplets`), stream
    //    rows — empty ones included — to the page-aligned writer.
    let adjacency_path = dir.join("adjacency.csr");
    let mut writer = CsrWriter::create(&adjacency_path, spec.nodes, spec.nodes)?;
    let mut entries: Vec<(u32, u32)> = Vec::new();
    for b in 0..n_buckets {
        let mut f = File::open(bucket_path(b))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        entries.clear();
        entries.extend(bytes.chunks_exact(8).map(|rec| {
            (
                u32::from_le_bytes(rec[..4].try_into().unwrap()),
                u32::from_le_bytes(rec[4..].try_into().unwrap()),
            )
        }));
        debug_assert_eq!(entries.len() as u64, sink.counts[b]);
        entries.sort_unstable();
        let row_lo = b * BUCKET_ROWS;
        let row_hi = ((b + 1) * BUCKET_ROWS).min(spec.nodes);
        let mut k = 0;
        for r in row_lo..row_hi {
            while k < entries.len() && entries[k].0 as usize == r {
                let col = entries[k].1;
                let mut count = 0u64;
                while k < entries.len() && entries[k] == (r as u32, col) {
                    count += 1;
                    k += 1;
                }
                writer.push(col as usize, count as f64)?;
            }
            writer.finish_row()?;
        }
        debug_assert_eq!(k, entries.len(), "scale: entry outside bucket range");
        std::fs::remove_file(bucket_path(b))?;
    }
    writer.finish()?;

    // 3. Features: community centers ~ N(0, 2) per dim, node features
    //    center + N(0, 1) noise.
    let centers: Vec<Vec<f64>> = (0..spec.communities)
        .map(|_| {
            (0..spec.feature_dim)
                .map(|_| center_rng.gauss() * 2.0)
                .collect()
        })
        .collect();
    let mut features = Matrix::zeros(spec.nodes, spec.feature_dim);
    for v in 0..spec.nodes {
        let center = &centers[communities[v]];
        for d in 0..spec.feature_dim {
            features[(v, d)] = center[d] + feat_rng.gauss();
        }
    }

    // 4. Planted errors: the node keeps its structural community but its
    //    features are redrawn around a different community's center with
    //    inflated noise — attribute/structure disagreement.
    let mut truth = vec![false; spec.nodes];
    for v in 0..spec.nodes {
        if !err_rng.chance(spec.error_rate) {
            continue;
        }
        truth[v] = true;
        let wrong = if spec.communities > 1 {
            let shift = 1 + err_rng.below(spec.communities - 1);
            (communities[v] + shift) % spec.communities
        } else {
            communities[v]
        };
        let center = &centers[wrong];
        for d in 0..spec.feature_dim {
            features[(v, d)] = center[d] + err_rng.gauss() * 2.0;
        }
    }

    let adjacency = CsrStore::open(&adjacency_path)?;
    Ok(ScaleGraph {
        adjacency,
        adjacency_path,
        communities,
        features,
        truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::{NeighborAccess, SparseMatrix};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gale-scale-{}-{name}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    /// Reference path: same RNG schedule, but edges collected in RAM and
    /// assembled with `from_triplets`.
    fn reference_adjacency(spec: &ScaleSpec) -> (Vec<usize>, SparseMatrix) {
        let mut rng = Rng::seed_from_u64(spec.seed);
        let mut communities: Vec<usize> = (0..spec.nodes).map(|i| i % spec.communities).collect();
        rng.shuffle(&mut communities);
        let mut edge_rng = rng.fork();
        let mut triplets = Vec::new();
        let mut sink = |a: usize, b: usize| {
            triplets.push((a, b, 1.0));
            triplets.push((b, a, 1.0));
        };
        sbm_edges(
            &communities,
            spec.communities,
            spec.edges,
            spec.intra_community_edge_prob,
            &mut edge_rng,
            &mut sink,
        );
        (
            communities,
            SparseMatrix::from_triplets(spec.nodes, spec.nodes, triplets),
        )
    }

    #[test]
    fn streamed_adjacency_matches_in_memory_reference() {
        let spec = ScaleSpec {
            nodes: 700,
            edges: 1500,
            communities: 5,
            intra_community_edge_prob: 0.85,
            feature_dim: 6,
            error_rate: 0.1,
            seed: 42,
        };
        let dir = tmp("ref");
        let g = generate_scale(&spec, &dir).unwrap();
        let (communities, want) = reference_adjacency(&spec);
        assert_eq!(g.communities, communities);
        assert_eq!(g.adjacency.rows(), 700);
        assert_eq!(g.adjacency.nnz(), want.nnz());
        for r in 0..spec.nodes {
            let mut got = Vec::new();
            g.adjacency
                .visit_neighbors(r, &mut |c, v| got.push((c, v.to_bits())));
            let w: Vec<(usize, u64)> = want.row_iter(r).map(|(c, v)| (c, v.to_bits())).collect();
            assert_eq!(got, w, "row {r}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ScaleSpec::sized(400, 900, 7);
        let (da, db) = (tmp("det-a"), tmp("det-b"));
        let a = generate_scale(&spec, &da).unwrap();
        let b = generate_scale(&spec, &db).unwrap();
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.adjacency.nnz(), b.adjacency.nnz());
        for v in 0..spec.nodes {
            for d in 0..spec.feature_dim {
                assert_eq!(
                    a.features[(v, d)].to_bits(),
                    b.features[(v, d)].to_bits(),
                    "feature ({v},{d})"
                );
            }
        }
        std::fs::remove_dir_all(&da).unwrap();
        std::fs::remove_dir_all(&db).unwrap();
    }

    #[test]
    fn planted_errors_match_rate_and_shift_features() {
        let spec = ScaleSpec::sized(2000, 4000, 11);
        let dir = tmp("errs");
        let g = generate_scale(&spec, &dir).unwrap();
        let planted = g.truth.iter().filter(|&&t| t).count();
        let expect = (spec.nodes as f64 * spec.error_rate) as usize;
        assert!(
            planted > expect / 2 && planted < expect * 2,
            "planted {planted} vs expected ~{expect}"
        );
        // Erroneous nodes should sit farther from their own community's
        // mean than clean nodes do on average.
        let dim = spec.feature_dim;
        let mut mean = vec![vec![0.0; dim]; spec.communities];
        let mut n = vec![0usize; spec.communities];
        for v in 0..spec.nodes {
            if g.truth[v] {
                continue;
            }
            n[g.communities[v]] += 1;
            for (d, m) in mean[g.communities[v]].iter_mut().enumerate() {
                *m += g.features[(v, d)];
            }
        }
        for c in 0..spec.communities {
            for m in mean[c].iter_mut() {
                *m /= n[c].max(1) as f64;
            }
        }
        let dist = |v: usize| -> f64 {
            let m = &mean[g.communities[v]];
            (0..dim)
                .map(|d| (g.features[(v, d)] - m[d]).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let (mut err_d, mut ok_d, mut err_n, mut ok_n) = (0.0, 0.0, 0, 0);
        for v in 0..spec.nodes {
            if g.truth[v] {
                err_d += dist(v);
                err_n += 1;
            } else {
                ok_d += dist(v);
                ok_n += 1;
            }
        }
        assert!(
            err_d / err_n as f64 > 1.5 * (ok_d / ok_n as f64),
            "planted errors not separable: err {} vs ok {}",
            err_d / err_n as f64,
            ok_d / ok_n as f64
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
