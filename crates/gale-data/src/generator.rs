//! Community-structured synthetic graph generation.
//!
//! The real evaluation graphs (Table III) are unavailable offline, so each is
//! replaced by a generator that controls the properties the algorithms
//! actually depend on: community structure (stochastic-block-model edges),
//! community-correlated categorical attributes, a functional dependency
//! between two attributes (for constraint mining and violation), per-
//! community numeric distributions (for outliers), and free-text names (for
//! string noise). See DESIGN.md's substitution table.

use crate::vocab;
use gale_graph::value::AttrValue;
use gale_graph::{AttrKind, Graph};
use gale_tensor::Rng;

/// How one attribute of the generated node type is produced.
#[derive(Debug, Clone)]
pub enum AttrSpec {
    /// Categorical value tied to the node's community: community `c` draws
    /// uniformly from a per-community slice of `vocab` of width `spread`.
    CategoricalByCommunity {
        /// Attribute name.
        name: String,
        /// The value vocabulary, chunked per community.
        vocab: Vec<String>,
        /// Distinct values available to each community.
        spread: usize,
    },
    /// Categorical value derived deterministically from another categorical
    /// attribute (creates a minable functional dependency): the value is
    /// `vocab[hash(source value) % vocab.len()]`.
    DerivedCategorical {
        /// Attribute name.
        name: String,
        /// Index (into the spec list) of the source attribute.
        source: usize,
        /// The dependent vocabulary.
        vocab: Vec<String>,
    },
    /// Numeric value: `base + community * community_shift + N(0, noise)`.
    NumericByCommunity {
        /// Attribute name.
        name: String,
        /// Global base value.
        base: f64,
        /// Mean shift per community index.
        community_shift: f64,
        /// Gaussian noise standard deviation.
        noise: f64,
    },
    /// Free-text value of `words` tokens drawn from a vocabulary, plus a
    /// unique suffix so names rarely collide.
    TextName {
        /// Attribute name.
        name: String,
        /// Token vocabulary.
        vocab: Vec<String>,
        /// Number of tokens per value.
        words: usize,
    },
}

impl AttrSpec {
    /// The attribute's name.
    pub fn name(&self) -> &str {
        match self {
            AttrSpec::CategoricalByCommunity { name, .. }
            | AttrSpec::DerivedCategorical { name, .. }
            | AttrSpec::NumericByCommunity { name, .. }
            | AttrSpec::TextName { name, .. } => name,
        }
    }

    /// The attribute's schema kind.
    pub fn kind(&self) -> AttrKind {
        match self {
            AttrSpec::CategoricalByCommunity { .. } | AttrSpec::DerivedCategorical { .. } => {
                AttrKind::Categorical
            }
            AttrSpec::NumericByCommunity { .. } => AttrKind::Numeric,
            AttrSpec::TextName { .. } => AttrKind::Text,
        }
    }
}

/// Natural (legitimate) data irregularities. Real graphs contain benign
/// nulls, rare-but-correct values, and heavy-tail numeric extremes — exactly
/// the things that make rule/outlier detectors imprecise in the paper's
/// evaluation. None of these count as errors in the ground truth.
#[derive(Debug, Clone, Copy)]
pub struct NaturalNoise {
    /// Chance an attribute value is legitimately missing.
    pub null_rate: f64,
    /// Chance a categorical value is drawn from the full vocabulary instead
    /// of the community slice (rare but valid).
    pub rare_value_rate: f64,
    /// Chance a numeric value is a legitimate heavy-tail extreme.
    pub extreme_rate: f64,
}

impl Default for NaturalNoise {
    fn default() -> Self {
        NaturalNoise {
            null_rate: 0.005,
            rare_value_rate: 0.03,
            extreme_rate: 0.015,
        }
    }
}

/// Full specification of a synthetic graph.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Name of the single generated node type (e.g. `species`).
    pub node_type: String,
    /// Name of the generated edge type (e.g. `related_to`).
    pub edge_type: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edge records (the SBM draws exactly this many).
    pub edges: usize,
    /// Number of communities.
    pub communities: usize,
    /// Probability an edge stays inside one community.
    pub intra_community_edge_prob: f64,
    /// Attribute specifications, in order.
    pub attrs: Vec<AttrSpec>,
    /// Legitimate irregularities mixed into the data.
    pub noise: NaturalNoise,
}

/// A generated graph together with its community assignment (useful for
/// sanity checks; the detection pipeline never sees it).
#[derive(Debug, Clone)]
pub struct GeneratedGraph {
    /// The clean attributed graph.
    pub graph: Graph,
    /// `communities[v]` is node `v`'s community index.
    pub communities: Vec<usize>,
}

/// Receiver for generated SBM edges. The small-graph path sinks straight
/// into a [`Graph`]; the streaming scale path (`crate::scale`) sinks into
/// on-disk row buckets without materializing an edge list.
pub trait EdgeSink {
    /// Called once per generated edge `(a, b)`, `a != b`.
    fn edge(&mut self, a: usize, b: usize);
}

impl<F: FnMut(usize, usize)> EdgeSink for F {
    fn edge(&mut self, a: usize, b: usize) {
        self(a, b)
    }
}

/// Draws `edges` stochastic-block-model edges over the given community
/// assignment and feeds them to `sink`. With probability `intra_prob` an
/// edge is drawn within one uniformly chosen community, otherwise between
/// two uniform endpoints; self-loops are rejected. Returns the number of
/// edges produced (short only if the rejection guard trips on degenerate
/// specs). The RNG call sequence is part of the determinism contract:
/// every sink sees identical edges for identical `(assignment, rng)`.
pub fn sbm_edges(
    communities: &[usize],
    n_communities: usize,
    edges: usize,
    intra_prob: f64,
    rng: &mut Rng,
    sink: &mut dyn EdgeSink,
) -> usize {
    let nodes = communities.len();
    // Group nodes by community for O(1) intra sampling.
    let mut by_comm: Vec<Vec<usize>> = vec![Vec::new(); n_communities];
    for (v, &c) in communities.iter().enumerate() {
        by_comm[c].push(v);
    }
    let mut made = 0usize;
    let mut guard = 0usize;
    while made < edges && guard < edges * 20 {
        guard += 1;
        let (a, b) = if rng.chance(intra_prob) {
            let c = rng.below(n_communities);
            let members = &by_comm[c];
            if members.len() < 2 {
                continue;
            }
            (*rng.choose(members), *rng.choose(members))
        } else {
            (rng.below(nodes), rng.below(nodes))
        };
        if a == b {
            continue;
        }
        sink.edge(a, b);
        made += 1;
    }
    made
}

/// Stable value hash used for the derived-attribute FD mapping.
fn value_hash(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h as usize
}

/// Generates a graph from a spec, deterministically for a given RNG state.
pub fn generate(spec: &GraphSpec, rng: &mut Rng) -> GeneratedGraph {
    assert!(spec.nodes > 0, "generate: need at least one node");
    assert!(
        spec.communities > 0,
        "generate: need at least one community"
    );
    let mut g = Graph::new();
    let t = g.schema.node_type(&spec.node_type);
    let attr_ids: Vec<_> = spec
        .attrs
        .iter()
        .map(|a| g.schema.attr(a.name(), a.kind()))
        .collect();
    let et = g.schema.edge_type(&spec.edge_type);

    // Community sizes: balanced assignment, shuffled for realism.
    let mut communities: Vec<usize> = (0..spec.nodes).map(|i| i % spec.communities).collect();
    rng.shuffle(&mut communities);

    // Node attributes. Derived attributes are resolved against values
    // produced earlier in the same node, so the FD holds by construction.
    for &c in communities.iter() {
        let mut node = gale_graph::Node::new(t);
        let mut produced: Vec<String> = Vec::with_capacity(spec.attrs.len());
        for (i, a) in spec.attrs.iter().enumerate() {
            let value = match a {
                AttrSpec::CategoricalByCommunity { vocab, spread, .. } => {
                    if rng.chance(spec.noise.rare_value_rate) {
                        // A rare but perfectly valid value.
                        AttrValue::Text(rng.choose(vocab).clone())
                    } else {
                        let spread = (*spread).max(1).min(vocab.len());
                        let start = (c * spread) % vocab.len();
                        let pick = (start + rng.below(spread)) % vocab.len();
                        AttrValue::Text(vocab[pick].clone())
                    }
                }
                AttrSpec::DerivedCategorical { source, vocab, .. } => {
                    assert!(*source < i, "DerivedCategorical must follow its source");
                    let src = &produced[*source];
                    AttrValue::Text(vocab[value_hash(src) % vocab.len()].clone())
                }
                AttrSpec::NumericByCommunity {
                    base,
                    community_shift,
                    noise,
                    ..
                } => {
                    let extreme = if rng.chance(spec.noise.extreme_rate) {
                        // Legitimate heavy-tail draw (2.5-4σ): enough to fool
                        // naive outlier detectors, but milder than injected
                        // outliers (6-10σ) so a learned model can separate.
                        (2.5 + rng.f64() * 1.5) * noise * if rng.chance(0.5) { 1.0 } else { -1.0 }
                    } else {
                        0.0
                    };
                    AttrValue::Float(
                        base + c as f64 * community_shift + rng.gauss() * noise + extreme,
                    )
                }
                AttrSpec::TextName { vocab, words, .. } => {
                    // Names repeat across nodes (like real first/last names
                    // or species binomials), so value dictionaries exist and
                    // misspellings are detectable in principle.
                    let parts: Vec<String> =
                        (0..*words).map(|_| rng.choose(vocab).clone()).collect();
                    AttrValue::Text(parts.join(" "))
                }
            };
            produced.push(value.canonical());
            // Legitimate missing values; the derived-FD source keeps its
            // produced form so dependent attributes stay consistent.
            let stored = if rng.chance(spec.noise.null_rate) {
                AttrValue::Null
            } else {
                value
            };
            node.set(attr_ids[i], stored);
        }
        g.add_node(node);
    }

    // Edges: SBM draw with intra-community bias, shared with the streaming
    // scale path through the sink seam.
    let mut sink = |a: usize, b: usize| {
        g.add_edge(a, b, et);
    };
    sbm_edges(
        &communities,
        spec.communities,
        spec.edges,
        spec.intra_community_edge_prob,
        rng,
        &mut sink,
    );

    GeneratedGraph {
        graph: g,
        communities,
    }
}

/// A convenience spec builder with sensible defaults and the shared Table
/// III shape: one node type, one edge type, FD-carrying attributes.
pub fn species_like_spec(nodes: usize, edges: usize) -> GraphSpec {
    let orders: Vec<String> = vocab::ORDERS.iter().map(|s| s.to_string()).collect();
    let kingdoms: Vec<String> = vocab::KINGDOMS.iter().map(|s| s.to_string()).collect();
    let mut name_vocab: Vec<String> = vocab::GENERA.iter().map(|s| s.to_string()).collect();
    name_vocab.extend(vocab::EPITHETS.iter().map(|s| s.to_string()));
    GraphSpec {
        node_type: "species".into(),
        edge_type: "related_to".into(),
        nodes,
        edges,
        communities: 8,
        intra_community_edge_prob: 0.9,
        noise: NaturalNoise::default(),
        attrs: vec![
            AttrSpec::TextName {
                name: "name".into(),
                vocab: name_vocab,
                words: 2,
            },
            AttrSpec::CategoricalByCommunity {
                name: "order".into(),
                vocab: orders,
                spread: 3,
            },
            AttrSpec::DerivedCategorical {
                name: "kingdom".into(),
                source: 1,
                vocab: kingdoms,
            },
            AttrSpec::NumericByCommunity {
                name: "population".into(),
                base: 1000.0,
                community_shift: 150.0,
                noise: 60.0,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_detect::{discover_constraints, Constraint, DiscoveryConfig};

    #[test]
    fn node_and_edge_counts_match_spec() {
        let spec = species_like_spec(500, 700);
        let gen = generate(&spec, &mut Rng::seed_from_u64(1));
        assert_eq!(gen.graph.node_count(), 500);
        assert_eq!(gen.graph.edge_count(), 700);
        assert_eq!(gen.communities.len(), 500);
    }

    #[test]
    fn attrs_follow_spec_kinds() {
        let spec = species_like_spec(50, 60);
        let gen = generate(&spec, &mut Rng::seed_from_u64(2));
        let g = &gen.graph;
        assert_eq!(
            g.schema.attr_kind(g.schema.find_attr("name").unwrap()),
            AttrKind::Text
        );
        assert_eq!(
            g.schema.attr_kind(g.schema.find_attr("order").unwrap()),
            AttrKind::Categorical
        );
        assert_eq!(
            g.schema
                .attr_kind(g.schema.find_attr("population").unwrap()),
            AttrKind::Numeric
        );
        assert!((g.avg_attrs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn derived_attribute_is_functional() {
        let spec = species_like_spec(400, 500);
        let gen = generate(&spec, &mut Rng::seed_from_u64(3));
        let g = &gen.graph;
        let order = g.schema.find_attr("order").unwrap();
        let kingdom = g.schema.find_attr("kingdom").unwrap();
        let mut map = std::collections::HashMap::new();
        for (_, n) in g.nodes() {
            // Natural nulls are exempt: FD discovery skips null rows too.
            let (Some(ov), Some(kv)) = (n.get(order), n.get(kingdom)) else {
                continue;
            };
            if ov.is_null() || kv.is_null() {
                continue;
            }
            let o = ov.canonical();
            let k = kv.canonical();
            let prev = map.insert(o.clone(), k.clone());
            if let Some(p) = prev {
                assert_eq!(p, k, "FD broken for order {o}");
            }
        }
    }

    #[test]
    fn fd_is_minable() {
        let spec = species_like_spec(600, 800);
        let gen = generate(&spec, &mut Rng::seed_from_u64(4));
        let rules = discover_constraints(&gen.graph, &DiscoveryConfig::default());
        let order = gen.graph.schema.find_attr("order").unwrap();
        let kingdom = gen.graph.schema.find_attr("kingdom").unwrap();
        assert!(
            rules.iter().any(|r| matches!(
                r,
                Constraint::TypeFd { lhs, rhs, .. } if *lhs == order && *rhs == kingdom
            )),
            "order -> kingdom FD not minable"
        );
    }

    #[test]
    fn edges_mostly_intra_community() {
        let spec = species_like_spec(600, 1000);
        let gen = generate(&spec, &mut Rng::seed_from_u64(5));
        let intra = gen
            .graph
            .edges()
            .iter()
            .filter(|e| gen.communities[e.src] == gen.communities[e.dst])
            .count();
        let frac = intra as f64 / gen.graph.edge_count() as f64;
        assert!(frac > 0.8, "intra fraction {frac}");
    }

    #[test]
    fn numeric_attr_shifts_by_community() {
        let spec = species_like_spec(800, 900);
        let gen = generate(&spec, &mut Rng::seed_from_u64(6));
        let g = &gen.graph;
        let pop = g.schema.find_attr("population").unwrap();
        let mean_of = |c: usize| {
            let vals: Vec<f64> = g
                .nodes()
                .filter(|(v, _)| gen.communities[*v] == c)
                .filter_map(|(_, n)| n.get(pop).and_then(AttrValue::as_f64))
                .collect();
            gale_tensor::stats::mean(&vals)
        };
        assert!(mean_of(7) - mean_of(0) > 500.0);
    }

    #[test]
    fn deterministic_generation() {
        let spec = species_like_spec(100, 120);
        let a = generate(&spec, &mut Rng::seed_from_u64(9));
        let b = generate(&spec, &mut Rng::seed_from_u64(9));
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let name = a.graph.schema.find_attr("name").unwrap();
        for v in 0..100 {
            assert_eq!(a.graph.node(v).get(name), b.graph.node(v).get(name));
        }
    }
}
