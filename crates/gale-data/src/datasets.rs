//! The five evaluation datasets of Table III, as synthetic analogues, plus
//! the Table II source-graph metadata they are "induced" from.

use crate::generator::{generate, AttrSpec, GeneratedGraph, GraphSpec, NaturalNoise};
use crate::vocab;
use gale_detect::{
    discover_constraints, inject_errors, Constraint, DiscoveryConfig, ErrorGenConfig, GroundTruth,
};
use gale_graph::Graph;
use gale_tensor::Rng;

/// The five processed graphs of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Species (DBP): 17.7K nodes / 20K edges / 4 attrs.
    Species,
    /// Data Mining (OAG): 11.2K / 12.9K / 3.
    DataMining,
    /// Machine Learning (OAG): 3.4K / 3.3K / 3.
    MachineLearning,
    /// UserGroup1 (Yelp): 3.4K / 2.6K / 3.
    UserGroup1,
    /// UserGroup2 (Yelp): 3.3K / 2.5K / 3.
    UserGroup2,
}

impl DatasetId {
    /// All datasets in Table III/IV order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::Species,
        DatasetId::DataMining,
        DatasetId::MachineLearning,
        DatasetId::UserGroup1,
        DatasetId::UserGroup2,
    ];

    /// The paper's short code (SP/DM/ML/UG1/UG2).
    pub fn code(self) -> &'static str {
        match self {
            DatasetId::Species => "SP",
            DatasetId::DataMining => "DM",
            DatasetId::MachineLearning => "ML",
            DatasetId::UserGroup1 => "UG1",
            DatasetId::UserGroup2 => "UG2",
        }
    }

    /// Full display name as in Table III.
    pub fn display_name(self) -> &'static str {
        match self {
            DatasetId::Species => "Species(DBP)",
            DatasetId::DataMining => "Data Mining(DM:OAG)",
            DatasetId::MachineLearning => "Machine Learning(ML:OAG)",
            DatasetId::UserGroup1 => "UserGroup1(UG1:Yelp)",
            DatasetId::UserGroup2 => "UserGroup2(UG2:Yelp)",
        }
    }

    /// Table III node/edge targets at full scale.
    pub fn full_size(self) -> (usize, usize) {
        match self {
            DatasetId::Species => (17_700, 20_000),
            DatasetId::DataMining => (11_200, 12_900),
            DatasetId::MachineLearning => (3_400, 3_300),
            DatasetId::UserGroup1 => (3_400, 2_600),
            DatasetId::UserGroup2 => (3_300, 2_500),
        }
    }

    /// The graph spec at a given scale factor (1.0 = Table III sizes).
    pub fn spec(self, scale: f64) -> GraphSpec {
        assert!(scale > 0.0, "spec: scale must be positive");
        let (n, e) = self.full_size();
        let nodes = ((n as f64 * scale) as usize).max(64);
        let edges = ((e as f64 * scale) as usize).max(64);
        match self {
            DatasetId::Species => species_spec(nodes, edges),
            DatasetId::DataMining => oag_spec(nodes, edges, "paper_dm", 10),
            DatasetId::MachineLearning => oag_spec(nodes, edges, "paper_ml", 6),
            DatasetId::UserGroup1 => yelp_spec(nodes, edges, "user_g1", 6, 0),
            DatasetId::UserGroup2 => yelp_spec(nodes, edges, "user_g2", 5, 8),
        }
    }
}

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn species_spec(nodes: usize, edges: usize) -> GraphSpec {
    let mut name_vocab = strings(vocab::GENERA);
    name_vocab.extend(strings(vocab::EPITHETS));
    GraphSpec {
        node_type: "species".into(),
        edge_type: "related_to".into(),
        nodes,
        edges,
        communities: 8,
        intra_community_edge_prob: 0.9,
        noise: NaturalNoise::default(),
        attrs: vec![
            AttrSpec::TextName {
                name: "name".into(),
                vocab: name_vocab,
                words: 2,
            },
            AttrSpec::CategoricalByCommunity {
                name: "order".into(),
                vocab: strings(vocab::ORDERS),
                spread: 3,
            },
            AttrSpec::DerivedCategorical {
                name: "kingdom".into(),
                source: 1,
                vocab: strings(vocab::KINGDOMS),
            },
            AttrSpec::NumericByCommunity {
                name: "population".into(),
                base: 1000.0,
                community_shift: 150.0,
                noise: 60.0,
            },
        ],
    }
}

fn oag_spec(nodes: usize, edges: usize, node_type: &str, communities: usize) -> GraphSpec {
    GraphSpec {
        node_type: node_type.into(),
        edge_type: "cites".into(),
        nodes,
        edges,
        communities,
        intra_community_edge_prob: 0.85,
        noise: NaturalNoise::default(),
        attrs: vec![
            AttrSpec::CategoricalByCommunity {
                name: "venue".into(),
                vocab: strings(vocab::VENUES),
                spread: 3,
            },
            AttrSpec::DerivedCategorical {
                name: "field".into(),
                source: 0,
                vocab: strings(vocab::FIELDS),
            },
            AttrSpec::NumericByCommunity {
                name: "citations".into(),
                base: 40.0,
                community_shift: 12.0,
                noise: 8.0,
            },
        ],
    }
}

fn yelp_spec(
    nodes: usize,
    edges: usize,
    node_type: &str,
    communities: usize,
    city_offset: usize,
) -> GraphSpec {
    // Rotate the city vocabulary so UG1 and UG2 live in different cities.
    let mut cities = strings(vocab::CITIES);
    let rot = city_offset % cities.len();
    cities.rotate_left(rot);
    let mut names = strings(vocab::FIRST_NAMES);
    names.extend(strings(vocab::LAST_NAMES));
    GraphSpec {
        node_type: node_type.into(),
        edge_type: "friend_with".into(),
        nodes,
        edges,
        communities,
        intra_community_edge_prob: 0.92,
        noise: NaturalNoise::default(),
        attrs: vec![
            AttrSpec::TextName {
                name: "name".into(),
                vocab: names,
                words: 2,
            },
            AttrSpec::CategoricalByCommunity {
                name: "city".into(),
                vocab: cities,
                spread: 2,
            },
            AttrSpec::NumericByCommunity {
                name: "rating".into(),
                base: 3.5,
                community_shift: 0.15,
                noise: 0.4,
            },
        ],
    }
}

/// Table II: the three source graphs the processed datasets are induced
/// from. Returned as metadata only (the full graphs are never materialized).
#[derive(Debug, Clone)]
pub struct SourceGraphInfo {
    /// Source-graph name.
    pub name: &'static str,
    /// Node count.
    pub nodes: u64,
    /// Edge count.
    pub edges: u64,
    /// Number of node types.
    pub node_types: u32,
    /// Number of edge types.
    pub edge_types: u32,
    /// Average attributes per node.
    pub avg_attrs: u32,
}

/// The Table II rows.
pub fn table2_sources() -> Vec<SourceGraphInfo> {
    vec![
        SourceGraphInfo {
            name: "DBP",
            nodes: 2_200_000,
            edges: 7_400_000,
            node_types: 73,
            edge_types: 584,
            avg_attrs: 4,
        },
        SourceGraphInfo {
            name: "OAG",
            nodes: 600_000,
            edges: 1_700_000,
            node_types: 5,
            edge_types: 6,
            avg_attrs: 2,
        },
        SourceGraphInfo {
            name: "Yelp",
            nodes: 1_500_000,
            edges: 1_600_000,
            node_types: 42,
            edge_types: 20,
            avg_attrs: 5,
        },
    ]
}

/// A fully prepared evaluation dataset: polluted graph, ground truth, and
/// the constraint set Σ mined from the clean graph.
pub struct PreparedDataset {
    /// Which Table III dataset this is.
    pub id: DatasetId,
    /// The polluted graph handed to the detectors.
    pub graph: Graph,
    /// Injection ground truth.
    pub truth: GroundTruth,
    /// Mined rule set Σ (shared by GALE variants, GEDet, VioDet).
    pub constraints: Vec<Constraint>,
    /// Community assignment from the generator (diagnostics only).
    pub communities: Vec<usize>,
}

/// Generates, mines Σ, and pollutes one dataset.
///
/// `scale` shrinks the Table III sizes proportionally (useful for tests and
/// micro-benches); `error_cfg` follows the paper's defaults when
/// `ErrorGenConfig::default()` is passed.
pub fn prepare(
    id: DatasetId,
    scale: f64,
    error_cfg: &ErrorGenConfig,
    seed: u64,
) -> PreparedDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let GeneratedGraph {
        graph: mut g,
        communities,
    } = generate(&id.spec(scale), &mut rng);
    let constraints = discover_constraints(
        &g,
        &DiscoveryConfig {
            min_support: 10,
            min_confidence: 0.8,
            max_domain_size: 32,
        },
    );
    let truth = inject_errors(&mut g, &constraints, error_cfg, &mut rng);
    PreparedDataset {
        id,
        graph: g,
        truth,
        constraints,
        communities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_generate_at_small_scale() {
        for id in DatasetId::ALL {
            let spec = id.spec(0.05);
            let gen = generate(&spec, &mut Rng::seed_from_u64(1));
            assert!(gen.graph.node_count() >= 64, "{id:?} too small");
            assert!(gen.graph.edge_count() >= 64);
        }
    }

    #[test]
    fn full_sizes_match_table3() {
        assert_eq!(DatasetId::Species.full_size(), (17_700, 20_000));
        assert_eq!(DatasetId::MachineLearning.full_size(), (3_400, 3_300));
        assert_eq!(DatasetId::UserGroup2.full_size(), (3_300, 2_500));
    }

    #[test]
    fn avg_attrs_match_table3() {
        for (id, expected) in [
            (DatasetId::Species, 4.0),
            (DatasetId::DataMining, 3.0),
            (DatasetId::UserGroup1, 3.0),
        ] {
            let gen = generate(&id.spec(0.05), &mut Rng::seed_from_u64(2));
            assert!(
                (gen.graph.avg_attrs() - expected).abs() < 1e-9,
                "{id:?}: avg attrs {}",
                gen.graph.avg_attrs()
            );
        }
    }

    #[test]
    fn prepare_injects_default_error_rate() {
        let d = prepare(
            DatasetId::MachineLearning,
            0.3,
            &ErrorGenConfig {
                node_error_rate: 0.05,
                ..Default::default()
            },
            7,
        );
        let rate = d.truth.error_count() as f64 / d.graph.node_count() as f64;
        assert!((rate - 0.05).abs() < 0.03, "rate {rate}");
        assert!(!d.constraints.is_empty(), "no constraints mined");
    }

    #[test]
    fn prepare_is_deterministic() {
        let a = prepare(DatasetId::UserGroup1, 0.1, &ErrorGenConfig::default(), 3);
        let b = prepare(DatasetId::UserGroup1, 0.1, &ErrorGenConfig::default(), 3);
        assert_eq!(a.truth.error_count(), b.truth.error_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn ug1_and_ug2_differ_in_cities() {
        let a = generate(
            &DatasetId::UserGroup1.spec(0.05),
            &mut Rng::seed_from_u64(4),
        );
        let b = generate(
            &DatasetId::UserGroup2.spec(0.05),
            &mut Rng::seed_from_u64(4),
        );
        let city_a = a.graph.schema.find_attr("city").unwrap();
        let city_b = b.graph.schema.find_attr("city").unwrap();
        let ta = a.graph.schema.find_node_type("user_g1").unwrap();
        let tb = b.graph.schema.find_node_type("user_g2").unwrap();
        let ca: std::collections::HashSet<String> =
            a.graph.value_counts(ta, city_a).into_keys().collect();
        let cb: std::collections::HashSet<String> =
            b.graph.value_counts(tb, city_b).into_keys().collect();
        assert_ne!(ca, cb);
    }

    #[test]
    fn table2_rows_present() {
        let rows = table2_sources();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "DBP");
        assert_eq!(rows[0].node_types, 73);
    }
}
