//! Inverted dropout regularization.
//!
//! The paper's G and D both include "regularization layers e.g. dropout
//! layers to prevent overfitting" (Section IV).

use crate::checkpoint::LayerState;
use crate::layer::Layer;
use gale_tensor::{Matrix, Rng};

/// Inverted dropout: during training each unit is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`, so evaluation needs no
/// rescaling.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f64,
    rng: Rng,
    mask: Matrix,
    train_pass: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f64, rng: Rng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "Dropout: p must be in [0,1), got {p}"
        );
        Dropout {
            p,
            rng,
            mask: Matrix::zeros(0, 0),
            train_pass: false,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, train, &mut out);
        out
    }

    fn forward_into(&mut self, x: &Matrix, train: bool, out: &mut Matrix) {
        self.train_pass = train;
        if !train || self.p == 0.0 {
            out.copy_from(x);
            return;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask.resize(x.rows(), x.cols());
        for m in self.mask.data_mut() {
            *m = if self.rng.chance(keep) { scale } else { 0.0 };
        }
        out.copy_from(x);
        for (o, m) in out.data_mut().iter_mut().zip(self.mask.data()) {
            *o *= m;
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        grad_in.copy_from(grad_out);
        if !self.train_pass || self.p == 0.0 {
            return;
        }
        for (g, m) in grad_in.data_mut().iter_mut().zip(self.mask.data()) {
            *g *= m;
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn state(&self) -> Option<LayerState> {
        let (rng_state, cached_gauss) = self.rng.state();
        Some(LayerState::Dropout {
            p: self.p,
            rng_state,
            cached_gauss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, Rng::seed_from_u64(61));
        let x = Matrix::full(3, 3, 2.0);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
        let g = d.backward(&x);
        assert_eq!(g, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, Rng::seed_from_u64(62));
        let x = Matrix::full(100, 100, 1.0);
        let y = d.forward(&x, true);
        let mean = y.sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Surviving entries are scaled by 1/(1-p).
        let survivors: Vec<f64> = y.data().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(survivors.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-12));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, Rng::seed_from_u64(63));
        let x = Matrix::full(10, 10, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Matrix::full(10, 10, 1.0));
        // Zeroed units propagate zero gradient; kept units pass scaled.
        for i in 0..100 {
            assert_eq!(y.data()[i] == 0.0, g.data()[i] == 0.0);
        }
    }

    #[test]
    fn p_zero_is_identity_even_training() {
        let mut d = Dropout::new(0.0, Rng::seed_from_u64(64));
        let x = Matrix::full(4, 4, 3.0);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn p_one_rejected() {
        let _ = Dropout::new(1.0, Rng::seed_from_u64(65));
    }
}
