//! Forward-only, precision-generic inference replicas.
//!
//! Training owns the `f64` layer stack (optimizer state, gradients, RNG
//! streams); serving only ever runs evaluation-mode forwards. This module
//! lowers a trained network into a stripped [`InferNet`] — weights plus
//! the evaluation-mode compute graph, nothing else — generic over the
//! kernel [`Element`], so the same replica type serves both the `f64`
//! reference path and the bandwidth-halved `f32` path.
//!
//! Two contracts, both load-bearing for serving (DESIGN.md §6e):
//!
//! * **f64 parity is bitwise.** `InferNet::<f64>` mirrors the training
//!   stack's evaluation forward operation for operation (same GEMM tiles,
//!   same broadcast order, same scalar activation expressions, batch-norm
//!   folded into the exact per-feature chain evaluation mode computes), so
//!   lowering to `f64` and serving is indistinguishable from serving the
//!   training object itself.
//! * **Lowering is one-way.** `to_f32()` rounds each parameter once
//!   (round-to-nearest); nothing converts back into training state or
//!   checkpoints. The f32 replica is a different, lower-precision — but
//!   still deterministic and thread-count-invariant — function, compared
//!   against f64 by the tolerance-gated precision bench.

use crate::activation::Activation;
use crate::checkpoint::LayerState;
use crate::gae::Gae;
use crate::gcn::{Gcn, GcnLayer};
use crate::mlp::Mlp;
use gale_tensor::{Element, Matrix, SparseMatrix};
use std::sync::Arc;

/// Lowers an `f64` matrix into element type `E` (identity for `f64`,
/// round-to-nearest for `f32`).
fn lower<E: Element>(m: &Matrix) -> Matrix<E> {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for (o, &v) in out.data_mut().iter_mut().zip(m.data()) {
        *o = E::from_f64(v);
    }
    out
}

/// One evaluation-mode layer of an [`InferNet`].
///
/// Only the shapes evaluation mode can reach exist here: dropout lowers to
/// [`InferLayer::Identity`] (eval dropout is a copy), and batch-norm lowers
/// to its folded per-feature affine form.
pub enum InferLayer<E: Element> {
    /// Dense affine layer: `out = x W + b`.
    Linear {
        /// Weights, `in_dim x out_dim`.
        w: Matrix<E>,
        /// Bias row, `1 x out_dim`.
        b: Matrix<E>,
    },
    /// Evaluation-mode batch normalization, pre-folded per feature:
    /// `out = ((x - mean) * std_inv) * gamma + beta` with
    /// `std_inv = 1 / sqrt(var + eps)` computed at lowering time in the
    /// same expression evaluation mode uses, so the f64 replica matches
    /// the live layer bit for bit.
    BatchNorm {
        /// Running mean per feature.
        mean: Vec<E>,
        /// `1 / sqrt(running_var + eps)` per feature.
        std_inv: Vec<E>,
        /// Learned scale per feature.
        gamma: Vec<E>,
        /// Learned shift per feature.
        beta: Vec<E>,
    },
    /// Element-wise activation.
    Activation(Activation),
    /// Pure copy (evaluation-mode dropout).
    Identity,
}

/// A forward-only sequential network over element type `E`, with the same
/// persistent-tap buffer discipline as [`Mlp::forward_inplace`]: steady
/// state inference allocates nothing.
pub struct InferNet<E: Element> {
    layers: Vec<InferLayer<E>>,
    taps: Vec<Matrix<E>>,
}

impl<E: Element> InferNet<E> {
    /// Builds a replica from checkpoint-shape layer snapshots (the output
    /// of [`Mlp::layer_states`]).
    ///
    /// Panics on a `None` snapshot: every layer the serving stack uses
    /// (linear / batch-norm / activation / dropout) snapshots itself, so a
    /// gap means the network contains a layer inference cannot replicate.
    pub fn from_states(states: &[Option<LayerState>]) -> Self {
        let layers = states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let st = st
                    .as_ref()
                    .unwrap_or_else(|| panic!("InferNet: layer {i} has no state snapshot"));
                match st {
                    LayerState::Linear { w, b } => InferLayer::Linear {
                        w: lower(w),
                        b: lower(b),
                    },
                    LayerState::Activation { act } => InferLayer::Activation(*act),
                    LayerState::Dropout { .. } => InferLayer::Identity,
                    LayerState::BatchNorm {
                        gamma,
                        beta,
                        running_mean,
                        running_var,
                        eps,
                        ..
                    } => {
                        let mean: Vec<E> = running_mean.iter().map(|&m| E::from_f64(m)).collect();
                        // Same expression BatchNorm's evaluation mode
                        // computes per feature; for E = f64 the bits match.
                        let std_inv: Vec<E> = running_var
                            .iter()
                            .map(|&v| E::ONE / (E::from_f64(v) + E::from_f64(*eps)).sqrt())
                            .collect();
                        let gamma: Vec<E> = gamma.row(0).iter().map(|&g| E::from_f64(g)).collect();
                        let beta: Vec<E> = beta.row(0).iter().map(|&b| E::from_f64(b)).collect();
                        InferLayer::BatchNorm {
                            mean,
                            std_inv,
                            gamma,
                            beta,
                        }
                    }
                }
            })
            .collect::<Vec<_>>();
        let depth = layers.len().max(1);
        InferNet {
            layers,
            taps: (0..depth).map(|_| Matrix::zeros(0, 0)).collect(),
        }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Output of layer `i` from the most recent forward pass (the
    /// embedding tap, mirroring [`Mlp::tap`]).
    pub fn tap(&self, i: usize) -> &Matrix<E> {
        &self.taps[i]
    }

    /// Evaluation forward returning a borrow of the final tap; persistent
    /// buffers, no steady-state allocation — the inference analogue of
    /// [`Mlp::forward_inplace`] with `train = false`.
    pub fn forward_inplace(&mut self, x: &Matrix<E>) -> &Matrix<E> {
        if self.layers.is_empty() {
            self.taps[0].copy_from(x);
            return &self.taps[0];
        }
        for i in 0..self.layers.len() {
            let (prev, cur) = self.taps.split_at_mut(i);
            let input: &Matrix<E> = if i == 0 { x } else { &prev[i - 1] };
            let out = &mut cur[0];
            match &self.layers[i] {
                InferLayer::Linear { w, b } => {
                    x_linear(input, w, b, out);
                }
                InferLayer::BatchNorm {
                    mean,
                    std_inv,
                    gamma,
                    beta,
                } => {
                    out.copy_from(input);
                    let cols = out.cols();
                    for row in 0..out.rows() {
                        let r = out.row_mut(row);
                        for c in 0..cols {
                            r[c] = ((r[c] - mean[c]) * std_inv[c]) * gamma[c] + beta[c];
                        }
                    }
                }
                InferLayer::Activation(act) => {
                    out.copy_from(input);
                    for v in out.data_mut() {
                        *v = act.apply_e(*v);
                    }
                }
                InferLayer::Identity => {
                    out.copy_from(input);
                }
            }
        }
        self.taps.last().expect("taps sized at construction")
    }
}

/// `out = x W + b`, the evaluation path of `Linear::forward_into` without
/// the training-only input cache.
fn x_linear<E: Element>(x: &Matrix<E>, w: &Matrix<E>, b: &Matrix<E>, out: &mut Matrix<E>) {
    x.matmul_into(w, out);
    out.add_row_broadcast(b.row(0));
}

impl Mlp {
    /// Lowers this network into a forward-only replica over element `E`.
    /// `to_infer::<f64>()` is the bitwise-parity reference; see the module
    /// docs for the contract.
    pub fn to_infer<E: Element>(&self) -> InferNet<E> {
        InferNet::from_states(&self.layer_states())
    }

    /// One-way lowering to the `f32` inference replica.
    pub fn to_f32(&self) -> InferNet<f32> {
        self.to_infer::<f32>()
    }
}

/// One lowered graph-convolution layer: `out = act(S X W + b)` with the
/// shared `f64` CSR operator lowered at accumulate time (see
/// [`SparseMatrix::spmm_lowered_into`]).
struct GcnInferLayer<E: Element> {
    s: Arc<SparseMatrix>,
    w: Matrix<E>,
    b: Matrix<E>,
    act: Activation,
    sx: Matrix<E>,
}

impl<E: Element> GcnInferLayer<E> {
    fn from_layer(l: &GcnLayer) -> Self {
        GcnInferLayer {
            s: l.s.clone(),
            w: lower(&l.w),
            b: lower(&l.b),
            act: l.act,
            sx: Matrix::zeros(0, 0),
        }
    }

    fn forward_into(&mut self, x: &Matrix<E>, out: &mut Matrix<E>) {
        self.s.spmm_lowered_into(x, &mut self.sx);
        x_linear(&self.sx, &self.w, &self.b, out);
        for v in out.data_mut() {
            *v = self.act.apply_e(*v);
        }
    }
}

/// Forward-only replica of the two-layer [`Gcn`].
pub struct GcnInfer<E: Element> {
    layer1: GcnInferLayer<E>,
    layer2: GcnInferLayer<E>,
    hidden: Matrix<E>,
}

impl<E: Element> GcnInfer<E> {
    /// Evaluation forward `out = act2(S act1(S X W1 + b1) W2 + b2)`.
    pub fn forward_into(&mut self, x: &Matrix<E>, out: &mut Matrix<E>) {
        self.layer1.forward_into(x, &mut self.hidden);
        self.layer2.forward_into(&self.hidden, out);
    }

    /// The layer-1 activations from the most recent forward (the GAE
    /// embedding surface).
    pub fn hidden(&self) -> &Matrix<E> {
        &self.hidden
    }
}

impl Gcn {
    /// Lowers the encoder into a forward-only replica over element `E`.
    pub fn to_infer<E: Element>(&self) -> GcnInfer<E> {
        GcnInfer {
            layer1: GcnInferLayer::from_layer(&self.layer1),
            layer2: GcnInferLayer::from_layer(&self.layer2),
            hidden: Matrix::zeros(0, 0),
        }
    }

    /// One-way lowering to the `f32` inference replica.
    pub fn to_f32(&self) -> GcnInfer<f32> {
        self.to_infer::<f32>()
    }
}

/// Forward-only replica of a trained [`Gae`]: the encoder alone, since
/// serving only ever needs embeddings (the decoder is a training loss).
pub struct GaeInfer<E: Element> {
    encoder: GcnInfer<E>,
}

impl<E: Element> GaeInfer<E> {
    /// Embeddings `Z = encoder(X)`.
    pub fn embed_into(&mut self, x: &Matrix<E>, z: &mut Matrix<E>) {
        self.encoder.forward_into(x, z);
    }
}

impl Gae {
    /// Lowers the trained encoder into a forward-only replica over `E`.
    pub fn to_infer<E: Element>(&self) -> GaeInfer<E> {
        GaeInfer {
            encoder: self.encoder.to_infer::<E>(),
        }
    }

    /// One-way lowering to the `f32` inference replica.
    pub fn to_f32(&self) -> GaeInfer<f32> {
        self.to_infer::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::Rng;

    /// An Mlp with every lowerable layer kind: Linear, BatchNorm (with
    /// non-trivial running stats from a few training-mode passes),
    /// LeakyRelu activations, and Dropout.
    fn trained_stack(rng: &mut Rng) -> Mlp {
        let mut net = Mlp::dense(&[7, 11, 5, 3], Activation::LeakyRelu, true, 0.3, rng);
        for step in 0..4 {
            let x = Matrix::randn(9, 7, 1.0 + step as f64 * 0.25, rng);
            net.forward_inplace(&x, true);
        }
        net
    }

    #[test]
    fn f64_replica_matches_eval_forward_bitwise() {
        let mut rng = Rng::seed_from_u64(42);
        let mut net = trained_stack(&mut rng);
        let mut replica = net.to_infer::<f64>();
        for trial in 0..3 {
            let x = Matrix::randn(6, 7, 2.0, &mut rng);
            let want = net.forward_inplace(&x, false).clone();
            let got = replica.forward_inplace(&x);
            assert_eq!(got.shape(), want.shape());
            for (g, w) in got.data().iter().zip(want.data()) {
                assert_eq!(g.to_bits(), w.to_bits(), "trial {trial}");
            }
        }
    }

    #[test]
    fn f32_replica_tracks_f64_within_single_precision() {
        let mut rng = Rng::seed_from_u64(43);
        let net = trained_stack(&mut rng);
        let mut r64 = net.to_infer::<f64>();
        let mut r32 = net.to_f32();
        let x = Matrix::randn(8, 7, 1.5, &mut rng);
        let y64 = r64.forward_inplace(&x).clone();
        let y32 = r32.forward_inplace(&x.to_f32()).clone();
        for (a, b) in y32.data().iter().zip(y64.data()) {
            let scale = 1.0 + b.abs();
            assert!((*a as f64 - b).abs() <= 1e-4 * scale, "f32 {a} vs f64 {b}");
        }
    }

    #[test]
    fn gcn_f64_replica_matches_eval_forward_bitwise() {
        use crate::layer::Layer;
        let mut rng = Rng::seed_from_u64(7);
        let s = Arc::new(SparseMatrix::from_triplets(
            5,
            5,
            [
                (0, 0, 0.5),
                (0, 1, 0.5),
                (1, 0, 0.3),
                (1, 1, 0.7),
                (2, 2, 1.0),
                (3, 3, 0.9),
                (3, 4, 0.1),
                (4, 4, 1.0),
            ],
        ));
        let mut gcn = Gcn::new(s, 4, 6, 3, crate::activation::Activation::Sigmoid, &mut rng);
        let x = Matrix::randn(5, 4, 1.0, &mut rng);
        let mut want = Matrix::zeros(0, 0);
        gcn.forward_into(&x, false, &mut want);
        let mut replica = gcn.to_infer::<f64>();
        let mut got = Matrix::zeros(0, 0);
        replica.forward_into(&x, &mut got);
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.data().iter().zip(want.data()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        // Hidden tap must match the training object's hidden activations.
        for (g, w) in replica.hidden().data().iter().zip(gcn.hidden().data()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn f32_forward_is_thread_count_invariant() {
        use gale_tensor::par::with_threads;
        let mut rng = Rng::seed_from_u64(77);
        let net = trained_stack(&mut rng);
        let x = Matrix::randn(33, 7, 1.0, &mut rng).to_f32();
        let want: Vec<u32> = with_threads(1, || {
            let mut r = net.to_f32();
            r.forward_inplace(&x)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        });
        for threads in [2usize, 8] {
            let got: Vec<u32> = with_threads(threads, || {
                let mut r = net.to_f32();
                r.forward_inplace(&x)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            });
            assert_eq!(got, want, "threads {threads}");
        }
    }
}
