//! The layer abstraction shared by all manual-gradient networks.
//!
//! Layers cache whatever they need during `forward` and return input
//! gradients from `backward`; optimizers visit `(parameter, gradient)` pairs
//! in a stable order through [`Layer::visit_params`].

use crate::checkpoint::LayerState;
use gale_tensor::Matrix;

/// A differentiable network layer with manually implemented backprop.
///
/// `Send` is a supertrait so whole models can move into a serving thread;
/// every layer is plain owned data, so the bound costs implementors nothing.
pub trait Layer: Send {
    /// Forward pass. `train` enables stochastic behaviour (dropout) and
    /// batch statistics (batch norm).
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Backward pass: receives dL/d(output), returns dL/d(input), and
    /// accumulates dL/d(params) internally.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// [`Layer::forward`] writing into a caller-owned buffer, so training
    /// loops can reuse activation storage across steps. The default
    /// delegates to `forward` and copies; hot layers override it with a
    /// genuinely allocation-free path. Results are bitwise identical to
    /// `forward` either way.
    fn forward_into(&mut self, x: &Matrix, train: bool, out: &mut Matrix) {
        out.copy_from(&self.forward(x, train));
    }

    /// [`Layer::backward`] writing into a caller-owned gradient buffer.
    /// Same contract as [`Layer::forward_into`].
    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        grad_in.copy_from(&self.backward(grad_out));
    }

    /// Visits every `(param, grad)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Serializable snapshot of this layer for checkpointing, or `None` for
    /// layer types without checkpoint support (the default).
    fn state(&self) -> Option<LayerState> {
        None
    }

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.scale_inplace(0.0));
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.rows() * p.cols());
        n
    }
}

/// Numerically checks a layer's input gradient with central differences.
///
/// Returns the maximum absolute error between analytic and numeric gradients
/// of the scalar loss `0.5 * ||forward(x)||^2`. Test helper only.
pub fn input_gradient_error(layer: &mut dyn Layer, x: &Matrix, eps: f64) -> f64 {
    // Analytic: dL/dx = backward(forward(x)) since dL/dy = y for this loss.
    let y = layer.forward(x, false);
    let analytic = layer.backward(&y);

    let mut max_err = 0.0f64;
    let mut xp = x.clone();
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let orig = xp[(r, c)];
            xp[(r, c)] = orig + eps;
            let lp = 0.5
                * layer
                    .forward(&xp, false)
                    .data()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            xp[(r, c)] = orig - eps;
            let lm = 0.5
                * layer
                    .forward(&xp, false)
                    .data()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            xp[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic[(r, c)]).abs());
        }
    }
    max_err
}
