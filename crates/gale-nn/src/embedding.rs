//! Deterministic feature-hashing token embeddings.
//!
//! The paper uses pretrained word embeddings (AllenNLP) to encode attribute
//! tokens. Offline, we substitute *hash embeddings*: each token's embedding
//! is a fixed pseudo-random Gaussian vector seeded by the token's hash.
//! Similar *sets* of tokens therefore produce similar averaged vectors, which
//! is the property the downstream pipeline actually relies on (nodes sharing
//! attribute values land close together), while requiring no external model.

use gale_tensor::{Matrix, Rng};

/// A deterministic token-to-vector embedder.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    salt: u64,
}

/// FNV-1a, stable across platforms (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl HashEmbedder {
    /// Creates an embedder with the given output dimensionality and salt
    /// (the salt lets distinct attribute namespaces use distinct bases).
    pub fn new(dim: usize, salt: u64) -> Self {
        assert!(dim > 0, "HashEmbedder: dim must be positive");
        HashEmbedder { dim, salt }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding vector of a single token (unit-variance Gaussian
    /// entries scaled by 1/sqrt(dim) so token vectors have ~unit norm).
    pub fn embed_token(&self, token: &str) -> Vec<f64> {
        let seed = fnv1a(token.as_bytes()) ^ self.salt;
        let mut rng = Rng::seed_from_u64(seed);
        let scale = 1.0 / (self.dim as f64).sqrt();
        (0..self.dim).map(|_| rng.gauss() * scale).collect()
    }

    /// The mean embedding of a token sequence; the zero vector when empty.
    pub fn embed_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim];
        if tokens.is_empty() {
            return acc;
        }
        for t in tokens {
            for (a, e) in acc.iter_mut().zip(self.embed_token(t.as_ref())) {
                *a += e;
            }
        }
        let inv = 1.0 / tokens.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Embeds a batch of token sequences into an `n x dim` matrix.
    pub fn embed_batch<S: AsRef<str>>(&self, sequences: &[Vec<S>]) -> Matrix {
        let mut out = Matrix::zeros(sequences.len(), self.dim);
        for (r, seq) in sequences.iter().enumerate() {
            out.set_row(r, &self.embed_tokens(seq));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::distance::{cosine_similarity, l2_norm};

    #[test]
    fn deterministic_across_instances() {
        let a = HashEmbedder::new(16, 7).embed_token("film");
        let b = HashEmbedder::new(16, 7).embed_token("film");
        assert_eq!(a, b);
    }

    #[test]
    fn salt_separates_namespaces() {
        let a = HashEmbedder::new(16, 1).embed_token("film");
        let b = HashEmbedder::new(16, 2).embed_token("film");
        assert!(cosine_similarity(&a, &b).abs() < 0.7);
    }

    #[test]
    fn distinct_tokens_nearly_orthogonal() {
        let e = HashEmbedder::new(64, 0);
        let a = e.embed_token("avengers");
        let b = e.embed_token("species");
        assert!(cosine_similarity(&a, &b).abs() < 0.4);
    }

    #[test]
    fn token_vectors_near_unit_norm() {
        let e = HashEmbedder::new(128, 3);
        let n = l2_norm(&e.embed_token("anything"));
        assert!((n - 1.0).abs() < 0.3, "norm {n}");
    }

    #[test]
    fn overlapping_sequences_more_similar() {
        let e = HashEmbedder::new(64, 0);
        let a = e.embed_tokens(&["avengers", "infinity", "war"]);
        let b = e.embed_tokens(&["avengers", "infinity", "stones"]);
        let c = e.embed_tokens(&["plumber", "yelp", "review"]);
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
        assert!(cosine_similarity(&a, &b) > 0.4);
    }

    #[test]
    fn empty_sequence_is_zero() {
        let e = HashEmbedder::new(8, 0);
        let z = e.embed_tokens::<&str>(&[]);
        assert_eq!(z, vec![0.0; 8]);
    }

    #[test]
    fn batch_matches_single() {
        let e = HashEmbedder::new(8, 0);
        let batch = e.embed_batch(&[vec!["a", "b"], vec!["c"]]);
        assert_eq!(batch.row(0), e.embed_tokens(&["a", "b"]).as_slice());
        assert_eq!(batch.row(1), e.embed_tokens(&["c"]).as_slice());
    }
}
