//! Versioned, self-describing model checkpoints over `gale-json`.
//!
//! A checkpoint is a single JSON document carrying an envelope
//! (`format`/`version`/`kind`) followed by the model body: layer topology,
//! hyperparameters, and parameter tensors. Tensors, running statistics, and
//! RNG state are stored bit-exactly via [`gale_json::hexfloat`] (16 hex
//! digits per `f64`); scalar hyperparameters use decimal JSON numbers, which
//! also round-trip exactly (shortest-representation printing plus
//! correctly-rounded parsing). Serialization is deterministic — objects keep
//! insertion order — so `save → load → save` reproduces the file
//! byte-for-byte.
//!
//! Loading never panics on bad input: corrupt, truncated, or
//! version-mismatched files surface as a typed [`CkptError`].
//!
//! What is captured per model:
//!
//! * **MLP** — every layer's type and parameters, including batch-norm
//!   running statistics and the dropout RNG stream, so a restored network
//!   both evaluates and *trains* bit-identically to the original.
//! * **Adam** — betas, step count, and first/second moment tensors in
//!   `visit_params` order, so optimization resumes exactly.
//! * **GCN / GAE** — weight tensors and activations. The graph operator `S`
//!   is *not* serialized (it belongs to the dataset, not the model); loaders
//!   take it as an argument.

use crate::activation::{Activation, ActivationLayer};
use crate::batchnorm::BatchNorm;
use crate::dropout::Dropout;
use crate::gae::Gae;
use crate::gcn::{Gcn, GcnLayer};
use crate::layer::Layer;
use crate::linear::Linear;
use crate::mlp::Mlp;
use crate::optim::Adam;
use gale_json::{json, Map, Value};
use gale_tensor::{Matrix, Rng, SparseMatrix};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Magic string identifying a gale checkpoint document.
pub const FORMAT_NAME: &str = "gale-checkpoint";

/// Current (and only) supported checkpoint format version.
pub const FORMAT_VERSION: i64 = 1;

/// Why a checkpoint could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Filesystem read/write failure.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error, stringified.
        detail: String,
    },
    /// The file is not valid JSON (corrupt or truncated).
    Parse(String),
    /// The document is JSON but not a gale checkpoint.
    Format(String),
    /// The checkpoint was written by an unsupported format version.
    Version {
        /// Version found in the file.
        found: i64,
        /// Version this build supports.
        supported: i64,
    },
    /// The checkpoint holds a different model kind than requested.
    Kind {
        /// Kind the caller asked for.
        expected: String,
        /// Kind recorded in the file.
        found: String,
    },
    /// The document matches the envelope but a body field is missing,
    /// mistyped, or inconsistent.
    Schema(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, detail } => write!(f, "checkpoint io error at {path}: {detail}"),
            CkptError::Parse(msg) => write!(f, "checkpoint is not valid JSON: {msg}"),
            CkptError::Format(msg) => write!(f, "not a gale checkpoint: {msg}"),
            CkptError::Version { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {supported})"
            ),
            CkptError::Kind { expected, found } => write!(
                f,
                "checkpoint holds a {found:?} model, expected {expected:?}"
            ),
            CkptError::Schema(msg) => write!(f, "malformed checkpoint body: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

/// Looks up a required object field, or a [`CkptError::Schema`].
pub fn need<'a>(v: &'a Value, key: &str) -> Result<&'a Value, CkptError> {
    v.get(key)
        .ok_or_else(|| CkptError::Schema(format!("missing field `{key}`")))
}

/// Required non-negative integer field.
pub fn need_usize(v: &Value, key: &str) -> Result<usize, CkptError> {
    need(v, key)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| CkptError::Schema(format!("field `{key}` must be a non-negative integer")))
}

/// Required numeric field.
pub fn need_f64(v: &Value, key: &str) -> Result<f64, CkptError> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| CkptError::Schema(format!("field `{key}` must be a number")))
}

/// Required string field.
pub fn need_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, CkptError> {
    need(v, key)?
        .as_str()
        .ok_or_else(|| CkptError::Schema(format!("field `{key}` must be a string")))
}

/// Required array field.
pub fn need_array<'a>(v: &'a Value, key: &str) -> Result<&'a Vec<Value>, CkptError> {
    need(v, key)?
        .as_array()
        .ok_or_else(|| CkptError::Schema(format!("field `{key}` must be an array")))
}

/// Required bit-exact f64 array field (see [`gale_json::hexfloat`]).
pub fn need_f64s(v: &Value, key: &str) -> Result<Vec<f64>, CkptError> {
    gale_json::decode_f64s(need(v, key)?)
        .map_err(|e| CkptError::Schema(format!("field `{key}`: {e}")))
}

fn u64_to_hex(w: u64) -> Value {
    Value::Str(format!("{w:016x}"))
}

fn u64_from_hex(v: &Value, what: &str) -> Result<u64, CkptError> {
    let s = v
        .as_str()
        .ok_or_else(|| CkptError::Schema(format!("{what} must be a hex string")))?;
    u64::from_str_radix(s, 16).map_err(|e| CkptError::Schema(format!("{what}: bad hex {s:?}: {e}")))
}

// ---------------------------------------------------------------------------
// Tensor codec
// ---------------------------------------------------------------------------

/// Encodes a matrix as `{rows, cols, bits}` with bit-exact hex values.
pub fn tensor_to_json(m: &Matrix) -> Value {
    json!({
        "rows": m.rows(),
        "cols": m.cols(),
        "bits": gale_json::encode_f64s(m.data()),
    })
}

/// Decodes a matrix written by [`tensor_to_json`].
pub fn tensor_from_json(v: &Value) -> Result<Matrix, CkptError> {
    let rows = need_usize(v, "rows")?;
    let cols = need_usize(v, "cols")?;
    let data = need_f64s(v, "bits")?;
    let expect = rows
        .checked_mul(cols)
        .ok_or_else(|| CkptError::Schema(format!("tensor shape {rows}x{cols} overflows")))?;
    if data.len() != expect {
        return Err(CkptError::Schema(format!(
            "tensor shape {rows}x{cols} wants {expect} values, found {}",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

// ---------------------------------------------------------------------------
// Layer states
// ---------------------------------------------------------------------------

/// Owned, serializable snapshot of one layer's full state.
///
/// Produced by [`Layer::state`] and turned back into a live layer by
/// [`layer_from_state`]; the JSON codec between the two is
/// [`layer_state_to_json`] / [`layer_state_from_json`].
#[derive(Debug, Clone)]
pub enum LayerState {
    /// A dense layer's weights and bias.
    Linear {
        /// Weight matrix, `in_dim x out_dim`.
        w: Matrix,
        /// Bias row, `1 x out_dim`.
        b: Matrix,
    },
    /// An element-wise activation.
    Activation {
        /// Which function.
        act: Activation,
    },
    /// Inverted dropout, including the RNG stream so training resumes on
    /// the exact mask sequence.
    Dropout {
        /// Drop probability.
        p: f64,
        /// xoshiro256++ state words.
        rng_state: [u64; 4],
        /// Cached second Box-Muller deviate, if one is pending.
        cached_gauss: Option<f64>,
    },
    /// Batch normalization with learned scale/shift and running statistics.
    BatchNorm {
        /// Learned per-feature scale, `1 x d`.
        gamma: Matrix,
        /// Learned per-feature shift, `1 x d`.
        beta: Matrix,
        /// Running mean used in evaluation mode.
        running_mean: Vec<f64>,
        /// Running variance used in evaluation mode.
        running_var: Vec<f64>,
        /// Running-statistics momentum.
        momentum: f64,
        /// Variance floor added before the square root.
        eps: f64,
    },
}

/// Serializes a layer snapshot as a tagged JSON object.
pub fn layer_state_to_json(st: &LayerState) -> Value {
    match st {
        LayerState::Linear { w, b } => json!({
            "type": "linear",
            "w": tensor_to_json(w),
            "b": tensor_to_json(b),
        }),
        LayerState::Activation { act } => json!({
            "type": "activation",
            "act": act.name(),
        }),
        LayerState::Dropout {
            p,
            rng_state,
            cached_gauss,
        } => {
            let rng: Vec<Value> = rng_state.iter().map(|&w| u64_to_hex(w)).collect();
            json!({
                "type": "dropout",
                "p": *p,
                "rng": rng,
                "gauss": match cached_gauss {
                    Some(g) => gale_json::encode_f64s(&[*g]),
                    None => Value::Null,
                },
            })
        }
        LayerState::BatchNorm {
            gamma,
            beta,
            running_mean,
            running_var,
            momentum,
            eps,
        } => json!({
            "type": "batchnorm",
            "gamma": tensor_to_json(gamma),
            "beta": tensor_to_json(beta),
            "running_mean": gale_json::encode_f64s(running_mean),
            "running_var": gale_json::encode_f64s(running_var),
            "momentum": *momentum,
            "eps": *eps,
        }),
    }
}

/// Parses a layer snapshot written by [`layer_state_to_json`].
pub fn layer_state_from_json(v: &Value) -> Result<LayerState, CkptError> {
    match need_str(v, "type")? {
        "linear" => {
            let w = tensor_from_json(need(v, "w")?)?;
            let b = tensor_from_json(need(v, "b")?)?;
            if b.rows() != 1 || b.cols() != w.cols() {
                return Err(CkptError::Schema(format!(
                    "linear bias shape {:?} does not match weights {:?}",
                    b.shape(),
                    w.shape()
                )));
            }
            Ok(LayerState::Linear { w, b })
        }
        "activation" => {
            let name = need_str(v, "act")?;
            let act = Activation::from_name(name)
                .ok_or_else(|| CkptError::Schema(format!("unknown activation {name:?}")))?;
            Ok(LayerState::Activation { act })
        }
        "dropout" => {
            let p = need_f64(v, "p")?;
            if !(0.0..1.0).contains(&p) {
                return Err(CkptError::Schema(format!(
                    "dropout p must be in [0,1), got {p}"
                )));
            }
            let words = need_array(v, "rng")?;
            if words.len() != 4 {
                return Err(CkptError::Schema(format!(
                    "dropout rng state wants 4 words, found {}",
                    words.len()
                )));
            }
            let mut rng_state = [0u64; 4];
            for (slot, w) in rng_state.iter_mut().zip(words) {
                *slot = u64_from_hex(w, "dropout rng word")?;
            }
            let cached_gauss = match need(v, "gauss")? {
                Value::Null => None,
                other => {
                    let vals = gale_json::decode_f64s(other)
                        .map_err(|e| CkptError::Schema(format!("dropout gauss: {e}")))?;
                    match vals.as_slice() {
                        [g] => Some(*g),
                        _ => {
                            return Err(CkptError::Schema(
                                "dropout gauss must hold exactly one value".into(),
                            ))
                        }
                    }
                }
            };
            Ok(LayerState::Dropout {
                p,
                rng_state,
                cached_gauss,
            })
        }
        "batchnorm" => {
            let gamma = tensor_from_json(need(v, "gamma")?)?;
            let beta = tensor_from_json(need(v, "beta")?)?;
            let running_mean = need_f64s(v, "running_mean")?;
            let running_var = need_f64s(v, "running_var")?;
            let d = gamma.cols();
            if gamma.rows() != 1
                || beta.shape() != (1, d)
                || running_mean.len() != d
                || running_var.len() != d
            {
                return Err(CkptError::Schema(format!(
                    "batchnorm shapes disagree (gamma {:?}, beta {:?}, mean {}, var {})",
                    gamma.shape(),
                    beta.shape(),
                    running_mean.len(),
                    running_var.len()
                )));
            }
            Ok(LayerState::BatchNorm {
                gamma,
                beta,
                running_mean,
                running_var,
                momentum: need_f64(v, "momentum")?,
                eps: need_f64(v, "eps")?,
            })
        }
        other => Err(CkptError::Schema(format!("unknown layer type {other:?}"))),
    }
}

/// Rebuilds a live layer from a snapshot.
pub fn layer_from_state(st: LayerState) -> Box<dyn Layer> {
    match st {
        LayerState::Linear { w, b } => Box::new(Linear::from_parts(w, b)),
        LayerState::Activation { act } => Box::new(ActivationLayer::new(act)),
        LayerState::Dropout {
            p,
            rng_state,
            cached_gauss,
        } => Box::new(Dropout::new(p, Rng::from_state(rng_state, cached_gauss))),
        LayerState::BatchNorm {
            gamma,
            beta,
            running_mean,
            running_var,
            momentum,
            eps,
        } => Box::new(BatchNorm::from_parts(
            gamma,
            beta,
            running_mean,
            running_var,
            momentum,
            eps,
        )),
    }
}

// ---------------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------------

/// Serializes an MLP body: `{"layers": [...]}` in stack order.
///
/// Fails if any layer type lacks checkpoint support ([`Layer::state`]
/// returns `None`).
pub fn mlp_to_json(mlp: &Mlp) -> Result<Value, CkptError> {
    let mut layers = Vec::new();
    for (i, st) in mlp.layer_states().into_iter().enumerate() {
        match st {
            Some(st) => layers.push(layer_state_to_json(&st)),
            None => {
                return Err(CkptError::Schema(format!(
                    "layer {i} has no checkpoint support"
                )))
            }
        }
    }
    Ok(json!({ "layers": layers }))
}

/// Rebuilds an MLP from a body written by [`mlp_to_json`].
pub fn mlp_from_json(v: &Value) -> Result<Mlp, CkptError> {
    let mut mlp = Mlp::new();
    for lv in need_array(v, "layers")? {
        mlp.push_boxed(layer_from_state(layer_state_from_json(lv)?));
    }
    Ok(mlp)
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

/// Serializes an Adam optimizer: hyperparameters, step count, and moment
/// tensors in `visit_params` order.
pub fn adam_to_json(opt: &Adam) -> Value {
    let state: Vec<Value> = opt
        .state
        .iter()
        .map(|(m, v)| json!({ "m": tensor_to_json(m), "v": tensor_to_json(v) }))
        .collect();
    json!({
        "lr": opt.lr,
        "beta1": opt.beta1,
        "beta2": opt.beta2,
        "eps": opt.eps,
        "t": opt.t as i64,
        "state": state,
    })
}

/// Rebuilds an Adam optimizer from a body written by [`adam_to_json`].
pub fn adam_from_json(v: &Value) -> Result<Adam, CkptError> {
    let t = need(v, "t")?
        .as_u64()
        .ok_or_else(|| CkptError::Schema("field `t` must be a non-negative integer".into()))?;
    let mut state = Vec::new();
    for entry in need_array(v, "state")? {
        let m = tensor_from_json(need(entry, "m")?)?;
        let mv = tensor_from_json(need(entry, "v")?)?;
        if m.shape() != mv.shape() {
            return Err(CkptError::Schema(format!(
                "adam moment shapes disagree: {:?} vs {:?}",
                m.shape(),
                mv.shape()
            )));
        }
        state.push((m, mv));
    }
    Ok(Adam {
        lr: need_f64(v, "lr")?,
        beta1: need_f64(v, "beta1")?,
        beta2: need_f64(v, "beta2")?,
        eps: need_f64(v, "eps")?,
        t,
        state,
    })
}

// ---------------------------------------------------------------------------
// GCN / GAE
// ---------------------------------------------------------------------------

fn gcn_layer_to_json(layer: &GcnLayer) -> Value {
    json!({
        "w": tensor_to_json(&layer.w),
        "b": tensor_to_json(&layer.b),
        "act": layer.act.name(),
    })
}

fn gcn_layer_from_json(v: &Value, s: Arc<SparseMatrix>) -> Result<GcnLayer, CkptError> {
    let w = tensor_from_json(need(v, "w")?)?;
    let b = tensor_from_json(need(v, "b")?)?;
    if b.rows() != 1 || b.cols() != w.cols() {
        return Err(CkptError::Schema(format!(
            "gcn bias shape {:?} does not match weights {:?}",
            b.shape(),
            w.shape()
        )));
    }
    let name = need_str(v, "act")?;
    let act = Activation::from_name(name)
        .ok_or_else(|| CkptError::Schema(format!("unknown activation {name:?}")))?;
    Ok(GcnLayer::from_parts(s, w, b, act))
}

/// Serializes a two-layer GCN body. The graph operator `S` is not stored —
/// pass it back in at load time.
pub fn gcn_to_json(gcn: &Gcn) -> Value {
    json!({
        "layer1": gcn_layer_to_json(&gcn.layer1),
        "layer2": gcn_layer_to_json(&gcn.layer2),
    })
}

/// Rebuilds a GCN over the given graph operator from a body written by
/// [`gcn_to_json`].
pub fn gcn_from_json(v: &Value, s: Arc<SparseMatrix>) -> Result<Gcn, CkptError> {
    let layer1 = gcn_layer_from_json(need(v, "layer1")?, s.clone())?;
    let layer2 = gcn_layer_from_json(need(v, "layer2")?, s)?;
    if layer1.w.cols() != layer2.w.rows() {
        return Err(CkptError::Schema(format!(
            "gcn layer widths disagree: layer1 out {} vs layer2 in {}",
            layer1.w.cols(),
            layer2.w.rows()
        )));
    }
    Ok(Gcn::from_parts(layer1, layer2))
}

/// Serializes a trained GAE body (its GCN encoder plus the final loss).
pub fn gae_to_json(gae: &Gae) -> Value {
    json!({
        "encoder": gcn_to_json(&gae.encoder),
        "final_loss": gae.final_loss,
    })
}

/// Rebuilds a GAE over the given graph operator from a body written by
/// [`gae_to_json`].
pub fn gae_from_json(v: &Value, s: Arc<SparseMatrix>) -> Result<Gae, CkptError> {
    let encoder = gcn_from_json(need(v, "encoder")?, s)?;
    let final_loss = need_f64(v, "final_loss")?;
    Ok(Gae::from_parts(encoder, final_loss))
}

// ---------------------------------------------------------------------------
// Envelope and file I/O
// ---------------------------------------------------------------------------

/// Wraps a body object in the checkpoint envelope: `format`, `version`, and
/// `kind` come first, then the body's own fields in their original order.
pub fn envelope(kind: &str, body: &Value) -> Value {
    let mut map = Map::new();
    map.insert("format", Value::Str(FORMAT_NAME.to_string()));
    map.insert("version", Value::Int(FORMAT_VERSION));
    map.insert("kind", Value::Str(kind.to_string()));
    if let Some(obj) = body.as_object() {
        for (k, v) in obj.iter() {
            map.insert(k.clone(), v.clone());
        }
    }
    Value::Object(map)
}

/// Validates the envelope of a parsed checkpoint — format magic, version,
/// and model kind — and hands the document back for body decoding.
pub fn open_envelope<'a>(v: &'a Value, kind: &str) -> Result<&'a Value, CkptError> {
    let found_format = v
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| CkptError::Format("missing `format` field".into()))?;
    if found_format != FORMAT_NAME {
        return Err(CkptError::Format(format!(
            "format is {found_format:?}, expected {FORMAT_NAME:?}"
        )));
    }
    let found_version = v
        .get("version")
        .and_then(Value::as_i64)
        .ok_or_else(|| CkptError::Format("missing `version` field".into()))?;
    if found_version != FORMAT_VERSION {
        return Err(CkptError::Version {
            found: found_version,
            supported: FORMAT_VERSION,
        });
    }
    let found_kind = need_str(v, "kind")?;
    if found_kind != kind {
        return Err(CkptError::Kind {
            expected: kind.to_string(),
            found: found_kind.to_string(),
        });
    }
    Ok(v)
}

/// Reads and parses a checkpoint file (envelope not yet validated).
pub fn read_file(path: &Path) -> Result<Value, CkptError> {
    let text = std::fs::read_to_string(path).map_err(|e| CkptError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    gale_json::from_str(&text).map_err(|e| CkptError::Parse(e.to_string()))
}

/// Serializes a checkpoint document compactly and writes it to disk
/// atomically: the bytes land in a `.tmp` sibling first and are renamed
/// over `path` only once fully written. A reader — in particular a serving
/// process asked to hot-reload the file a trainer is re-emitting — sees
/// either the old complete checkpoint or the new one, never a torn write.
pub fn write_file(path: &Path, v: &Value) -> Result<(), CkptError> {
    let io_err = |e: std::io::Error| CkptError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    };
    let mut text = v.to_string_compact();
    text.push('\n');
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, text).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err(e)
    })
}

/// Saves an MLP checkpoint (`kind: "mlp"`).
pub fn save_mlp(mlp: &Mlp, path: impl AsRef<Path>) -> Result<(), CkptError> {
    let body = mlp_to_json(mlp)?;
    write_file(path.as_ref(), &envelope("mlp", &body))
}

/// Loads an MLP checkpoint written by [`save_mlp`].
pub fn load_mlp(path: impl AsRef<Path>) -> Result<Mlp, CkptError> {
    let doc = read_file(path.as_ref())?;
    mlp_from_json(open_envelope(&doc, "mlp")?)
}

/// Saves a GCN checkpoint (`kind: "gcn"`).
pub fn save_gcn(gcn: &Gcn, path: impl AsRef<Path>) -> Result<(), CkptError> {
    write_file(path.as_ref(), &envelope("gcn", &gcn_to_json(gcn)))
}

/// Loads a GCN checkpoint over the given graph operator.
pub fn load_gcn(path: impl AsRef<Path>, s: Arc<SparseMatrix>) -> Result<Gcn, CkptError> {
    let doc = read_file(path.as_ref())?;
    gcn_from_json(open_envelope(&doc, "gcn")?, s)
}

/// Saves a GAE checkpoint (`kind: "gae"`).
pub fn save_gae(gae: &Gae, path: impl AsRef<Path>) -> Result<(), CkptError> {
    write_file(path.as_ref(), &envelope("gae", &gae_to_json(gae)))
}

/// Loads a GAE checkpoint over the given graph operator.
pub fn load_gae(path: impl AsRef<Path>, s: Arc<SparseMatrix>) -> Result<Gae, CkptError> {
    let doc = read_file(path.as_ref())?;
    gae_from_json(open_envelope(&doc, "gae")?, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_mlp(rng: &mut Rng) -> Mlp {
        Mlp::dense(&[5, 8, 3], Activation::LeakyRelu, true, 0.25, rng)
    }

    #[test]
    fn mlp_round_trip_is_byte_identical_and_bitwise_equal() {
        let mut rng = Rng::seed_from_u64(201);
        let mut net = demo_mlp(&mut rng);
        // Exercise the net so batch-norm running stats and the dropout RNG
        // leave their initial state.
        let x = Matrix::randn(16, 5, 1.0, &mut rng);
        for _ in 0..3 {
            let _ = net.forward(&x, true);
        }

        let body = mlp_to_json(&net).unwrap();
        let doc = envelope("mlp", &body);
        let text1 = doc.to_string_compact();

        let parsed = gale_json::from_str(&text1).unwrap();
        let mut restored = mlp_from_json(open_envelope(&parsed, "mlp").unwrap()).unwrap();
        let text2 = envelope("mlp", &mlp_to_json(&restored).unwrap()).to_string_compact();
        assert_eq!(text1, text2, "save -> load -> save must be byte-identical");

        let y1 = net.forward(&x, false);
        let y2 = restored.forward(&x, false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Training mode must also agree: same dropout stream.
        let t1 = net.forward(&x, true);
        let t2 = restored.forward(&x, true);
        for (a, b) in t1.data().iter().zip(t2.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adam_round_trip_resumes_identically() {
        let mut rng = Rng::seed_from_u64(202);
        let mut net = Mlp::dense(&[4, 6, 2], Activation::Tanh, false, 0.0, &mut rng);
        let mut opt = Adam::new(0.01);
        let x = Matrix::randn(8, 4, 1.0, &mut rng);
        for _ in 0..5 {
            let y = net.forward(&x, true);
            net.zero_grad();
            let _ = net.backward(&y);
            opt.step(&mut net);
        }

        let net_doc = mlp_to_json(&net).unwrap();
        let opt_doc = adam_to_json(&opt);
        let mut net2 = mlp_from_json(&gale_json::from_str(&net_doc.to_string_compact()).unwrap())
            .expect("net body");
        let mut opt2 = adam_from_json(&gale_json::from_str(&opt_doc.to_string_compact()).unwrap())
            .expect("opt body");

        // One more step on each copy must produce identical parameters.
        for (n, o) in [(&mut net, &mut opt), (&mut net2, &mut opt2)] {
            let y = n.forward(&x, true);
            n.zero_grad();
            let _ = n.backward(&y);
            o.step(&mut *n);
        }
        let mut p1 = Vec::new();
        net.visit_params(&mut |p, _| p1.extend(p.data().iter().map(|v| v.to_bits())));
        let mut p2 = Vec::new();
        net2.visit_params(&mut |p, _| p2.extend(p.data().iter().map(|v| v.to_bits())));
        assert_eq!(p1, p2);
    }

    #[test]
    fn envelope_rejections_are_typed() {
        let body = json!({ "layers": [] });
        let good = envelope("mlp", &body);

        let mut wrong_version = good.clone();
        if let Value::Object(m) = &mut wrong_version {
            m.insert("version", Value::Int(99));
        }
        assert!(matches!(
            open_envelope(&wrong_version, "mlp"),
            Err(CkptError::Version {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));

        let mut wrong_kind = good.clone();
        if let Value::Object(m) = &mut wrong_kind {
            m.insert("kind", Value::Str("gcn".into()));
        }
        assert!(matches!(
            open_envelope(&wrong_kind, "mlp"),
            Err(CkptError::Kind { .. })
        ));

        let not_ours = json!({ "hello": 1 });
        assert!(matches!(
            open_envelope(&not_ours, "mlp"),
            Err(CkptError::Format(_))
        ));
    }

    #[test]
    fn corrupt_bodies_error_not_panic() {
        for text in [
            "",
            "{",
            "[1,2,3",
            r#"{"format":"gale-checkpoint","version":1,"kind":"mlp"}"#,
            r#"{"format":"gale-checkpoint","version":1,"kind":"mlp","layers":[{"type":"warp"}]}"#,
            r#"{"format":"gale-checkpoint","version":1,"kind":"mlp","layers":[{"type":"linear","w":{"rows":2,"cols":2,"bits":"00"},"b":{"rows":1,"cols":2,"bits":""}}]}"#,
        ] {
            let outcome = gale_json::from_str(text)
                .map_err(|e| CkptError::Parse(e.to_string()))
                .and_then(|doc| {
                    open_envelope(&doc, "mlp")?;
                    mlp_from_json(&doc)
                });
            assert!(outcome.is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn gcn_and_gae_round_trip() {
        let mut triplets = Vec::new();
        for i in 0..5usize {
            let j = (i + 1) % 6;
            triplets.push((i, j, 1.0));
            triplets.push((j, i, 1.0));
        }
        let a = SparseMatrix::from_triplets(6, 6, triplets);
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(203);
        let x = Matrix::randn(6, 4, 1.0, &mut rng);

        let mut gcn = Gcn::new(s.clone(), 4, 7, 2, Activation::Identity, &mut rng);
        let doc = gcn_to_json(&gcn);
        let mut back = gcn_from_json(
            &gale_json::from_str(&doc.to_string_compact()).unwrap(),
            s.clone(),
        )
        .unwrap();
        let y1 = gcn.forward(&x, false);
        let y2 = back.forward(&x, false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            doc.to_string_compact(),
            gcn_to_json(&back).to_string_compact()
        );

        let cfg = crate::gae::GaeConfig {
            epochs: 3,
            ..Default::default()
        };
        let mut gae = Gae::train(&x, &a, s.clone(), &cfg, &mut rng);
        let gdoc = gae_to_json(&gae);
        let mut gback =
            gae_from_json(&gale_json::from_str(&gdoc.to_string_compact()).unwrap(), s).unwrap();
        let z1 = gae.embed(&x);
        let z2 = gback.embed(&x);
        for (a, b) in z1.data().iter().zip(z2.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn file_io_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join("gale_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mlp.ckpt");
        let mut rng = Rng::seed_from_u64(204);
        let net = demo_mlp(&mut rng);
        save_mlp(&net, &path).unwrap();
        let bytes1 = std::fs::read(&path).unwrap();
        let restored = load_mlp(&path).unwrap();
        save_mlp(&restored, &path).unwrap();
        let bytes2 = std::fs::read(&path).unwrap();
        assert_eq!(bytes1, bytes2);

        assert!(matches!(
            load_mlp(dir.join("nope.ckpt")),
            Err(CkptError::Io { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
