//! Graph convolutional layers (Kipf & Welling's first-order approximation,
//! the paper's reference [30]).
//!
//! A layer computes `Z = act(S X W)` where `S` is the symmetric-normalized
//! adjacency with self-loops. `S` is shared by reference between layers and
//! is constant, so backprop only flows into `W` and `X`.

use crate::activation::Activation;
use crate::layer::Layer;
use crate::sampler::Block;
use gale_tensor::{spmm_access_into, CsrBlock, Matrix, NeighborAccess, Rng, SparseMatrix};
use std::sync::Arc;

/// One graph-convolution layer: `Z = act(S X W + b)`.
pub struct GcnLayer {
    pub(crate) s: Arc<SparseMatrix>,
    pub(crate) w: Matrix,
    pub(crate) b: Matrix,
    gw: Matrix,
    gb: Matrix,
    pub(crate) act: Activation,
    cached_sx: Matrix,
    cached_pre: Matrix,
    cached_out: Matrix,
    // Backward scratch, reused across steps.
    scratch_dpre: Matrix,
    scratch_dxw: Matrix,
}

impl GcnLayer {
    /// Creates a GCN layer over the shared propagation operator `s`.
    pub fn new(
        s: Arc<SparseMatrix>,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut Rng,
    ) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        GcnLayer {
            s,
            w: Matrix::rand_uniform(in_dim, out_dim, -limit, limit, rng),
            b: Matrix::zeros(1, out_dim),
            gw: Matrix::zeros(in_dim, out_dim),
            gb: Matrix::zeros(1, out_dim),
            act,
            cached_sx: Matrix::zeros(0, 0),
            cached_pre: Matrix::zeros(0, 0),
            cached_out: Matrix::zeros(0, 0),
            scratch_dpre: Matrix::zeros(0, 0),
            scratch_dxw: Matrix::zeros(0, 0),
        }
    }

    /// Rebuilds a layer from checkpointed parameters over the given graph
    /// operator. `b` must be a `1 x out_dim` row matching `w`.
    pub fn from_parts(s: Arc<SparseMatrix>, w: Matrix, b: Matrix, act: Activation) -> Self {
        assert_eq!(
            (b.rows(), b.cols()),
            (1, w.cols()),
            "GcnLayer::from_parts: bias shape {:?} does not fit weights {:?}",
            b.shape(),
            w.shape()
        );
        let (gw, gb) = (
            Matrix::zeros(w.rows(), w.cols()),
            Matrix::zeros(1, b.cols()),
        );
        GcnLayer {
            s,
            w,
            b,
            gw,
            gb,
            act,
            cached_sx: Matrix::zeros(0, 0),
            cached_pre: Matrix::zeros(0, 0),
            cached_out: Matrix::zeros(0, 0),
            scratch_dpre: Matrix::zeros(0, 0),
            scratch_dxw: Matrix::zeros(0, 0),
        }
    }

    /// Everything after the propagation product: `pre = (S X) W + b`,
    /// `out = act(pre)`, caches refreshed for backward. Shared by the
    /// full-graph, block, and access forward paths, so a block whose
    /// operator slice equals the full `S` is bitwise identical to the
    /// full-graph pass.
    fn finish_forward(&mut self, out: &mut Matrix) {
        self.cached_sx.matmul_into(&self.w, &mut self.cached_pre);
        self.cached_pre.add_row_broadcast(self.b.row(0));
        self.cached_out.copy_from(&self.cached_pre);
        for v in self.cached_out.data_mut() {
            *v = self.act.apply(*v);
        }
        out.copy_from(&self.cached_out);
    }

    /// Forward over a sampled block slice: `out = act(op X W + b)` where
    /// `op` is the induced `|out rows| x |x rows|` operator from a
    /// [`NeighborSampler`](crate::sampler::NeighborSampler) hop.
    pub fn forward_block_into(&mut self, op: &CsrBlock, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.rows(), op.cols(), "GcnLayer: block frontier mismatch");
        op.spmm_into(x, &mut self.cached_sx);
        self.finish_forward(out);
    }

    /// Backward for a block forward: parameter gradients from the cached
    /// activations, input gradient gathered through the transposed slice
    /// (`grad_in = opᵀ (dpre Wᵀ)`), sized `|x rows| x in_dim`.
    ///
    /// For a full-fanout block over all nodes `opᵀ`'s rows are bitwise
    /// equal to `S`'s rows (the operator is symmetric and its entries are
    /// products of commuting factors), so this path reproduces
    /// [`Layer::backward_into`] exactly.
    pub fn backward_block_into(
        &mut self,
        op_t: &CsrBlock,
        grad_out: &Matrix,
        grad_in: &mut Matrix,
    ) {
        self.backward_common(grad_out);
        op_t.spmm_into(&self.scratch_dxw, grad_in);
    }

    /// Forward over any [`NeighborAccess`] operator (e.g. the normalized
    /// view of a memory-mapped store) instead of the layer's own `S`; used
    /// for full-graph inference at scales where `S` is never materialized.
    pub fn forward_access_into<A: NeighborAccess + Sync + ?Sized>(
        &mut self,
        a: &A,
        x: &Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(x.rows(), a.node_count(), "GcnLayer: node count mismatch");
        spmm_access_into(a, x, &mut self.cached_sx);
        self.finish_forward(out);
    }

    /// Computes dL/dpre and the parameter gradients shared by both backward
    /// paths; leaves `S^T (dpre W^T)`'s inner product in `scratch_dxw`.
    fn backward_common(&mut self, grad_out: &Matrix) {
        // dL/dpre = grad_out * act'(pre)  (elementwise).
        self.scratch_dpre.copy_from(grad_out);
        for i in 0..self.scratch_dpre.data().len() {
            let x = self.cached_pre.data()[i];
            let y = self.cached_out.data()[i];
            let d = match self.act {
                Activation::Relu => {
                    if x > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
                Activation::LeakyRelu => {
                    if x > 0.0 {
                        1.0
                    } else {
                        0.2
                    }
                }
                Activation::Tanh => 1.0 - y * y,
                Activation::Sigmoid => y * (1.0 - y),
                Activation::Identity => 1.0,
            };
            self.scratch_dpre.data_mut()[i] *= d;
        }
        // dW += (S X)^T dpre ; db += colsums(dpre);
        self.cached_sx
            .matmul_tn_acc(&self.scratch_dpre, &mut self.gw);
        for (gb, s) in self
            .gb
            .row_mut(0)
            .iter_mut()
            .zip(self.scratch_dpre.sum_rows())
        {
            *gb += s;
        }
        self.scratch_dpre
            .matmul_nt_into(&self.w, &mut self.scratch_dxw);
    }
}

impl Layer for GcnLayer {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, train, &mut out);
        out
    }

    fn forward_into(&mut self, x: &Matrix, _train: bool, out: &mut Matrix) {
        assert_eq!(x.rows(), self.s.rows(), "GcnLayer: node count mismatch");
        self.s.spmm_into(x, &mut self.cached_sx);
        self.finish_forward(out);
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut out);
        out
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        self.backward_common(grad_out);
        // dX = S^T (dpre W^T) = S (dpre W^T) since S is symmetric.
        self.s.spmm_into(&self.scratch_dxw, grad_in);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

/// A two-layer GCN encoder, the standard architecture for semi-supervised
/// node classification (and the encoder of the GAE).
pub struct Gcn {
    pub(crate) layer1: GcnLayer,
    pub(crate) layer2: GcnLayer,
    hidden: Matrix,
    ghidden: Matrix,
}

impl Gcn {
    /// Builds `in_dim -> hidden -> out_dim` with ReLU in between and a
    /// configurable output activation (identity for logits, identity for
    /// embeddings too).
    pub fn new(
        s: Arc<SparseMatrix>,
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        out_act: Activation,
        rng: &mut Rng,
    ) -> Self {
        Gcn {
            layer1: GcnLayer::new(s.clone(), in_dim, hidden_dim, Activation::Relu, rng),
            layer2: GcnLayer::new(s, hidden_dim, out_dim, out_act, rng),
            hidden: Matrix::zeros(0, 0),
            ghidden: Matrix::zeros(0, 0),
        }
    }

    /// Builds a GCN with no attached graph operator, for use exclusively
    /// through the block ([`Gcn::forward_block_into`]) and access
    /// ([`Gcn::forward_access_into`]) paths — the out-of-core training
    /// configuration, where `S` is never materialized. The weight
    /// initialization draws the same RNG sequence as [`Gcn::new`].
    pub fn new_detached(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        out_act: Activation,
        rng: &mut Rng,
    ) -> Self {
        Gcn::new(
            Arc::new(SparseMatrix::zeros(0, 0)),
            in_dim,
            hidden_dim,
            out_dim,
            out_act,
            rng,
        )
    }

    /// Forward over a 2-hop sampled [`Block`]: `x` holds the feature rows
    /// of `block.inputs()`, the output holds rows for `block.seeds()`.
    pub fn forward_block_into(&mut self, block: &Block, x: &Matrix, out: &mut Matrix) {
        assert_eq!(block.depth(), 2, "Gcn: need a 2-hop block");
        self.layer1
            .forward_block_into(&block.ops[1], x, &mut self.hidden);
        self.layer2
            .forward_block_into(&block.ops[0], &self.hidden, out);
    }

    /// Backward for [`Gcn::forward_block_into`]: `grad_out` has seed rows,
    /// `grad_in` gets `block.inputs()` rows.
    pub fn backward_block_into(&mut self, block: &Block, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(block.depth(), 2, "Gcn: need a 2-hop block");
        self.layer2
            .backward_block_into(&block.ops_t[0], grad_out, &mut self.ghidden);
        self.layer1
            .backward_block_into(&block.ops_t[1], &self.ghidden, grad_in);
    }

    /// Full-graph inference over any [`NeighborAccess`] operator instead of
    /// the attached `S` (evaluation path for out-of-core graphs). Memory is
    /// the two layer activations — `n x hidden` and `n x out` — not the
    /// operator.
    pub fn forward_access_into<A: NeighborAccess + Sync + ?Sized>(
        &mut self,
        a: &A,
        x: &Matrix,
        out: &mut Matrix,
    ) {
        self.layer1.forward_access_into(a, x, &mut self.hidden);
        self.layer2.forward_access_into(a, &self.hidden, out);
    }

    /// Neighborhood-local inference: recomputes only the output rows
    /// `rows` (which must be sorted ascending and deduplicated) of a
    /// full-graph forward over `a`, writing them to `out` in `rows`
    /// order. `x` is the full feature matrix (`a.node_count()` rows).
    ///
    /// The receptive field of a 2-layer GCN output row is its 2-hop
    /// neighborhood, so this gathers the 1-hop frontier `F = rows ∪
    /// N(rows)`, runs layer 1 over the frontier's full operator rows, and
    /// layer 2 over the `rows` operator rows with columns remapped into
    /// the frontier. Both layers accumulate per row in the same ascending
    /// column order as [`Gcn::forward_access_into`] and share
    /// `finish_forward`, so each output row is **bitwise identical** to
    /// the same row of the full pass (proptested in gale-stream).
    ///
    /// Cost is `O(|F| · d̄)` operator entries instead of `O(nnz)` — the
    /// streaming path's incremental refresh after a graph delta.
    pub fn forward_rows_access_into<A: NeighborAccess + Sync + ?Sized>(
        &mut self,
        a: &A,
        rows: &[usize],
        x: &Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(x.rows(), a.node_count(), "Gcn: node count mismatch");
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "Gcn: rows must be sorted and deduplicated"
        );
        // 1-hop closed frontier of the requested rows, ascending.
        let mut frontier_set = std::collections::BTreeSet::new();
        for &r in rows {
            frontier_set.insert(r);
            a.visit_neighbors(r, &mut |c, _| {
                frontier_set.insert(c);
            });
        }
        let frontier: Vec<usize> = frontier_set.into_iter().collect();

        // Layer 1 over the frontier's full operator rows (global columns).
        let mut op1 = CsrBlock::new();
        op1.reset(a.node_count());
        for &r in &frontier {
            a.visit_neighbors(r, &mut |c, v| op1.push(c, v));
            op1.finish_row();
        }
        self.layer1.forward_block_into(&op1, x, &mut self.hidden);

        // Layer 2 over the requested rows, columns remapped into frontier
        // positions (ascending global order maps to ascending local order,
        // preserving the accumulation order of the full pass).
        let mut op2 = CsrBlock::new();
        op2.reset(frontier.len());
        for &r in rows {
            a.visit_neighbors(r, &mut |c, v| {
                let local = frontier.binary_search(&c).expect("frontier covers N(rows)");
                op2.push(local, v);
            });
            op2.finish_row();
        }
        self.layer2.forward_block_into(&op2, &self.hidden, out);
    }

    /// Hidden representation from the most recent forward pass.
    pub fn hidden(&self) -> &Matrix {
        &self.hidden
    }

    /// Rebuilds a two-layer GCN from checkpointed layers.
    pub fn from_parts(layer1: GcnLayer, layer2: GcnLayer) -> Self {
        assert_eq!(
            layer1.w.cols(),
            layer2.w.rows(),
            "Gcn::from_parts: layer widths disagree"
        );
        Gcn {
            layer1,
            layer2,
            hidden: Matrix::zeros(0, 0),
            ghidden: Matrix::zeros(0, 0),
        }
    }
}

impl Layer for Gcn {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        self.layer1.forward_into(x, train, &mut self.hidden);
        self.layer2.forward(&self.hidden, train)
    }

    fn forward_into(&mut self, x: &Matrix, train: bool, out: &mut Matrix) {
        self.layer1.forward_into(x, train, &mut self.hidden);
        self.layer2.forward_into(&self.hidden, train, out);
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut out);
        out
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        self.layer2.backward_into(grad_out, &mut self.ghidden);
        self.layer1.backward_into(&self.ghidden, grad_in);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.layer1.visit_params(f);
        self.layer2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::input_gradient_error;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Adam;

    /// Two 4-cliques joined by a single edge; perfect community structure.
    fn two_cliques() -> Arc<SparseMatrix> {
        let mut triplets = Vec::new();
        let connect = |a: usize, b: usize, t: &mut Vec<(usize, usize, f64)>| {
            t.push((a, b, 1.0));
            t.push((b, a, 1.0));
        };
        for i in 0..4 {
            for j in (i + 1)..4 {
                connect(i, j, &mut triplets);
                connect(i + 4, j + 4, &mut triplets);
            }
        }
        connect(3, 4, &mut triplets);
        Arc::new(SparseMatrix::from_triplets(8, 8, triplets).sym_normalized_with_self_loops())
    }

    #[test]
    fn gcn_layer_gradient_check() {
        let s = two_cliques();
        let mut rng = Rng::seed_from_u64(111);
        let mut layer = GcnLayer::new(s, 3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::randn(8, 3, 1.0, &mut rng);
        let err = input_gradient_error(&mut layer, &x, 1e-6);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn two_layer_gradient_check() {
        let s = two_cliques();
        let mut rng = Rng::seed_from_u64(112);
        let mut net = Gcn::new(s, 3, 5, 2, Activation::Identity, &mut rng);
        let x = Matrix::randn(8, 3, 1.0, &mut rng);
        let err = input_gradient_error(&mut net, &x, 1e-6);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn semi_supervised_classification_learns_communities() {
        // Label one node per clique; the GCN should classify the rest.
        let s = two_cliques();
        let mut rng = Rng::seed_from_u64(113);
        let x = Matrix::randn(8, 4, 1.0, &mut rng);
        let mut net = Gcn::new(s, 4, 8, 2, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.05);
        let labels = [(0usize, 0usize), (7, 1)];
        for _ in 0..200 {
            let logits = net.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net);
        }
        let logits = net.forward(&x, false);
        let preds = logits.argmax_rows();
        for i in 0..4 {
            assert_eq!(preds[i], 0, "node {i} misclassified: {preds:?}");
        }
        for i in 4..8 {
            assert_eq!(preds[i], 1, "node {i} misclassified: {preds:?}");
        }
    }

    #[test]
    fn rows_forward_matches_full_access_bitwise() {
        let s = two_cliques();
        let mut rng = Rng::seed_from_u64(115);
        let mut net = Gcn::new(s.clone(), 3, 6, 2, Activation::Identity, &mut rng);
        let x = Matrix::randn(8, 3, 1.0, &mut rng);
        let mut full = Matrix::zeros(0, 0);
        net.forward_access_into(s.as_ref(), &x, &mut full);
        for rows in [vec![0usize], vec![3, 4], vec![0, 1, 2, 3, 4, 5, 6, 7]] {
            let mut partial = Matrix::zeros(0, 0);
            net.forward_rows_access_into(s.as_ref(), &rows, &x, &mut partial);
            for (k, &r) in rows.iter().enumerate() {
                let got: Vec<u64> = partial.row(k).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = full.row(r).iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "row {r} of {rows:?}");
            }
        }
    }

    #[test]
    fn hidden_exposed_after_forward() {
        let s = two_cliques();
        let mut rng = Rng::seed_from_u64(114);
        let mut net = Gcn::new(s, 3, 6, 2, Activation::Identity, &mut rng);
        let x = Matrix::randn(8, 3, 1.0, &mut rng);
        let _ = net.forward(&x, false);
        assert_eq!(net.hidden().shape(), (8, 6));
    }
}
