//! Fully-connected (dense) layer with bias.

use crate::checkpoint::LayerState;
use crate::layer::Layer;
use gale_tensor::{Matrix, Rng};

/// `y = x W + b`, with Xavier/Glorot-uniform initialization.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Matrix, // 1 x out
    gw: Matrix,
    gb: Matrix,
    cached_in: Matrix,
}

impl Linear {
    /// Creates a layer mapping `in_dim` features to `out_dim`, initialized
    /// with Glorot-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        Linear {
            w: Matrix::rand_uniform(in_dim, out_dim, -limit, limit, rng),
            b: Matrix::zeros(1, out_dim),
            gw: Matrix::zeros(in_dim, out_dim),
            gb: Matrix::zeros(1, out_dim),
            cached_in: Matrix::zeros(0, 0),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Read access to the weights (inspection/serialization).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Read access to the bias row (inspection/serialization).
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Rebuilds a layer from explicit weights and bias (checkpoint load).
    /// `b` must be a `1 x out_dim` row matching `w`'s column count.
    pub fn from_parts(w: Matrix, b: Matrix) -> Self {
        assert_eq!(
            (b.rows(), b.cols()),
            (1, w.cols()),
            "Linear::from_parts: bias shape {:?} does not fit weights {:?}",
            b.shape(),
            w.shape()
        );
        let (gw, gb) = (
            Matrix::zeros(w.rows(), w.cols()),
            Matrix::zeros(1, b.cols()),
        );
        Linear {
            w,
            b,
            gw,
            gb,
            cached_in: Matrix::zeros(0, 0),
        }
    }
}

impl Linear {
    /// Shared parameter-gradient accumulation for both backward paths:
    /// `dW += x^T g` (tiled, accumulating in place) and `db += colsums(g)`.
    fn accumulate_param_grads(&mut self, grad_out: &Matrix) {
        assert_eq!(
            grad_out.rows(),
            self.cached_in.rows(),
            "Linear::backward before forward or batch changed"
        );
        self.cached_in.matmul_tn_acc(grad_out, &mut self.gw);
        let col_sums = grad_out.sum_rows();
        for (gb, s) in self.gb.row_mut(0).iter_mut().zip(&col_sums) {
            *gb += s;
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, train, &mut y);
        y
    }

    fn forward_into(&mut self, x: &Matrix, _train: bool, out: &mut Matrix) {
        assert_eq!(
            x.cols(),
            self.w.rows(),
            "Linear::forward: input dim {} != {}",
            x.cols(),
            self.w.rows()
        );
        self.cached_in.copy_from(x);
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(self.b.row(0));
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // dW += x^T g ; db += column sums of g ; dx = g W^T.
        self.accumulate_param_grads(grad_out);
        grad_out.matmul_nt(&self.w)
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        self.accumulate_param_grads(grad_out);
        grad_out.matmul_nt_into(&self.w, grad_in);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn state(&self) -> Option<LayerState> {
        Some(LayerState::Linear {
            w: self.w.clone(),
            b: self.b.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::input_gradient_error;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng::seed_from_u64(51);
        let mut l = Linear::new(3, 2, &mut rng);
        // Set a recognizable bias.
        l.b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        let x = Matrix::zeros(4, 3);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y[(0, 0)], 10.0);
        assert_eq!(y[(3, 1)], 20.0);
    }

    #[test]
    fn input_gradient_checks() {
        let mut rng = Rng::seed_from_u64(52);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Matrix::randn(5, 4, 1.0, &mut rng);
        let err = input_gradient_error(&mut l, &x, 1e-6);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn weight_gradient_finite_difference() {
        let mut rng = Rng::seed_from_u64(53);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);

        // Analytic dL/dW for L = 0.5 ||y||^2.
        let y = l.forward(&x, false);
        l.zero_grad();
        let _ = l.backward(&y);
        let analytic = l.gw.clone();

        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let orig = l.w[(r, c)];
                l.w[(r, c)] = orig + eps;
                let lp = 0.5
                    * l.forward(&x, false)
                        .data()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f64>();
                l.w[(r, c)] = orig - eps;
                let lm = 0.5
                    * l.forward(&x, false)
                        .data()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f64>();
                l.w[(r, c)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic[(r, c)]).abs() < 1e-5,
                    "W[{r},{c}]: numeric {numeric} vs analytic {}",
                    analytic[(r, c)]
                );
            }
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = Rng::seed_from_u64(54);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Matrix::randn(3, 2, 1.0, &mut rng);
        let y = l.forward(&x, false);
        let _ = l.backward(&y);
        assert!(l.gw.max_abs() > 0.0);
        l.zero_grad();
        assert_eq!(l.gw.max_abs(), 0.0);
        assert_eq!(l.gb.max_abs(), 0.0);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed_from_u64(55);
        let mut l = Linear::new(7, 3, &mut rng);
        assert_eq!(l.param_count(), 7 * 3 + 3);
    }
}
