//! Graph autoencoder (GAE) for structural node embeddings (the paper's
//! reference [31]).
//!
//! A two-layer GCN encoder produces embeddings `Z`; the inner-product decoder
//! reconstructs edges with `Â_{ij} = σ(z_i · z_j)`. Training minimizes
//! binary cross-entropy over the observed edges plus an equal number of
//! sampled non-edges. GALE's graph-augmentation step (Section III) runs a GAE
//! over `G` to obtain the node-level representation concatenated with the
//! attribute embedding before SGAN training.

use crate::activation::Activation;
use crate::gcn::Gcn;
use crate::layer::Layer;
use crate::loss::bce_with_logit_grad;
use crate::optim::Adam;
use gale_tensor::{Matrix, Rng, SparseMatrix};
use std::sync::Arc;

/// Configuration of a GAE training run.
#[derive(Debug, Clone)]
pub struct GaeConfig {
    /// Encoder hidden width.
    pub hidden_dim: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Negative samples per positive edge.
    pub negative_ratio: usize,
}

impl Default for GaeConfig {
    fn default() -> Self {
        GaeConfig {
            hidden_dim: 32,
            embed_dim: 16,
            epochs: 60,
            lr: 0.01,
            negative_ratio: 1,
        }
    }
}

/// A trained graph autoencoder.
pub struct Gae {
    pub(crate) encoder: Gcn,
    /// Final reconstruction loss per edge sample.
    pub final_loss: f64,
}

impl Gae {
    /// Rebuilds a GAE from a checkpointed encoder.
    pub fn from_parts(encoder: Gcn, final_loss: f64) -> Self {
        Gae {
            encoder,
            final_loss,
        }
    }
}

impl Gae {
    /// Trains a GAE on features `x` over adjacency `a` (binary symmetric).
    ///
    /// `s_norm` must be `a`'s symmetric normalization with self-loops.
    pub fn train(
        x: &Matrix,
        a: &SparseMatrix,
        s_norm: Arc<SparseMatrix>,
        cfg: &GaeConfig,
        rng: &mut Rng,
    ) -> Gae {
        let n = a.rows();
        assert_eq!(x.rows(), n, "Gae::train: feature/node mismatch");
        let mut encoder = Gcn::new(
            s_norm,
            x.cols(),
            cfg.hidden_dim,
            cfg.embed_dim,
            Activation::Identity,
            rng,
        );
        let mut opt = Adam::new(cfg.lr);

        // Collect the (undirected, deduplicated) positive edge list once.
        let mut positives: Vec<(usize, usize)> = Vec::new();
        for r in 0..n {
            for (c, _) in a.row_iter(r) {
                if r < c {
                    positives.push((r, c));
                }
            }
        }
        let mut final_loss = 0.0;
        // Epoch-persistent buffers: the embedding and its gradient keep
        // their allocation across epochs.
        let mut z = Matrix::zeros(0, 0);
        let mut dz = Matrix::zeros(n, cfg.embed_dim);
        for _ in 0..cfg.epochs {
            encoder.forward_into(x, true, &mut z);
            dz.fill(0.0);
            let mut loss = 0.0;
            let mut samples = 0usize;
            let mut accumulate = |i: usize, j: usize, y: f64, z: &Matrix, dz: &mut Matrix| {
                let dot: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
                let p = 1.0 / (1.0 + (-dot).exp());
                let (l, g) = bce_with_logit_grad(p, y);
                loss += l;
                for d in 0..z.cols() {
                    dz[(i, d)] += g * z[(j, d)];
                    dz[(j, d)] += g * z[(i, d)];
                }
            };
            for &(i, j) in &positives {
                accumulate(i, j, 1.0, &z, &mut dz);
                samples += 1;
                for _ in 0..cfg.negative_ratio {
                    // Rejection-sample a non-edge endpoint pair.
                    let (mut u, mut v) = (rng.below(n), rng.below(n));
                    let mut tries = 0;
                    while (u == v || a.get(u, v) != 0.0) && tries < 16 {
                        u = rng.below(n);
                        v = rng.below(n);
                        tries += 1;
                    }
                    if u != v && a.get(u, v) == 0.0 {
                        accumulate(u, v, 0.0, &z, &mut dz);
                        samples += 1;
                    }
                }
            }
            if samples > 0 {
                dz.scale_inplace(1.0 / samples as f64);
                final_loss = loss / samples as f64;
            }
            encoder.zero_grad();
            let _ = encoder.backward(&dz);
            opt.step(&mut encoder);
        }
        Gae {
            encoder,
            final_loss,
        }
    }

    /// Produces embeddings for the given features (evaluation mode).
    pub fn embed(&mut self, x: &Matrix) -> Matrix {
        self.encoder.forward(x, false)
    }

    /// Reconstruction probability of the edge `(i, j)` given embeddings `z`.
    pub fn edge_probability(z: &Matrix, i: usize, j: usize) -> f64 {
        let dot: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
        1.0 / (1.0 + (-dot).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 5-cliques joined by one bridge.
    fn two_cliques() -> SparseMatrix {
        let mut triplets = Vec::new();
        for base in [0usize, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    triplets.push((base + i, base + j, 1.0));
                    triplets.push((base + j, base + i, 1.0));
                }
            }
        }
        triplets.push((4, 5, 1.0));
        triplets.push((5, 4, 1.0));
        SparseMatrix::from_triplets(10, 10, triplets)
    }

    #[test]
    fn gae_separates_communities() {
        let a = two_cliques();
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(121);
        let x = Matrix::randn(10, 6, 1.0, &mut rng);
        let cfg = GaeConfig {
            epochs: 120,
            ..Default::default()
        };
        let mut gae = Gae::train(&x, &a, s, &cfg, &mut rng);
        let z = gae.embed(&x);
        // Intra-clique reconstruction beats the cross pair (0, 9).
        let intra = Gae::edge_probability(&z, 0, 1);
        let cross = Gae::edge_probability(&z, 0, 9);
        assert!(intra > cross, "intra {intra} should exceed cross {cross}");
        assert!(intra > 0.5, "intra edge prob {intra}");
    }

    #[test]
    fn training_reduces_loss() {
        let a = two_cliques();
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(122);
        let x = Matrix::randn(10, 6, 1.0, &mut rng);
        let short = Gae::train(
            &x,
            &a,
            s.clone(),
            &GaeConfig {
                epochs: 2,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(5),
        );
        let long = Gae::train(
            &x,
            &a,
            s,
            &GaeConfig {
                epochs: 150,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(5),
        );
        assert!(
            long.final_loss < short.final_loss,
            "loss did not drop: {} -> {}",
            short.final_loss,
            long.final_loss
        );
    }

    #[test]
    fn embeddings_shape() {
        let a = two_cliques();
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(123);
        let x = Matrix::randn(10, 4, 1.0, &mut rng);
        let cfg = GaeConfig {
            embed_dim: 7,
            epochs: 3,
            ..Default::default()
        };
        let mut gae = Gae::train(&x, &a, s, &cfg, &mut rng);
        assert_eq!(gae.embed(&x).shape(), (10, 7));
    }
}
