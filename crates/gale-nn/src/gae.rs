//! Graph autoencoder (GAE) for structural node embeddings (the paper's
//! reference [31]).
//!
//! A two-layer GCN encoder produces embeddings `Z`; the inner-product decoder
//! reconstructs edges with `Â_{ij} = σ(z_i · z_j)`. Training minimizes
//! binary cross-entropy over the observed edges plus an equal number of
//! sampled non-edges. GALE's graph-augmentation step (Section III) runs a GAE
//! over `G` to obtain the node-level representation concatenated with the
//! attribute embedding before SGAN training.

use crate::activation::Activation;
use crate::gcn::Gcn;
use crate::layer::Layer;
use crate::loss::bce_with_logit_grad;
use crate::optim::Adam;
use crate::sampler::{NeighborSampler, SamplerConfig};
use gale_tensor::{EdgeSample, Matrix, NeighborAccess, Rng, SparseMatrix, Workspace};
use std::sync::Arc;

/// Configuration of a GAE training run.
#[derive(Debug, Clone)]
pub struct GaeConfig {
    /// Encoder hidden width.
    pub hidden_dim: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Negative samples per positive edge.
    pub negative_ratio: usize,
}

impl Default for GaeConfig {
    fn default() -> Self {
        GaeConfig {
            hidden_dim: 32,
            embed_dim: 16,
            epochs: 60,
            lr: 0.01,
            negative_ratio: 1,
        }
    }
}

/// Mini-batch shape for [`Gae::train_sampled`].
#[derive(Debug, Clone)]
pub struct MiniBatchConfig {
    /// Per-hop neighbor budgets for the 2-layer encoder (0 = full).
    pub fanouts: Vec<usize>,
    /// Positive edges drawn per batch.
    pub edge_batch: usize,
    /// Batches per epoch.
    pub batches_per_epoch: usize,
    /// Seed for batch composition and neighbor sampling.
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        MiniBatchConfig {
            fanouts: vec![10, 10],
            edge_batch: 512,
            batches_per_epoch: 16,
            seed: 0,
        }
    }
}

/// A trained graph autoencoder.
pub struct Gae {
    pub(crate) encoder: Gcn,
    /// Final reconstruction loss per edge sample.
    pub final_loss: f64,
}

impl Gae {
    /// Rebuilds a GAE from a checkpointed encoder.
    pub fn from_parts(encoder: Gcn, final_loss: f64) -> Self {
        Gae {
            encoder,
            final_loss,
        }
    }
}

impl Gae {
    /// Trains a GAE on features `x` over adjacency `a` (binary symmetric).
    ///
    /// `s_norm` must be `a`'s symmetric normalization with self-loops.
    pub fn train(
        x: &Matrix,
        a: &SparseMatrix,
        s_norm: Arc<SparseMatrix>,
        cfg: &GaeConfig,
        rng: &mut Rng,
    ) -> Gae {
        let n = a.rows();
        assert_eq!(x.rows(), n, "Gae::train: feature/node mismatch");
        let mut encoder = Gcn::new(
            s_norm,
            x.cols(),
            cfg.hidden_dim,
            cfg.embed_dim,
            Activation::Identity,
            rng,
        );
        let mut opt = Adam::new(cfg.lr);

        // Collect the (undirected, deduplicated) positive edge list once.
        let mut positives: Vec<(usize, usize)> = Vec::new();
        for r in 0..n {
            for (c, _) in a.row_iter(r) {
                if r < c {
                    positives.push((r, c));
                }
            }
        }
        let mut final_loss = 0.0;
        // Epoch-persistent buffers: the embedding, its gradient, and the
        // pooled input-gradient buffer keep their allocations across
        // epochs — the training loop is allocation-free in steady state.
        let mut ws = Workspace::new();
        let mut z = Matrix::zeros(0, 0);
        let mut dz = Matrix::zeros(n, cfg.embed_dim);
        let mut gx = ws.take(n, x.cols());
        for _ in 0..cfg.epochs {
            encoder.forward_into(x, true, &mut z);
            dz.fill(0.0);
            let mut loss = 0.0;
            let mut samples = 0usize;
            let mut accumulate = |i: usize, j: usize, y: f64, z: &Matrix, dz: &mut Matrix| {
                let dot: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
                let p = 1.0 / (1.0 + (-dot).exp());
                let (l, g) = bce_with_logit_grad(p, y);
                loss += l;
                for d in 0..z.cols() {
                    dz[(i, d)] += g * z[(j, d)];
                    dz[(j, d)] += g * z[(i, d)];
                }
            };
            for &(i, j) in &positives {
                accumulate(i, j, 1.0, &z, &mut dz);
                samples += 1;
                for _ in 0..cfg.negative_ratio {
                    // Rejection-sample a non-edge endpoint pair.
                    let (mut u, mut v) = (rng.below(n), rng.below(n));
                    let mut tries = 0;
                    while (u == v || a.get(u, v) != 0.0) && tries < 16 {
                        u = rng.below(n);
                        v = rng.below(n);
                        tries += 1;
                    }
                    if u != v && a.get(u, v) == 0.0 {
                        accumulate(u, v, 0.0, &z, &mut dz);
                        samples += 1;
                    }
                }
            }
            if samples > 0 {
                dz.scale_inplace(1.0 / samples as f64);
                final_loss = loss / samples as f64;
            }
            encoder.zero_grad();
            encoder.backward_into(&dz, &mut gx);
            opt.step(&mut encoder);
        }
        ws.give(gx);
        Gae {
            encoder,
            final_loss,
        }
    }

    /// Trains a GAE with neighbor-sampled mini-batches over out-of-core
    /// operators: `adj` is the raw adjacency (positive edges are drawn by
    /// flat entry index, negatives rejection-sampled against it) and `s`
    /// its normalized propagation view. Memory per step is
    /// `O(edge_batch · fanout²)`, never `O(n · hidden)`.
    ///
    /// Deterministic in `(cfg, scfg, mb, rng seed)` at any thread count:
    /// batch composition and sampling derive from `(mb.seed, epoch,
    /// batch)` and every kernel is bitwise thread-count-invariant.
    pub fn train_sampled<A, S>(
        x: &Matrix,
        adj: &A,
        s: &S,
        cfg: &GaeConfig,
        mb: &MiniBatchConfig,
        rng: &mut Rng,
    ) -> Gae
    where
        A: EdgeSample + ?Sized,
        S: NeighborAccess + ?Sized,
    {
        let n = adj.node_count();
        assert_eq!(x.rows(), n, "Gae::train_sampled: feature/node mismatch");
        assert!(adj.entry_count() > 0, "Gae::train_sampled: empty graph");
        assert_eq!(
            mb.fanouts.len(),
            2,
            "Gae::train_sampled: the 2-layer encoder needs 2 fanouts"
        );
        let mut encoder = Gcn::new_detached(
            x.cols(),
            cfg.hidden_dim,
            cfg.embed_dim,
            Activation::Identity,
            rng,
        );
        let mut opt = Adam::new(cfg.lr);
        let mut sampler = NeighborSampler::new(SamplerConfig {
            fanouts: mb.fanouts.clone(),
            seed: mb.seed,
        });

        // Batch-persistent buffers.
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        let mut seeds: Vec<usize> = Vec::new();
        let mut xb = Matrix::zeros(0, 0);
        let mut z = Matrix::zeros(0, 0);
        let mut dz = Matrix::zeros(0, 0);
        let mut gx = Matrix::zeros(0, 0);
        let mut final_loss = 0.0;

        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut epoch_samples = 0usize;
            for batch in 0..mb.batches_per_epoch {
                // Batch composition from (seed, epoch, batch) alone.
                let mut brng = Rng::seed_from_u64(
                    mb.seed
                        ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (batch as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB),
                );
                pairs.clear();
                seeds.clear();
                for _ in 0..mb.edge_batch {
                    let (u, v) = adj.entry_at(brng.below(adj.entry_count()));
                    if u == v {
                        continue;
                    }
                    pairs.push((u, v, 1.0));
                    for _ in 0..cfg.negative_ratio {
                        let (mut a, mut b) = (brng.below(n), brng.below(n));
                        let mut tries = 0;
                        while (a == b || adj.has_neighbor(a, b)) && tries < 16 {
                            a = brng.below(n);
                            b = brng.below(n);
                            tries += 1;
                        }
                        if a != b && !adj.has_neighbor(a, b) {
                            pairs.push((a, b, 0.0));
                        }
                    }
                }
                if pairs.is_empty() {
                    continue;
                }
                for &(u, v, _) in &pairs {
                    seeds.push(u);
                    seeds.push(v);
                }
                seeds.sort_unstable();
                seeds.dedup();

                let block = sampler.sample(s, &seeds, epoch, batch);
                x.select_rows_into(block.inputs(), &mut xb);
                encoder.forward_block_into(block, &xb, &mut z);

                dz.resize(seeds.len(), cfg.embed_dim);
                dz.fill(0.0);
                let mut loss = 0.0;
                let local = |g: usize| seeds.binary_search(&g).expect("endpoint is a seed");
                for &(u, v, y) in &pairs {
                    let (i, j) = (local(u), local(v));
                    let dot: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
                    let p = 1.0 / (1.0 + (-dot).exp());
                    let (l, g) = bce_with_logit_grad(p, y);
                    loss += l;
                    for d in 0..z.cols() {
                        dz[(i, d)] += g * z[(j, d)];
                        dz[(j, d)] += g * z[(i, d)];
                    }
                }
                dz.scale_inplace(1.0 / pairs.len() as f64);
                epoch_loss += loss;
                epoch_samples += pairs.len();

                encoder.zero_grad();
                encoder.backward_block_into(block, &dz, &mut gx);
                opt.step(&mut encoder);
            }
            if epoch_samples > 0 {
                final_loss = epoch_loss / epoch_samples as f64;
            }
        }
        Gae {
            encoder,
            final_loss,
        }
    }

    /// Embeds all nodes through any [`NeighborAccess`] operator — the
    /// evaluation pass matching [`Gae::train_sampled`], which never
    /// materializes `S`.
    pub fn embed_access<A: NeighborAccess + Sync + ?Sized>(
        &mut self,
        a: &A,
        x: &Matrix,
        out: &mut Matrix,
    ) {
        self.encoder.forward_access_into(a, x, out);
    }

    /// Embeds only the nodes in `rows` (sorted, deduplicated), writing
    /// `|rows| x out_dim` rows to `out` in `rows` order — each row
    /// bitwise-equal to the corresponding row of [`Gae::embed_access`].
    /// The streaming path's incremental refresh after a graph delta.
    pub fn embed_rows_access<A: NeighborAccess + Sync + ?Sized>(
        &mut self,
        a: &A,
        rows: &[usize],
        x: &Matrix,
        out: &mut Matrix,
    ) {
        self.encoder.forward_rows_access_into(a, rows, x, out);
    }

    /// Produces embeddings for the given features (evaluation mode).
    pub fn embed(&mut self, x: &Matrix) -> Matrix {
        self.encoder.forward(x, false)
    }

    /// Reconstruction probability of the edge `(i, j)` given embeddings `z`.
    pub fn edge_probability(z: &Matrix, i: usize, j: usize) -> f64 {
        let dot: f64 = z.row(i).iter().zip(z.row(j)).map(|(a, b)| a * b).sum();
        1.0 / (1.0 + (-dot).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 5-cliques joined by one bridge.
    fn two_cliques() -> SparseMatrix {
        let mut triplets = Vec::new();
        for base in [0usize, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    triplets.push((base + i, base + j, 1.0));
                    triplets.push((base + j, base + i, 1.0));
                }
            }
        }
        triplets.push((4, 5, 1.0));
        triplets.push((5, 4, 1.0));
        SparseMatrix::from_triplets(10, 10, triplets)
    }

    #[test]
    fn gae_separates_communities() {
        let a = two_cliques();
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(121);
        let x = Matrix::randn(10, 6, 1.0, &mut rng);
        let cfg = GaeConfig {
            epochs: 120,
            ..Default::default()
        };
        let mut gae = Gae::train(&x, &a, s, &cfg, &mut rng);
        let z = gae.embed(&x);
        // Intra-clique reconstruction beats the cross pair (0, 9).
        let intra = Gae::edge_probability(&z, 0, 1);
        let cross = Gae::edge_probability(&z, 0, 9);
        assert!(intra > cross, "intra {intra} should exceed cross {cross}");
        assert!(intra > 0.5, "intra edge prob {intra}");
    }

    #[test]
    fn training_reduces_loss() {
        let a = two_cliques();
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(122);
        let x = Matrix::randn(10, 6, 1.0, &mut rng);
        let short = Gae::train(
            &x,
            &a,
            s.clone(),
            &GaeConfig {
                epochs: 2,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(5),
        );
        let long = Gae::train(
            &x,
            &a,
            s,
            &GaeConfig {
                epochs: 150,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(5),
        );
        assert!(
            long.final_loss < short.final_loss,
            "loss did not drop: {} -> {}",
            short.final_loss,
            long.final_loss
        );
    }

    #[test]
    fn embeddings_shape() {
        let a = two_cliques();
        let s = Arc::new(a.sym_normalized_with_self_loops());
        let mut rng = Rng::seed_from_u64(123);
        let x = Matrix::randn(10, 4, 1.0, &mut rng);
        let cfg = GaeConfig {
            embed_dim: 7,
            epochs: 3,
            ..Default::default()
        };
        let mut gae = Gae::train(&x, &a, s, &cfg, &mut rng);
        assert_eq!(gae.embed(&x).shape(), (10, 7));
    }
}
