//! GraphSAGE-style neighbor sampling: per-batch induced CSR blocks for
//! mini-batch GCN training with `O(batch · fanoutᵏ)` memory.
//!
//! A [`NeighborSampler`] expands a sorted seed set outward one hop per GCN
//! layer, materializing at each hop an induced `|L_l| x |L_{l+1}|` operator
//! slice ([`CsrBlock`]) plus its transpose for the backward gather. All
//! buffers are reused across batches, so the steady-state loop allocates
//! nothing.
//!
//! ## Determinism contract
//!
//! Sampling draws from an RNG derived from `(config seed, epoch, batch)`
//! alone and block construction is serial, so a sampled run is a pure
//! function of those three values — thread count never changes which
//! neighbors are drawn, and the downstream block kernels are bitwise
//! deterministic at any thread count (see `gale_tensor::block`).
//!
//! ## Full-fanout parity
//!
//! With a fanout of 0 (= keep every neighbor) each hop copies operator rows
//! verbatim in ascending column order and draws nothing from the RNG. If
//! the seed set is *all* nodes of an operator that stores a diagonal entry
//! in every row (the GCN's `S` always does — self-loops), every layer list
//! is the identity and each block *is* the full operator, entry for entry.
//! Because block products share the full path's per-row accumulation
//! kernel, the sampled path is then bitwise identical to the full-graph
//! path; the proptests in `tests/sampler_parity.rs` pin this at 1/2/8
//! threads.
//!
//! When a fanout `f > 0` truncates a row with `m > f` non-self neighbors,
//! the kept non-self values are scaled by `m / f` (Horvitz–Thompson style,
//! so the sampled propagation is an unbiased estimate of the full one) and
//! the self-loop entry is always kept, unscaled.

use gale_tensor::{CsrBlock, NeighborAccess, Rng};

/// Configuration of a [`NeighborSampler`].
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Per-hop neighbor budgets, outward from the seeds: `fanouts[0]`
    /// bounds the hop feeding the *last* GCN layer. `0` means keep the
    /// full neighborhood. The length fixes the block depth (= number of
    /// GCN layers it can drive).
    pub fanouts: Vec<usize>,
    /// Base seed; combined with `(epoch, batch)` per [`NeighborSampler::sample`].
    pub seed: u64,
}

impl SamplerConfig {
    /// A full-fanout (exact) sampler of the given depth.
    pub fn full(depth: usize, seed: u64) -> Self {
        SamplerConfig {
            fanouts: vec![0; depth],
            seed,
        }
    }
}

/// A sampled k-hop computation block.
///
/// `layers[0]` is the (sorted, deduplicated) seed set — the rows the block
/// ultimately produces output for; `layers[l + 1]` is the frontier feeding
/// hop `l`. `ops[l]` is the induced `|layers[l]| x |layers[l+1]|` operator
/// slice and `ops_t[l]` its transpose (the backward gather operator). All
/// node lists are ascending global ids.
#[derive(Debug, Default)]
pub struct Block {
    /// Node lists per depth, `layers[0]` = seeds.
    pub layers: Vec<Vec<usize>>,
    /// `ops[l]`: induced operator from `layers[l+1]` to `layers[l]`.
    pub ops: Vec<CsrBlock>,
    /// `ops_t[l]`: transpose of `ops[l]`.
    pub ops_t: Vec<CsrBlock>,
}

impl Block {
    /// Number of hops (= GCN layers this block can drive).
    pub fn depth(&self) -> usize {
        self.ops.len()
    }

    /// The seed (output) nodes.
    pub fn seeds(&self) -> &[usize] {
        &self.layers[0]
    }

    /// The innermost frontier — the nodes whose *input features* the
    /// block's forward pass consumes.
    pub fn inputs(&self) -> &[usize] {
        &self.layers[self.layers.len() - 1]
    }
}

/// Materializes per-batch induced CSR blocks over any [`NeighborAccess`]
/// operator (in-memory `SparseMatrix`, the `SymNormalized` adapter, or the
/// memory-mapped store in gale-graph).
pub struct NeighborSampler {
    cfg: SamplerConfig,
    block: Block,
    // Global-id -> frontier-local index, stamped per hop so the O(n) map
    // never needs clearing.
    local_of: Vec<usize>,
    stamp: Vec<u64>,
    generation: u64,
    // Flat kept-entry buffers for the hop under construction.
    kept_cols: Vec<usize>,
    kept_vals: Vec<f64>,
    kept_ptr: Vec<usize>,
    reservoir: Vec<(usize, f64)>,
}

/// Mixes `(seed, epoch, batch)` into one RNG seed (splitmix-style odd
/// multipliers keep nearby indices decorrelated).
fn mix_seed(seed: u64, epoch: usize, batch: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (batch as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

impl NeighborSampler {
    /// Creates a sampler; buffers grow to steady-state size over the first
    /// few batches and are reused afterwards.
    pub fn new(cfg: SamplerConfig) -> Self {
        assert!(!cfg.fanouts.is_empty(), "NeighborSampler: empty fanouts");
        NeighborSampler {
            cfg,
            block: Block::default(),
            local_of: Vec::new(),
            stamp: Vec::new(),
            generation: 0,
            kept_cols: Vec::new(),
            kept_vals: Vec::new(),
            kept_ptr: Vec::new(),
            reservoir: Vec::new(),
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Builds the block for `seeds` (which must be sorted ascending and
    /// deduplicated) at position `(epoch, batch)` of the run. The result
    /// borrows the sampler's reusable buffers and is valid until the next
    /// call.
    pub fn sample<A: NeighborAccess + ?Sized>(
        &mut self,
        a: &A,
        seeds: &[usize],
        epoch: usize,
        batch: usize,
    ) -> &Block {
        debug_assert!(
            seeds.windows(2).all(|w| w[0] < w[1]),
            "NeighborSampler: seeds must be sorted and unique"
        );
        assert!(!seeds.is_empty(), "NeighborSampler: empty seed set");
        let n = a.node_count();
        if self.local_of.len() < n {
            self.local_of.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        let depth = self.cfg.fanouts.len();
        let mut rng = Rng::seed_from_u64(mix_seed(self.cfg.seed, epoch, batch));

        // (Re)shape the block in place.
        self.block.layers.resize_with(depth + 1, Vec::new);
        self.block.ops.resize_with(depth, CsrBlock::new);
        self.block.ops_t.resize_with(depth, CsrBlock::new);
        self.block.layers[0].clear();
        self.block.layers[0].extend_from_slice(seeds);

        let fanouts = self.cfg.fanouts.clone();
        for (l, &fanout) in fanouts.iter().enumerate() {
            self.build_hop(a, l, fanout, &mut rng);
        }
        for l in 0..depth {
            let (ops, ops_t) = (&self.block.ops[l], &mut self.block.ops_t[l]);
            ops.transpose_into(ops_t);
        }
        &self.block
    }

    /// Expands `layers[l]` one hop: samples each node's row, unions the
    /// kept columns into `layers[l+1]`, and fills `ops[l]` with the induced
    /// slice (rows in input order, entries in ascending frontier-local =
    /// ascending global column order).
    fn build_hop<A: NeighborAccess + ?Sized>(
        &mut self,
        a: &A,
        l: usize,
        fanout: usize,
        rng: &mut Rng,
    ) {
        self.kept_cols.clear();
        self.kept_vals.clear();
        self.kept_ptr.clear();
        self.kept_ptr.push(0);

        for i in 0..self.block.layers[l].len() {
            let u = self.block.layers[l][i];
            let reservoir = &mut self.reservoir;
            reservoir.clear();
            let mut self_val: Option<f64> = None;
            let mut m_other = 0usize;
            a.visit_neighbors(u, &mut |c, v| {
                if c == u {
                    self_val = Some(v);
                    return;
                }
                if fanout == 0 || m_other < fanout {
                    reservoir.push((c, v));
                } else {
                    // Reservoir replacement keeps a uniform sample of the
                    // row without knowing its length up front.
                    let j = rng.below(m_other + 1);
                    if j < fanout {
                        reservoir[j] = (c, v);
                    }
                }
                m_other += 1;
            });
            if fanout > 0 && m_other > fanout {
                // Horvitz–Thompson rescale so sampled propagation is an
                // unbiased estimate of the full row sum.
                let factor = m_other as f64 / fanout as f64;
                for (_, v) in self.reservoir.iter_mut() {
                    *v *= factor;
                }
                self.reservoir.sort_unstable_by_key(|&(c, _)| c);
            }
            // Splice the (unscaled) self entry into ascending position.
            let mut placed = self_val.is_none();
            for &(c, v) in self.reservoir.iter() {
                if !placed && c > u {
                    self.kept_cols.push(u);
                    self.kept_vals.push(self_val.unwrap());
                    placed = true;
                }
                self.kept_cols.push(c);
                self.kept_vals.push(v);
            }
            if !placed {
                self.kept_cols.push(u);
                self.kept_vals.push(self_val.unwrap());
            }
            self.kept_ptr.push(self.kept_cols.len());
        }

        // Frontier = sorted union of kept columns.
        let frontier = &mut self.block.layers[l + 1];
        frontier.clear();
        frontier.extend_from_slice(&self.kept_cols);
        frontier.sort_unstable();
        frontier.dedup();
        self.generation += 1;
        for (i, &c) in frontier.iter().enumerate() {
            self.local_of[c] = i;
            self.stamp[c] = self.generation;
        }

        let op = &mut self.block.ops[l];
        op.reset(frontier.len());
        for i in 0..self.kept_ptr.len() - 1 {
            for k in self.kept_ptr[i]..self.kept_ptr[i + 1] {
                let c = self.kept_cols[k];
                debug_assert_eq!(self.stamp[c], self.generation);
                op.push(self.local_of[c], self.kept_vals[k]);
            }
            op.finish_row();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::SparseMatrix;

    fn ring(n: usize) -> SparseMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            t.push((i, j, 1.0));
            t.push((j, i, 1.0));
        }
        SparseMatrix::from_triplets(n, n, t).sym_normalized_with_self_loops()
    }

    #[test]
    fn full_fanout_over_all_seeds_reproduces_operator() {
        let s = ring(12);
        let seeds: Vec<usize> = (0..12).collect();
        let mut sampler = NeighborSampler::new(SamplerConfig::full(2, 1));
        let block = sampler.sample(&s, &seeds, 0, 0);
        assert_eq!(block.depth(), 2);
        for l in 0..3 {
            assert_eq!(block.layers[l], seeds, "layer {l}");
        }
        for op in &block.ops {
            assert_eq!((op.rows(), op.cols(), op.nnz()), (12, 12, s.nnz()));
            for r in 0..12 {
                let got: Vec<(usize, u64)> =
                    op.row_iter(r).map(|(c, v)| (c, v.to_bits())).collect();
                let want: Vec<(usize, u64)> =
                    s.row_iter(r).map(|(c, v)| (c, v.to_bits())).collect();
                assert_eq!(got, want, "row {r}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed_epoch_batch() {
        let s = ring(40);
        let seeds = [3usize, 7, 20, 33];
        let cfg = SamplerConfig {
            fanouts: vec![2, 2],
            seed: 9,
        };
        let collect = |sampler: &mut NeighborSampler| {
            let b = sampler.sample(&s, &seeds, 4, 2);
            (
                b.layers.clone(),
                b.ops
                    .iter()
                    .map(|op| {
                        (0..op.rows())
                            .flat_map(|r| op.row_iter(r).map(|(c, v)| (c, v.to_bits())))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let a = collect(&mut NeighborSampler::new(cfg.clone()));
        let b = collect(&mut NeighborSampler::new(cfg.clone()));
        assert_eq!(a, b);
        // A different batch index draws a different sample (on a graph
        // with enough neighbors to truncate).
        let c = {
            let mut sampler = NeighborSampler::new(cfg);
            let blk = sampler.sample(&s, &seeds, 4, 3);
            blk.ops[0]
                .row_iter(0)
                .map(|(c, _)| c)
                .collect::<Vec<usize>>()
        };
        let _ = c; // different draw is likely but not guaranteed on a ring
    }

    #[test]
    fn fanout_truncates_and_rescales() {
        // Star: node 0 joined to 1..=8; sampling 2 of 8 neighbors must
        // rescale kept values by 4 and always keep the self-loop.
        let mut t = Vec::new();
        for i in 1..=8usize {
            t.push((0, i, 1.0));
            t.push((i, 0, 1.0));
        }
        let s = SparseMatrix::from_triplets(9, 9, t).sym_normalized_with_self_loops();
        let mut sampler = NeighborSampler::new(SamplerConfig {
            fanouts: vec![2],
            seed: 5,
        });
        let block = sampler.sample(&s, &[0], 0, 0);
        let op = &block.ops[0];
        assert_eq!(op.rows(), 1);
        assert_eq!(op.nnz(), 3, "2 sampled neighbors + self");
        let frontier = &block.layers[1];
        assert!(frontier.contains(&0), "self always kept");
        let full_row: Vec<(usize, f64)> = s.row_iter(0).collect();
        for (lc, v) in op.row_iter(0) {
            let gc = frontier[lc];
            let orig = full_row.iter().find(|&&(c, _)| c == gc).unwrap().1;
            if gc == 0 {
                assert_eq!(v.to_bits(), orig.to_bits(), "self entry unscaled");
            } else {
                assert!((v - orig * 4.0).abs() < 1e-12, "rescale by m/f");
            }
        }
    }

    #[test]
    fn transposes_match_ops() {
        let s = ring(20);
        let mut sampler = NeighborSampler::new(SamplerConfig {
            fanouts: vec![2, 2],
            seed: 3,
        });
        let block = sampler.sample(&s, &[1, 5, 6, 17], 1, 0);
        for (op, opt) in block.ops.iter().zip(&block.ops_t) {
            assert_eq!((opt.rows(), opt.cols()), (op.cols(), op.rows()));
            for r in 0..op.rows() {
                for (c, v) in op.row_iter(r) {
                    let found = opt.row_iter(c).any(|(rr, vv)| rr == r && vv == v);
                    assert!(found, "transpose missing ({r},{c})");
                }
            }
        }
    }
}
