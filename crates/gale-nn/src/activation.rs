//! Element-wise activation layers.

use crate::checkpoint::LayerState;
use crate::layer::Layer;
use gale_tensor::{Element, Matrix};

/// The supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x for x > 0, `alpha * x` otherwise (alpha fixed at 0.2, the common
    /// GAN discriminator choice).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no-op, useful for output layers).
    Identity,
}

const LEAKY_SLOPE: f64 = 0.2;

impl Activation {
    /// Stable identifier used by the checkpoint format.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Identity => "identity",
        }
    }

    /// Inverse of [`Activation::name`]; `None` for unknown identifiers.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "relu" => Activation::Relu,
            "leaky_relu" => Activation::LeakyRelu,
            "tanh" => Activation::Tanh,
            "sigmoid" => Activation::Sigmoid,
            "identity" => Activation::Identity,
            _ => return None,
        })
    }

    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    LEAKY_SLOPE * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// [`Activation::apply`] over a generic kernel element. For `f64` this
    /// is operation-for-operation identical to `apply` (same comparisons,
    /// same constants), so the f64 inference path stays bitwise equal to
    /// training-mode evaluation; for `f32` it is the single-precision
    /// analogue with the slope rounded once at compile of the constant.
    #[inline]
    pub fn apply_e<E: Element>(self, x: E) -> E {
        match self {
            Activation::Relu => x.max_e(E::ZERO),
            Activation::LeakyRelu => {
                if x > E::ZERO {
                    x
                } else {
                    E::from_f64(LEAKY_SLOPE) * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => E::ONE / (E::ONE + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *input* `x` and *output* `y`
    /// (whichever is cheaper per function).
    #[inline]
    fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    LEAKY_SLOPE
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// An activation as a standalone [`Layer`].
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    act: Activation,
    cached_in: Matrix,
    cached_out: Matrix,
}

impl ActivationLayer {
    /// Wraps an activation function as a layer.
    pub fn new(act: Activation) -> Self {
        ActivationLayer {
            act,
            cached_in: Matrix::zeros(0, 0),
            cached_out: Matrix::zeros(0, 0),
        }
    }

    /// The wrapped activation function.
    pub fn activation(&self) -> Activation {
        self.act
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, train, &mut out);
        out
    }

    fn forward_into(&mut self, x: &Matrix, _train: bool, out: &mut Matrix) {
        self.cached_in.copy_from(x);
        self.cached_out.copy_from(x);
        for v in self.cached_out.data_mut() {
            *v = self.act.apply(*v);
        }
        out.copy_from(&self.cached_out);
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(
            grad_out.shape(),
            self.cached_in.shape(),
            "ActivationLayer::backward before forward or shape changed"
        );
        grad_in.copy_from(grad_out);
        for i in 0..grad_in.data().len() {
            let x = self.cached_in.data()[i];
            let y = self.cached_out.data()[i];
            grad_in.data_mut()[i] *= self.act.derivative(x, y);
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn state(&self) -> Option<LayerState> {
        Some(LayerState::Activation { act: self.act })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::input_gradient_error;
    use gale_tensor::Rng;

    #[test]
    fn scalar_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::LeakyRelu.apply(-1.0) + 0.2).abs() < 1e-12);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(41);
        // Offset from 0 so ReLU's kink doesn't spoil the numeric check.
        let x = Matrix::randn(4, 5, 1.0, &mut rng).map(|v| v + 0.51 * v.signum());
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut layer = ActivationLayer::new(act);
            let err = input_gradient_error(&mut layer, &x, 1e-6);
            assert!(err < 1e-6, "{act:?}: gradient error {err}");
        }
    }

    #[test]
    fn sigmoid_saturates_sanely() {
        let s = Activation::Sigmoid;
        assert!(s.apply(40.0) > 0.999_999);
        assert!(s.apply(-40.0) < 1e-6);
        assert!(s.apply(-800.0) >= 0.0); // no overflow panic
    }
}
