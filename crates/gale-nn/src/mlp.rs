//! Sequential multi-layer perceptron container.

use crate::activation::{Activation, ActivationLayer};
use crate::batchnorm::BatchNorm;
use crate::checkpoint::LayerState;
use crate::dropout::Dropout;
use crate::layer::Layer;
use crate::linear::Linear;
use gale_tensor::{Matrix, Rng};

/// A sequential stack of layers trained with manual backprop.
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
    /// Output of each layer from the most recent forward pass. Persistent
    /// buffers: each forward pass writes into the same storage, so steady
    /// state training allocates nothing here.
    taps: Vec<Matrix>,
    /// Ping-pong gradient scratch reused by every backward pass.
    gbuf_a: Matrix,
    gbuf_b: Matrix,
}

impl Mlp {
    /// Creates an empty network.
    pub fn new() -> Self {
        Mlp {
            layers: Vec::new(),
            taps: Vec::new(),
            gbuf_a: Matrix::zeros(0, 0),
            gbuf_b: Matrix::zeros(0, 0),
        }
    }

    /// Appends any layer.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer (checkpoint reconstruction path).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Serializable snapshot of each layer, in stack order. `None` entries
    /// mark layer types without checkpoint support.
    pub fn layer_states(&self) -> Vec<Option<LayerState>> {
        self.layers.iter().map(|l| l.state()).collect()
    }

    /// Convenience constructor: dense layers of the given sizes with the
    /// chosen hidden activation, optional batch-norm, and dropout after each
    /// hidden layer. The output layer is linear (no activation).
    ///
    /// `sizes` must list at least input and output dims, e.g. `[64, 32, 3]`.
    pub fn dense(
        sizes: &[usize],
        hidden_act: Activation,
        batch_norm: bool,
        dropout_p: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!(sizes.len() >= 2, "Mlp::dense: need at least in/out sizes");
        let mut net = Mlp::new();
        for w in 0..sizes.len() - 1 {
            let last = w == sizes.len() - 2;
            net = net.push(Linear::new(sizes[w], sizes[w + 1], rng));
            if !last {
                if batch_norm {
                    net = net.push(BatchNorm::new(sizes[w + 1]));
                }
                net = net.push(ActivationLayer::new(hidden_act));
                if dropout_p > 0.0 {
                    net = net.push(Dropout::new(dropout_p, rng.fork()));
                }
            }
        }
        net
    }

    /// Number of layers in the stack.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Output of layer `i` from the most recent forward pass.
    ///
    /// GALE taps an intermediate discriminator layer both for the feature-
    /// matching loss and for the node embeddings `H_n(X_R)` handed to query
    /// selection.
    pub fn tap(&self, i: usize) -> &Matrix {
        &self.taps[i]
    }

    /// Index of the last hidden activation before the final linear layer —
    /// the conventional feature-matching tap.
    pub fn last_hidden_index(&self) -> usize {
        self.layers.len().saturating_sub(2)
    }

    /// Forward pass that returns a borrow of the final tap instead of a
    /// fresh matrix — the allocation-free path for training loops (the taps
    /// are persistent buffers reused across calls).
    pub fn forward_inplace(&mut self, x: &Matrix, train: bool) -> &Matrix {
        let live = gale_obs::enabled();
        let t = if live {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let depth = self.layers.len().max(1);
        if self.taps.len() != depth {
            self.taps.resize_with(depth, || Matrix::zeros(0, 0));
        }
        if self.layers.is_empty() {
            self.taps[0].copy_from(x);
        }
        for i in 0..self.layers.len() {
            let (prev, cur) = self.taps.split_at_mut(i);
            let input: &Matrix = if i == 0 { x } else { &prev[i - 1] };
            self.layers[i].forward_into(input, train, &mut cur[0]);
        }
        if let Some(t) = t {
            gale_obs::hist_record!(
                "nn.forward_us",
                gale_obs::metrics::buckets::TIME_US,
                t.elapsed().as_micros() as f64
            );
        }
        self.taps.last().expect("taps sized above")
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Mlp::new()
    }
}

impl Layer for Mlp {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        self.forward_inplace(x, train).clone()
    }

    fn forward_into(&mut self, x: &Matrix, train: bool, out: &mut Matrix) {
        self.forward_inplace(x, train);
        out.copy_from(self.taps.last().expect("taps sized by forward_inplace"));
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        let live = gale_obs::enabled();
        let t = if live {
            Some(std::time::Instant::now())
        } else {
            None
        };
        if live {
            let norm = grad_out.frobenius_norm();
            gale_obs::hist_record!("nn.grad_norm", gale_obs::metrics::buckets::NORM, norm);
            gale_obs::gauge_set!("nn.grad_norm.last", norm);
        }
        match self.layers.len() {
            0 => grad_in.copy_from(grad_out),
            n => {
                self.layers[n - 1].backward_into(grad_out, &mut self.gbuf_a);
                for i in (0..n - 1).rev() {
                    self.layers[i].backward_into(&self.gbuf_a, &mut self.gbuf_b);
                    std::mem::swap(&mut self.gbuf_a, &mut self.gbuf_b);
                }
                grad_in.copy_from(&self.gbuf_a);
            }
        }
        if let Some(t) = t {
            gale_obs::hist_record!(
                "nn.backward_us",
                gale_obs::metrics::buckets::TIME_US,
                t.elapsed().as_micros() as f64
            );
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

/// Backward pass starting from an intermediate tap: propagates `grad` from
/// layer `tap_index` down to the input, skipping the layers above it.
///
/// Used by the generator's feature-matching update, whose loss is defined on
/// an intermediate discriminator layer rather than on the logits.
pub fn backward_from_tap(net: &mut Mlp, tap_index: usize, grad: &Matrix) -> Matrix {
    let mut g = Matrix::zeros(0, 0);
    backward_from_tap_into(net, tap_index, grad, &mut g);
    g
}

/// [`backward_from_tap`] writing into a caller-owned buffer; the
/// intermediate gradients ping-pong through the network's persistent
/// scratch, so the pass allocates nothing in steady state.
pub fn backward_from_tap_into(net: &mut Mlp, tap_index: usize, grad: &Matrix, out: &mut Matrix) {
    net.gbuf_a.copy_from(grad);
    for i in (0..=tap_index).rev() {
        net.layers[i].backward_into(&net.gbuf_a, &mut net.gbuf_b);
        std::mem::swap(&mut net.gbuf_a, &mut net.gbuf_b);
    }
    out.copy_from(&net.gbuf_a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::input_gradient_error;

    #[test]
    fn dense_builder_shapes() {
        let mut rng = Rng::seed_from_u64(81);
        let mut net = Mlp::dense(&[10, 16, 8, 3], Activation::Relu, false, 0.0, &mut rng);
        let x = Matrix::randn(5, 10, 1.0, &mut rng);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), (5, 3));
        // 3 linear + 2 activation layers.
        assert_eq!(net.depth(), 5);
    }

    #[test]
    fn gradient_through_whole_stack() {
        let mut rng = Rng::seed_from_u64(82);
        let mut net = Mlp::dense(&[6, 8, 4], Activation::Tanh, false, 0.0, &mut rng);
        let x = Matrix::randn(3, 6, 1.0, &mut rng);
        let err = input_gradient_error(&mut net, &x, 1e-6);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn taps_record_layer_outputs() {
        let mut rng = Rng::seed_from_u64(83);
        let mut net = Mlp::dense(&[4, 8, 2], Activation::Relu, false, 0.0, &mut rng);
        let x = Matrix::randn(2, 4, 1.0, &mut rng);
        let y = net.forward(&x, false);
        assert_eq!(net.tap(net.depth() - 1), &y);
        assert_eq!(net.tap(net.last_hidden_index()).shape(), (2, 8));
    }

    #[test]
    fn training_reduces_regression_loss() {
        // Tiny end-to-end sanity: fit y = sum(x) with SGD-style updates.
        let mut rng = Rng::seed_from_u64(84);
        let mut net = Mlp::dense(&[3, 16, 1], Activation::Tanh, false, 0.0, &mut rng);
        let x = Matrix::randn(64, 3, 1.0, &mut rng);
        let target: Vec<f64> = (0..64).map(|r| x.row(r).iter().sum::<f64>()).collect();

        let loss = |net: &mut Mlp, x: &Matrix, t: &[f64]| {
            let y = net.forward(x, true);
            let mut g = Matrix::zeros(64, 1);
            let mut l = 0.0;
            for r in 0..64 {
                let d = y[(r, 0)] - t[r];
                l += 0.5 * d * d;
                g[(r, 0)] = d / 64.0;
            }
            (l / 64.0, g)
        };

        let (initial, _) = loss(&mut net, &x, &target);
        for _ in 0..300 {
            let (_, g) = loss(&mut net, &x, &target);
            net.zero_grad();
            let _ = net.backward(&g);
            net.visit_params(&mut |p, gr| p.axpy(-0.1, gr));
        }
        let (final_loss, _) = loss(&mut net, &x, &target);
        assert!(
            final_loss < initial * 0.1,
            "loss {initial} -> {final_loss} did not drop"
        );
    }

    #[test]
    fn backward_from_tap_matches_manual_truncation() {
        let mut rng = Rng::seed_from_u64(85);
        let mut full = Mlp::dense(&[4, 6, 2], Activation::Tanh, false, 0.0, &mut rng);
        let x = Matrix::randn(3, 4, 1.0, &mut rng);
        let _ = full.forward(&x, false);
        let tap = full.last_hidden_index(); // activation after first linear
        let h = full.tap(tap).clone();
        let g = h.scaled(1.0); // pretend dL/dh = h
        full.zero_grad();
        let gin = backward_from_tap(&mut full, tap, &g);
        assert_eq!(gin.shape(), x.shape());
        // Gradients on the output layer must remain zero (untouched).
        let mut visited = Vec::new();
        full.visit_params(&mut |p, gr| visited.push((p.shape(), gr.max_abs())));
        // Last two params (output Linear's W and b) have zero grads.
        assert_eq!(visited[visited.len() - 1].1, 0.0);
        assert_eq!(visited[visited.len() - 2].1, 0.0);
        // First linear's grads are non-zero.
        assert!(visited[0].1 > 0.0);
    }
}
