//! # gale-nn
//!
//! Manual-gradient neural networks for the GALE reproduction: dense layers,
//! activations, dropout, batch norm, GCN, a graph autoencoder, the SGAN loss
//! functions of Section IV, Adam, and hash-based token embeddings.
//!
//! Everything is `f64` on CPU with explicit backprop (no autograd), traded
//! off deliberately: the paper's experiments depend on the training
//! *objectives*, not GPU throughput, and a hand-derived backward pass keeps
//! the whole stack dependency-free and deterministic. Every layer's gradient
//! is validated against central finite differences in its module tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod activation;
pub mod batchnorm;
pub mod checkpoint;
pub mod dropout;
pub mod embedding;
pub mod gae;
pub mod gcn;
pub mod infer;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod sampler;

pub use activation::{Activation, ActivationLayer};
pub use batchnorm::BatchNorm;
pub use checkpoint::{CkptError, LayerState};
pub use dropout::Dropout;
pub use embedding::HashEmbedder;
pub use gae::{Gae, GaeConfig, MiniBatchConfig};
pub use gcn::{Gcn, GcnLayer};
pub use infer::{GaeInfer, GcnInfer, InferLayer, InferNet};
pub use layer::Layer;
pub use linear::Linear;
pub use loss::{
    bce_with_logit_grad, feature_matching_loss, sgan_unsupervised_loss, softmax_cross_entropy,
};
pub use mlp::{backward_from_tap, backward_from_tap_into, Mlp};
pub use optim::{Adam, Sgd};
pub use sampler::{Block, NeighborSampler, SamplerConfig};
