//! Batch normalization (per-feature), as used inside the paper's generator
//! and discriminator stacks.

use crate::checkpoint::LayerState;
use crate::layer::Layer;
use gale_tensor::Matrix;

/// Per-feature batch normalization with learnable scale/shift and running
/// statistics for evaluation mode.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Matrix, // 1 x d
    beta: Matrix,  // 1 x d
    g_gamma: Matrix,
    g_beta: Matrix,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
    // Forward caches for backward.
    x_hat: Matrix,
    std_inv: Vec<f64>,
    train_pass: bool,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `dim` features.
    pub fn new(dim: usize) -> Self {
        BatchNorm {
            gamma: Matrix::full(1, dim, 1.0),
            beta: Matrix::zeros(1, dim),
            g_gamma: Matrix::zeros(1, dim),
            g_beta: Matrix::zeros(1, dim),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.9,
            eps: 1e-5,
            x_hat: Matrix::zeros(0, 0),
            std_inv: Vec::new(),
            train_pass: false,
        }
    }

    /// Rebuilds a layer from checkpointed parameters and running statistics.
    /// All per-feature inputs must agree on the dimensionality.
    pub fn from_parts(
        gamma: Matrix,
        beta: Matrix,
        running_mean: Vec<f64>,
        running_var: Vec<f64>,
        momentum: f64,
        eps: f64,
    ) -> Self {
        let d = gamma.cols();
        assert_eq!(gamma.rows(), 1, "BatchNorm::from_parts: gamma must be 1xd");
        assert_eq!(
            beta.shape(),
            (1, d),
            "BatchNorm::from_parts: beta shape {:?} != (1, {d})",
            beta.shape()
        );
        assert_eq!(running_mean.len(), d, "BatchNorm::from_parts: mean len");
        assert_eq!(running_var.len(), d, "BatchNorm::from_parts: var len");
        BatchNorm {
            g_gamma: Matrix::zeros(1, d),
            g_beta: Matrix::zeros(1, d),
            gamma,
            beta,
            running_mean,
            running_var,
            momentum,
            eps,
            x_hat: Matrix::zeros(0, 0),
            std_inv: Vec::new(),
            train_pass: false,
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, train, &mut out);
        out
    }

    fn forward_into(&mut self, x: &Matrix, train: bool, out: &mut Matrix) {
        let (n, d) = x.shape();
        assert_eq!(d, self.gamma.cols(), "BatchNorm: dim mismatch");
        self.train_pass = train;
        // Batch statistics live in `batch`; eval mode reads the running
        // statistics directly instead of cloning them.
        let batch = if train && n > 1 {
            let mean = x.mean_rows();
            let mut var = vec![0.0; d];
            for r in 0..n {
                for (c, (&xv, m)) in x.row(r).iter().zip(&mean).enumerate() {
                    let dlt = xv - m;
                    var[c] += dlt * dlt;
                }
            }
            for v in &mut var {
                *v /= n as f64;
            }
            // Update running statistics.
            for c in 0..d {
                self.running_mean[c] =
                    self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean[c];
                self.running_var[c] =
                    self.momentum * self.running_var[c] + (1.0 - self.momentum) * var[c];
            }
            Some((mean, var))
        } else {
            None
        };
        let (mean, var): (&[f64], &[f64]) = match &batch {
            Some((m, v)) => (m, v),
            None => (&self.running_mean, &self.running_var),
        };

        self.std_inv.clear();
        self.std_inv
            .extend(var.iter().map(|v| 1.0 / (v + self.eps).sqrt()));
        self.x_hat.copy_from(x);
        for r in 0..n {
            for (c, xv) in self.x_hat.row_mut(r).iter_mut().enumerate() {
                *xv = (*xv - mean[c]) * self.std_inv[c];
            }
        }
        out.copy_from(&self.x_hat);
        for r in 0..n {
            for (c, o) in out.row_mut(r).iter_mut().enumerate() {
                *o = *o * self.gamma[(0, c)] + self.beta[(0, c)];
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        let (n, d) = grad_out.shape();
        assert_eq!(self.x_hat.shape(), (n, d), "BatchNorm::backward shape");
        // Parameter gradients.
        for c in 0..d {
            let mut gg = 0.0;
            let mut gb = 0.0;
            for r in 0..n {
                gg += grad_out[(r, c)] * self.x_hat[(r, c)];
                gb += grad_out[(r, c)];
            }
            self.g_gamma[(0, c)] += gg;
            self.g_beta[(0, c)] += gb;
        }
        if !self.train_pass || n <= 1 {
            // Eval mode: statistics are constants; dx = g * gamma * std_inv.
            grad_in.copy_from(grad_out);
            for r in 0..n {
                for (c, v) in grad_in.row_mut(r).iter_mut().enumerate() {
                    *v *= self.gamma[(0, c)] * self.std_inv[c];
                }
            }
            return;
        }
        // Train mode: full batch-norm backward.
        // dx_hat = g * gamma
        // dx = (1/n) std_inv * (n dx_hat - sum(dx_hat) - x_hat * sum(dx_hat*x_hat))
        grad_in.resize(n, d);
        for c in 0..d {
            let gamma = self.gamma[(0, c)];
            let mut sum_dxh = 0.0;
            let mut sum_dxh_xh = 0.0;
            for r in 0..n {
                let dxh = grad_out[(r, c)] * gamma;
                sum_dxh += dxh;
                sum_dxh_xh += dxh * self.x_hat[(r, c)];
            }
            let inv_n = 1.0 / n as f64;
            for r in 0..n {
                let dxh = grad_out[(r, c)] * gamma;
                grad_in[(r, c)] = self.std_inv[c]
                    * inv_n
                    * (n as f64 * dxh - sum_dxh - self.x_hat[(r, c)] * sum_dxh_xh);
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.gamma, &mut self.g_gamma);
        f(&mut self.beta, &mut self.g_beta);
    }

    fn state(&self) -> Option<LayerState> {
        Some(LayerState::BatchNorm {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            momentum: self.momentum,
            eps: self.eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::Rng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = Rng::seed_from_u64(71);
        let mut bn = BatchNorm::new(3);
        let x = Matrix::randn(200, 3, 5.0, &mut rng).map(|v| v + 10.0);
        let y = bn.forward(&x, true);
        let mean = y.mean_rows();
        for m in &mean {
            assert!(m.abs() < 1e-9, "mean {m}");
        }
        for c in 0..3 {
            let col = y.col(c);
            let var = gale_tensor::stats::variance(&col);
            assert!((var - 1.0).abs() < 0.01, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = Rng::seed_from_u64(72);
        let mut bn = BatchNorm::new(2);
        // Warm up the running stats.
        for _ in 0..200 {
            let x = Matrix::randn(32, 2, 2.0, &mut rng).map(|v| v + 4.0);
            let _ = bn.forward(&x, true);
        }
        let x = Matrix::randn(32, 2, 2.0, &mut rng).map(|v| v + 4.0);
        let y = bn.forward(&x, false);
        let mean = y.mean_rows();
        // Approximately normalized through running statistics.
        for m in &mean {
            assert!(m.abs() < 0.3, "eval mean {m}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from_u64(73);
        let mut bn = BatchNorm::new(3);
        let x = Matrix::randn(6, 3, 1.0, &mut rng);

        let y = bn.forward(&x, true);
        let analytic = bn.backward(&y);

        let eps = 1e-6;
        let mut xp = x.clone();
        let mut max_err = 0.0f64;
        for r in 0..6 {
            for c in 0..3 {
                let orig = xp[(r, c)];
                xp[(r, c)] = orig + eps;
                let lp = 0.5
                    * bn.forward(&xp, true)
                        .data()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f64>();
                xp[(r, c)] = orig - eps;
                let lm = 0.5
                    * bn.forward(&xp, true)
                        .data()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f64>();
                xp[(r, c)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                max_err = max_err.max((numeric - analytic[(r, c)]).abs());
            }
        }
        // Running-stat updates perturb the loss surface slightly between
        // calls; the bound is looser than for stateless layers.
        assert!(max_err < 1e-3, "gradient error {max_err}");
    }

    #[test]
    fn learnable_scale_shift_applied() {
        let mut bn = BatchNorm::new(1);
        bn.gamma = Matrix::from_vec(1, 1, vec![3.0]);
        bn.beta = Matrix::from_vec(1, 1, vec![-1.0]);
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let y = bn.forward(&x, true);
        let mean = y.mean_rows()[0];
        assert!(
            (mean + 1.0).abs() < 1e-9,
            "mean should equal beta, got {mean}"
        );
    }
}
