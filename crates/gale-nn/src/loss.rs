//! Loss functions of Section IV: masked softmax cross-entropy (supervised
//! loss `L_s`), the GAN real/synthetic terms (unsupervised loss `L_u`), and
//! the generator's feature-matching loss `L(G)`.

use gale_tensor::Matrix;

/// Softmax cross-entropy over selected rows.
///
/// `logits` is `n x c`; `targets` pairs a row index with its class. Returns
/// the mean loss over the selected rows and the gradient dL/dlogits (zero on
/// unselected rows) — the masked form GALE uses because only labeled nodes
/// contribute to `L_s`.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[(usize, usize)]) -> (f64, Matrix) {
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    if targets.is_empty() {
        return (0.0, grad);
    }
    let probs = logits.softmax_rows();
    let inv = 1.0 / targets.len() as f64;
    let mut loss = 0.0;
    for &(row, class) in targets {
        assert!(
            class < logits.cols(),
            "softmax_cross_entropy: class {class}"
        );
        let p = probs[(row, class)].max(1e-12);
        loss -= p.ln();
        for c in 0..logits.cols() {
            grad[(row, c)] += (probs[(row, c)] - f64::from(u8::from(c == class))) * inv;
        }
    }
    (loss * inv, grad)
}

/// The semi-supervised GAN unsupervised loss for a 3-class discriminator
/// whose class `synthetic_class` marks generated samples (Eq. 1's second and
/// third terms).
///
/// * `real_logits`: rows drawn from the real distribution — pushed to have
///   `P(y <= 2 | x)` high, i.e. `1 - P(synthetic)` high.
/// * `fake_logits`: generated rows — pushed toward the synthetic class.
///
/// Returns `(loss, grad_real, grad_fake)` with means taken per batch.
pub fn sgan_unsupervised_loss(
    real_logits: &Matrix,
    fake_logits: &Matrix,
    synthetic_class: usize,
) -> (f64, Matrix, Matrix) {
    let c = real_logits.cols();
    assert!(synthetic_class < c, "sgan_unsupervised_loss: bad class");
    let mut loss = 0.0;

    // Real term: -log(1 - P(synthetic | x)).
    let real_probs = real_logits.softmax_rows();
    let mut grad_real = Matrix::zeros(real_logits.rows(), c);
    if real_logits.rows() > 0 {
        let inv = 1.0 / real_logits.rows() as f64;
        for r in 0..real_logits.rows() {
            let ps = real_probs[(r, synthetic_class)].min(1.0 - 1e-12);
            loss -= (1.0 - ps).ln() * inv;
            // d(-log(1-p_s))/dz_j = p_s * (softmax_j - [j == s]) / (1 - p_s)
            // ... which simplifies to p_s/(1-p_s) * (p_j - δ_js) * (-1)^... ;
            // derive directly: L = -log(1 - p_s), dL/dp_s = 1/(1-p_s),
            // dp_s/dz_j = p_s (δ_js - p_j)  =>
            // dL/dz_j = p_s (δ_js - p_j) / (1 - p_s).
            let factor = ps / (1.0 - ps);
            for j in 0..c {
                let delta = f64::from(u8::from(j == synthetic_class));
                grad_real[(r, j)] = factor * (delta - real_probs[(r, j)]) * inv;
            }
        }
    }

    // Fake term: -log(P(synthetic | x)).
    let fake_probs = fake_logits.softmax_rows();
    let mut grad_fake = Matrix::zeros(fake_logits.rows(), c);
    if fake_logits.rows() > 0 {
        let inv = 1.0 / fake_logits.rows() as f64;
        for r in 0..fake_logits.rows() {
            let ps = fake_probs[(r, synthetic_class)].max(1e-12);
            loss -= ps.ln() * inv;
            // dL/dz_j = p_j - δ_js (standard CE toward the synthetic class).
            for j in 0..c {
                let delta = f64::from(u8::from(j == synthetic_class));
                grad_fake[(r, j)] = (fake_probs[(r, j)] - delta) * inv;
            }
        }
    }
    (loss, grad_real, grad_fake)
}

/// Feature-matching loss of Section IV:
/// `L(G) = || E[h(x_real)] - E[h(G(z))] ||^2`.
///
/// Returns the loss and dL/dh_fake (an `n_fake x d` matrix); the gradient on
/// the real side is not needed because only `G` descends this loss.
pub fn feature_matching_loss(h_real: &Matrix, h_fake: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        h_real.cols(),
        h_fake.cols(),
        "feature_matching_loss: dim mismatch"
    );
    let mu_real = h_real.mean_rows();
    let mu_fake = h_fake.mean_rows();
    let diff: Vec<f64> = mu_fake.iter().zip(&mu_real).map(|(f, r)| f - r).collect();
    let loss: f64 = diff.iter().map(|d| d * d).sum();
    // dL/dh_fake[r][c] = 2 * diff[c] / n_fake.
    let n = h_fake.rows().max(1) as f64;
    let mut grad = Matrix::zeros(h_fake.rows(), h_fake.cols());
    for r in 0..h_fake.rows() {
        for (c, g) in grad.row_mut(r).iter_mut().enumerate() {
            *g = 2.0 * diff[c] / n;
        }
    }
    (loss, grad)
}

/// Binary cross-entropy on a probability (already sigmoided), with the
/// gradient w.r.t. the *logit* folded in: for `p = σ(z)` and target `y`,
/// `dL/dz = p - y`. Used by the graph autoencoder's edge reconstruction.
#[inline]
pub fn bce_with_logit_grad(p: f64, y: f64) -> (f64, f64) {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    let loss = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
    (loss, p - y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::Rng;

    fn numeric_grad(logits: &Matrix, f: &dyn Fn(&Matrix) -> f64, r: usize, c: usize) -> f64 {
        let eps = 1e-6;
        let mut lp = logits.clone();
        lp[(r, c)] += eps;
        let mut lm = logits.clone();
        lm[(r, c)] -= eps;
        (f(&lp) - f(&lm)) / (2.0 * eps)
    }

    #[test]
    fn ce_perfect_prediction_near_zero_loss() {
        let logits = Matrix::from_vec(2, 3, vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[(0, 0), (1, 1)]);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn ce_gradient_matches_numeric() {
        let mut rng = Rng::seed_from_u64(101);
        let logits = Matrix::randn(4, 3, 1.0, &mut rng);
        let targets = vec![(0usize, 2usize), (2, 0), (3, 1)];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let f = |l: &Matrix| softmax_cross_entropy(l, &targets).0;
        for r in 0..4 {
            for c in 0..3 {
                let n = numeric_grad(&logits, &f, r, c);
                assert!(
                    (n - grad[(r, c)]).abs() < 1e-6,
                    "grad[{r},{c}] numeric {n} vs {}",
                    grad[(r, c)]
                );
            }
        }
        // Unlabeled row 1 receives no gradient.
        assert_eq!(grad.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn ce_empty_targets() {
        let logits = Matrix::zeros(2, 3);
        let (loss, grad) = softmax_cross_entropy(&logits, &[]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn sgan_unsup_gradients_match_numeric() {
        let mut rng = Rng::seed_from_u64(102);
        let real = Matrix::randn(3, 3, 1.0, &mut rng);
        let fake = Matrix::randn(2, 3, 1.0, &mut rng);
        let (_, greal, gfake) = sgan_unsupervised_loss(&real, &fake, 2);

        let f_real = |l: &Matrix| sgan_unsupervised_loss(l, &fake, 2).0;
        for r in 0..3 {
            for c in 0..3 {
                let n = numeric_grad(&real, &f_real, r, c);
                assert!(
                    (n - greal[(r, c)]).abs() < 1e-6,
                    "real grad[{r},{c}] {n} vs {}",
                    greal[(r, c)]
                );
            }
        }
        let f_fake = |l: &Matrix| sgan_unsupervised_loss(&real, l, 2).0;
        for r in 0..2 {
            for c in 0..3 {
                let n = numeric_grad(&fake, &f_fake, r, c);
                assert!(
                    (n - gfake[(r, c)]).abs() < 1e-6,
                    "fake grad[{r},{c}] {n} vs {}",
                    gfake[(r, c)]
                );
            }
        }
    }

    #[test]
    fn sgan_unsup_loss_direction() {
        // A discriminator that confidently marks real as non-synthetic and
        // fake as synthetic has near-zero loss.
        let real = Matrix::from_vec(1, 3, vec![10.0, 10.0, -20.0]);
        let fake = Matrix::from_vec(1, 3, vec![-20.0, -20.0, 10.0]);
        let (good, _, _) = sgan_unsupervised_loss(&real, &fake, 2);
        let (bad, _, _) = sgan_unsupervised_loss(&fake, &real, 2);
        assert!(good < 1e-6);
        assert!(bad > 5.0);
    }

    #[test]
    fn feature_matching_zero_when_means_match() {
        let h = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let g = Matrix::from_vec(4, 2, vec![2.0, 3.0, 2.0, 3.0, 2.0, 3.0, 2.0, 3.0]);
        let (loss, grad) = feature_matching_loss(&h, &g);
        assert!(loss < 1e-12);
        assert!(grad.max_abs() < 1e-12);
    }

    #[test]
    fn feature_matching_gradient_matches_numeric() {
        let mut rng = Rng::seed_from_u64(103);
        let h_real = Matrix::randn(5, 3, 1.0, &mut rng);
        let h_fake = Matrix::randn(4, 3, 1.0, &mut rng);
        let (_, grad) = feature_matching_loss(&h_real, &h_fake);
        let f = |hf: &Matrix| feature_matching_loss(&h_real, hf).0;
        for r in 0..4 {
            for c in 0..3 {
                let n = numeric_grad(&h_fake, &f, r, c);
                assert!(
                    (n - grad[(r, c)]).abs() < 1e-6,
                    "grad[{r},{c}] {n} vs {}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn bce_behaviour() {
        let (l0, g0) = bce_with_logit_grad(0.9, 1.0);
        assert!(l0 < 0.2);
        assert!(g0 < 0.0); // push logit up? p - y = -0.1 -> increase z. Yes.
        let (l1, g1) = bce_with_logit_grad(0.9, 0.0);
        assert!(l1 > 2.0);
        assert!(g1 > 0.0);
        // Clamping protects the extremes.
        let (lc, _) = bce_with_logit_grad(0.0, 1.0);
        assert!(lc.is_finite());
    }
}
