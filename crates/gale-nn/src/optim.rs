//! Optimizers: Adam (the paper's choice, Section IV) and plain SGD.

use crate::layer::Layer;
use gale_tensor::Matrix;

/// Adam optimizer with optional learning-rate decay ("reduce learning rate
/// β" in procedure SGAN, Fig. 4).
pub struct Adam {
    /// Current learning rate.
    pub lr: f64,
    pub(crate) beta1: f64,
    pub(crate) beta2: f64,
    pub(crate) eps: f64,
    pub(crate) t: u64,
    /// First/second moment estimates, in `visit_params` order.
    pub(crate) state: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard (0.9, 0.999) betas.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Applies one Adam update using each parameter's accumulated gradient.
    ///
    /// The parameter visit order must be stable across calls; moment buffers
    /// are allocated lazily on the first step.
    pub fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let t = self.t as f64;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let state = &mut self.state;
        let mut idx = 0usize;
        net.visit_params(&mut |p, g| {
            if state.len() == idx {
                state.push((
                    Matrix::zeros(p.rows(), p.cols()),
                    Matrix::zeros(p.rows(), p.cols()),
                ));
            }
            let (m, v) = &mut state[idx];
            assert_eq!(m.shape(), p.shape(), "Adam: param order changed");
            for i in 0..p.data().len() {
                let gi = g.data()[i];
                let mi = b1 * m.data()[i] + (1.0 - b1) * gi;
                let vi = b2 * v.data()[i] + (1.0 - b2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                p.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    /// Multiplies the learning rate by `factor` (Fig. 4 line 6).
    pub fn decay_lr(&mut self, factor: f64) {
        self.lr *= factor;
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }

    /// Applies `p -= lr * g` to every parameter.
    pub fn step(&mut self, net: &mut dyn Layer) {
        let lr = self.lr;
        net.visit_params(&mut |p, g| p.axpy(-lr, g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::Rng;

    /// A single learnable 1x1 parameter minimizing (w - 3)^2.
    struct Quadratic {
        w: Matrix,
        g: Matrix,
    }

    impl Quadratic {
        fn new(start: f64) -> Self {
            Quadratic {
                w: Matrix::from_vec(1, 1, vec![start]),
                g: Matrix::zeros(1, 1),
            }
        }
        fn compute_grad(&mut self) {
            self.g[(0, 0)] = 2.0 * (self.w[(0, 0)] - 3.0);
        }
    }

    impl Layer for Quadratic {
        fn forward(&mut self, x: &Matrix, _t: bool) -> Matrix {
            x.clone()
        }
        fn backward(&mut self, g: &Matrix) -> Matrix {
            g.clone()
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
            f(&mut self.w, &mut self.g);
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut q = Quadratic::new(-5.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!((q.w[(0, 0)] - 3.0).abs() < 1e-3, "w = {}", q.w[(0, 0)]);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut q = Quadratic::new(10.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!((q.w[(0, 0)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn decay_reduces_lr() {
        let mut opt = Adam::new(1.0);
        opt.decay_lr(0.5);
        opt.decay_lr(0.5);
        assert!((opt.lr - 0.25).abs() < 1e-12);
    }

    #[test]
    fn adam_trains_mlp_faster_than_it_starts() {
        use crate::activation::Activation;
        use crate::mlp::Mlp;
        let mut rng = Rng::seed_from_u64(91);
        let mut net = Mlp::dense(&[2, 8, 1], Activation::Tanh, false, 0.0, &mut rng);
        let x = Matrix::randn(32, 2, 1.0, &mut rng);
        let t: Vec<f64> = (0..32).map(|r| x.row(r)[0] * x.row(r)[1]).collect();
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for _ in 0..200 {
            let y = net.forward(&x, true);
            let mut g = Matrix::zeros(32, 1);
            let mut l = 0.0;
            for r in 0..32 {
                let d = y[(r, 0)] - t[r];
                l += d * d;
                g[(r, 0)] = 2.0 * d / 32.0;
            }
            losses.push(l / 32.0);
            net.zero_grad();
            let _ = net.backward(&g);
            opt.step(&mut net);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.2),
            "loss {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
