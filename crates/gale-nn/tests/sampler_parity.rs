//! The tentpole equivalence contract: a full-fanout sampled block over all
//! nodes drives forward/backward passes that are bitwise identical to the
//! legacy full-graph path, at 1, 2, and 8 threads; and sampled (truncated)
//! runs are a pure function of `(seed, epoch, batch)` — thread count never
//! changes a bit.

use gale_nn::sampler::{NeighborSampler, SamplerConfig};
use gale_nn::{Activation, Gae, GaeConfig, Gcn, Layer, MiniBatchConfig};
use gale_tensor::par::with_threads;
use gale_tensor::{Matrix, Rng, SparseMatrix};
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn bits(m: &Matrix) -> Vec<u64> {
    m.data().iter().map(|f| f.to_bits()).collect()
}

/// Random symmetric adjacency (with the odd isolated node) and its
/// normalized operator.
fn random_graph(n: usize, edges: usize, seed: u64) -> (SparseMatrix, SparseMatrix) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for _ in 0..edges {
        let (a, b) = (rng.below(n), rng.below(n));
        if a != b {
            triplets.push((a, b, 1.0));
            triplets.push((b, a, 1.0));
        }
    }
    let a = SparseMatrix::from_triplets(n, n, triplets);
    let s = a.sym_normalized_with_self_loops();
    (a, s)
}

/// One forward + backward through the legacy full-graph path.
fn run_legacy(s: Arc<SparseMatrix>, x: &Matrix, grad: &Matrix, seed: u64) -> (Matrix, Matrix) {
    let mut net = Gcn::new(
        s,
        x.cols(),
        5,
        3,
        Activation::Identity,
        &mut Rng::seed_from_u64(seed),
    );
    let mut out = Matrix::zeros(0, 0);
    net.forward_into(x, true, &mut out);
    net.zero_grad();
    let mut gx = Matrix::zeros(0, 0);
    net.backward_into(grad, &mut gx);
    (out, gx)
}

/// The same pass through a full-fanout block over all nodes.
fn run_block(s: &SparseMatrix, x: &Matrix, grad: &Matrix, seed: u64) -> (Matrix, Matrix) {
    let mut net = Gcn::new_detached(
        x.cols(),
        5,
        3,
        Activation::Identity,
        &mut Rng::seed_from_u64(seed),
    );
    let seeds: Vec<usize> = (0..s.rows()).collect();
    let mut sampler = NeighborSampler::new(SamplerConfig::full(2, 0));
    let block = sampler.sample(s, &seeds, 0, 0);
    assert_eq!(
        block.inputs(),
        &seeds[..],
        "full-fanout frontier is all nodes"
    );
    let mut out = Matrix::zeros(0, 0);
    net.forward_block_into(block, x, &mut out);
    net.zero_grad();
    let mut gx = Matrix::zeros(0, 0);
    net.backward_block_into(block, grad, &mut gx);
    (out, gx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-fanout block forward/backward == legacy full-graph pass,
    /// bitwise, at every thread count.
    #[test]
    fn full_fanout_block_bitwise_equals_full_graph(graph_seed in 0u64..1000, net_seed in 0u64..1000) {
        let n = 40 + (graph_seed as usize % 23);
        let (_, s) = random_graph(n, 3 * n, graph_seed);
        let s = Arc::new(s);
        let mut rng = Rng::seed_from_u64(net_seed ^ 0xABCD);
        let x = Matrix::randn(n, 7, 1.0, &mut rng);
        let grad = Matrix::randn(n, 3, 1.0, &mut rng);

        let baseline = with_threads(1, || run_legacy(s.clone(), &x, &grad, net_seed));
        for t in THREAD_COUNTS {
            let legacy = with_threads(t, || run_legacy(s.clone(), &x, &grad, net_seed));
            let block = with_threads(t, || run_block(&s, &x, &grad, net_seed));
            prop_assert_eq!(bits(&legacy.0), bits(&baseline.0), "legacy fwd, {} threads", t);
            prop_assert_eq!(bits(&block.0), bits(&baseline.0), "block fwd, {} threads", t);
            prop_assert_eq!(bits(&legacy.1), bits(&baseline.1), "legacy bwd, {} threads", t);
            prop_assert_eq!(bits(&block.1), bits(&baseline.1), "block bwd, {} threads", t);
        }
    }

    /// Truncated-fanout sampled training is deterministic in
    /// (seed, epoch, batch) — identical bits at 1/2/8 threads.
    #[test]
    fn sampled_training_deterministic_across_threads(seed in 0u64..500) {
        let n = 60;
        let (a, s) = random_graph(n, 4 * n, seed);
        let x = Matrix::randn(n, 6, 1.0, &mut Rng::seed_from_u64(seed ^ 0x55));
        let cfg = GaeConfig { hidden_dim: 8, embed_dim: 4, epochs: 3, ..Default::default() };
        let mb = MiniBatchConfig {
            fanouts: vec![3, 3],
            edge_batch: 24,
            batches_per_epoch: 4,
            seed,
        };
        let embed = |threads: usize| {
            with_threads(threads, || {
                let mut gae = Gae::train_sampled(
                    &x, &a, &s, &cfg, &mb, &mut Rng::seed_from_u64(seed ^ 0x77),
                );
                let mut z = Matrix::zeros(0, 0);
                gae.embed_access(&s, &x, &mut z);
                (z, gae.final_loss)
            })
        };
        let base = embed(1);
        for t in THREAD_COUNTS {
            let got = embed(t);
            prop_assert_eq!(bits(&got.0), bits(&base.0), "embeddings, {} threads", t);
            prop_assert_eq!(got.1.to_bits(), base.1.to_bits(), "loss, {} threads", t);
        }
    }
}

/// Full-fanout mini-batch GAE (all edges per batch is unnecessary — what
/// matters is that the *access* inference path over the in-memory operator
/// matches the legacy embed path bitwise).
#[test]
fn access_inference_matches_legacy_embed() {
    let (a, s) = random_graph(50, 160, 77);
    let s_arc = Arc::new(s.clone());
    let x = Matrix::randn(50, 6, 1.0, &mut Rng::seed_from_u64(1));
    let cfg = GaeConfig {
        epochs: 4,
        ..Default::default()
    };
    let mut gae = Gae::train(&x, &a, s_arc, &cfg, &mut Rng::seed_from_u64(2));
    let legacy = gae.embed(&x);
    let mut via_access = Matrix::zeros(0, 0);
    gae.embed_access(&s, &x, &mut via_access);
    assert_eq!(bits(&legacy), bits(&via_access));
}
