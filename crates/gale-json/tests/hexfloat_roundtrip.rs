//! Round-trip property tests for the bit-exact f64 hex codec.
//!
//! Values are generated as raw `u64` bit patterns, so the sweep covers the
//! full IEEE-754 space uniformly — normals, subnormals, ±0, infinities, and
//! NaNs with arbitrary payloads — rather than just floats reachable from a
//! uniform `[0,1)` draw.

use gale_json::hexfloat::{decode_f64s, encode_f64s, f64_from_hex, f64_to_hex};
use proptest::prelude::*;
use proptest::{collection, Strategy};

/// Strategy over raw bit patterns biased toward the interesting corners of
/// the f64 space: one draw picks a class, the second fills in free bits.
fn bit_pattern() -> impl Strategy<Value = u64> {
    (0usize..6, 0u64..u64::MAX).prop_map(|(class, raw)| match class {
        // Arbitrary bits: mostly normals, occasionally anything else.
        0 => raw,
        // Subnormals: zero exponent, nonzero mantissa.
        1 => (raw & 0x800f_ffff_ffff_ffff) | 1,
        // Signed zeros.
        2 => raw & 0x8000_0000_0000_0000,
        // Infinities.
        3 => (raw & 0x8000_0000_0000_0000) | 0x7ff0_0000_0000_0000,
        // NaNs with arbitrary payloads (mantissa forced nonzero).
        4 => (raw & 0x800f_ffff_ffff_ffff) | 0x7ff0_0000_0000_0000 | 1,
        // Small-magnitude normals near the subnormal boundary.
        _ => (raw & 0x800f_ffff_ffff_ffff) | 0x0010_0000_0000_0000,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn scalar_round_trip_is_bit_exact(bits in bit_pattern()) {
        let v = f64::from_bits(bits);
        let hex = f64_to_hex(v);
        prop_assert_eq!(hex.len(), 16);
        let back = f64_from_hex(&hex);
        prop_assert!(back.is_ok(), "decode failed for {hex}");
        prop_assert_eq!(back.unwrap().to_bits(), bits);
    }

    #[test]
    fn slice_round_trip_is_bit_exact(patterns in collection::vec(bit_pattern(), 0usize..64)) {
        let vals: Vec<f64> = patterns.iter().map(|&b| f64::from_bits(b)).collect();
        let enc = encode_f64s(&vals);
        let dec = decode_f64s(&enc);
        prop_assert!(dec.is_ok());
        let dec = dec.unwrap();
        prop_assert_eq!(dec.len(), vals.len());
        for (orig, got) in patterns.iter().zip(&dec) {
            prop_assert_eq!(*orig, got.to_bits());
        }
    }

    #[test]
    fn encoding_is_canonical(bits in bit_pattern()) {
        // One value, one encoding: re-encoding a decoded value reproduces
        // the exact string, so checkpoints re-serialize byte-identically.
        let hex = f64_to_hex(f64::from_bits(bits));
        let again = f64_to_hex(f64_from_hex(&hex).unwrap());
        prop_assert_eq!(hex, again);
    }

    #[test]
    fn truncated_strings_error_not_panic(
        patterns in collection::vec(bit_pattern(), 1usize..8),
        cut in 1usize..16,
    ) {
        let vals: Vec<f64> = patterns.iter().map(|&b| f64::from_bits(b)).collect();
        let enc = encode_f64s(&vals);
        let s = enc.as_str().unwrap();
        // Cut mid-value so the length is no longer a multiple of 16.
        let truncated = gale_json::Value::Str(s[..s.len() - cut].to_string());
        prop_assert!(decode_f64s(&truncated).is_err());
    }
}
