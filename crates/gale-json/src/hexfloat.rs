//! Bit-exact `f64` encoding for JSON documents.
//!
//! JSON has no NaN or infinity, and decimal round trips — while exact for
//! finite values printed with Rust's shortest-representation formatter —
//! cannot carry NaN payloads at all. Checkpoints need every parameter bit
//! preserved, so tensors are stored as the raw IEEE-754 bit pattern in
//! lowercase hex: 16 hex digits per `f64`, most-significant nibble first,
//! concatenated into one string per tensor. `1.0` encodes as
//! `"3ff0000000000000"`, `-0.0` as `"8000000000000000"`, and every NaN
//! keeps its payload.

use crate::{Error, Value};

/// Number of hex digits in one encoded `f64`.
pub const HEX_DIGITS_PER_F64: usize = 16;

/// Encodes one `f64` as 16 lowercase hex digits of its bit pattern.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes a 16-hex-digit bit pattern back into the identical `f64`.
pub fn f64_from_hex(s: &str) -> Result<f64, Error> {
    if s.len() != HEX_DIGITS_PER_F64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(Error::new(format!(
            "hexfloat: expected {HEX_DIGITS_PER_F64} hex digits, got {:?}",
            truncate_for_error(s)
        )));
    }
    let bits = u64::from_str_radix(s, 16).map_err(|e| {
        Error::new(format!(
            "hexfloat: bad hex {:?}: {e}",
            truncate_for_error(s)
        ))
    })?;
    Ok(f64::from_bits(bits))
}

/// Encodes a slice of `f64` values as one concatenated hex string value.
pub fn encode_f64s(values: &[f64]) -> Value {
    let mut out = String::with_capacity(values.len() * HEX_DIGITS_PER_F64);
    for &v in values {
        use std::fmt::Write as _;
        let _ = write!(out, "{:016x}", v.to_bits());
    }
    Value::Str(out)
}

/// Decodes a concatenated hex string value back into the identical values.
///
/// Fails (never panics) on non-string values, lengths that are not a
/// multiple of 16, and non-hex characters.
pub fn decode_f64s(v: &Value) -> Result<Vec<f64>, Error> {
    let s = v
        .as_str()
        .ok_or_else(|| Error::new("hexfloat: expected a hex string value"))?;
    if s.len() % HEX_DIGITS_PER_F64 != 0 {
        return Err(Error::new(format!(
            "hexfloat: string length {} is not a multiple of {HEX_DIGITS_PER_F64}",
            s.len()
        )));
    }
    let mut out = Vec::with_capacity(s.len() / HEX_DIGITS_PER_F64);
    for chunk in s.as_bytes().chunks(HEX_DIGITS_PER_F64) {
        // Chunks are in-bounds ASCII slices by the length check above.
        let text = std::str::from_utf8(chunk)
            .map_err(|_| Error::new("hexfloat: non-ASCII bytes in hex string"))?;
        out.push(f64_from_hex(text)?);
    }
    Ok(out)
}

fn truncate_for_error(s: &str) -> String {
    if s.len() <= 24 {
        s.to_string()
    } else {
        let mut end = 24;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_patterns() {
        assert_eq!(f64_to_hex(1.0), "3ff0000000000000");
        assert_eq!(f64_to_hex(0.0), "0000000000000000");
        assert_eq!(f64_to_hex(-0.0), "8000000000000000");
        assert_eq!(f64_from_hex("3ff0000000000000").unwrap(), 1.0);
        // -0.0 round-trips with its sign bit.
        let z = f64_from_hex("8000000000000000").unwrap();
        assert_eq!(z, 0.0);
        assert!(z.is_sign_negative());
    }

    #[test]
    fn non_finite_and_payloads() {
        for bits in [
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            f64::NAN.to_bits(),
            0x7ff8_0000_dead_beef, // NaN with payload
            0x7ff0_0000_0000_0001, // signalling NaN
            0x0000_0000_0000_0001, // smallest subnormal
            0x000f_ffff_ffff_ffff, // largest subnormal
        ] {
            let v = f64::from_bits(bits);
            let back = f64_from_hex(&f64_to_hex(v)).unwrap();
            assert_eq!(back.to_bits(), bits, "bits {bits:#018x}");
        }
    }

    #[test]
    fn slice_round_trip() {
        let vals = [1.5, -2.25, f64::NAN, f64::INFINITY, -0.0, 1e-310];
        let enc = encode_f64s(&vals);
        let dec = decode_f64s(&enc).unwrap();
        assert_eq!(dec.len(), vals.len());
        for (a, b) in vals.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_slice_round_trips() {
        let enc = encode_f64s(&[]);
        assert_eq!(decode_f64s(&enc).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn malformed_inputs_are_errors() {
        assert!(f64_from_hex("zzzz").is_err());
        assert!(f64_from_hex("3ff00000000000000").is_err()); // 17 digits
        assert!(f64_from_hex("3ff000000000000g").is_err());
        assert!(decode_f64s(&Value::Int(3)).is_err());
        assert!(decode_f64s(&Value::Str("abc".into())).is_err()); // ragged
        assert!(decode_f64s(&Value::Str("g".repeat(16))).is_err());
    }
}
