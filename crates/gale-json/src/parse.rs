//! Strict recursive-descent JSON parser producing [`Value`] trees.
//!
//! Numbers without a decimal point or exponent that fit in `i64` become
//! [`Value::Int`]; everything else numeric becomes [`Value::Float`]. Input
//! must be a single document followed only by whitespace.

use crate::{Error, Map, Value};

/// Parses a complete JSON document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(cp) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 runs from the source slice.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8 sequence"));
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => out.push_str(s),
                            Err(_) => return Err(self.err("invalid utf-8")),
                        }
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Int(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn int_overflow_falls_back_to_float() {
        let v = from_str("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn nested_document() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v, json!({ "a": [1, { "b": null }], "c": "x" }));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            from_str(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Value::Str("\u{e9}\u{1f600}".into())
        );
        assert_eq!(
            from_str("\"caf\u{e9}\"").unwrap(),
            Value::Str("café".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"\\x\"").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
    }

    #[test]
    fn error_reports_position() {
        let e = from_str("{\n  \"a\": !\n}").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }
}
