//! # gale-json
//!
//! A deliberately small, std-only JSON library: a [`Value`] tree, a strict
//! recursive-descent parser, compact and pretty printers, and a [`json!`]
//! construction macro. It exists so the workspace builds hermetically (no
//! crates.io dependencies); it covers exactly the surface the GALE harness
//! needs — experiment result documents and graph persistence — rather than
//! the full generality of `serde_json`.
//!
//! Integers and floats are kept distinct ([`Value::Int`] vs
//! [`Value::Float`]) so round trips preserve `AttrValue` typing: `2` parses
//! to `Int(2)`, and `Float(2.0)` prints as `2.0` (never bare `2`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod hexfloat;
pub mod parse;

pub use hexfloat::{decode_f64s, encode_f64s, f64_from_hex, f64_to_hex};
pub use parse::from_str;

/// A parse or decode error, with 1-based line/column for parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// An insertion-ordered string-keyed map of JSON values.
///
/// Backed by a `Vec` — objects in this workspace are small (a handful of
/// keys), so linear lookup beats hashing and keeps output order stable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts (or replaces) a key, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source).
    Int(i64),
    /// A floating-point number. Always printed with a `.` or exponent so it
    /// re-parses as a float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

/// Shared sentinel returned when indexing misses (mirrors `serde_json`).
static NULL: Value = Value::Null;

impl Value {
    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of both integer and float values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Signed-integer view (floats do not coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Unsigned-integer view of non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` on other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Element lookup on arrays; `None` on other kinds or out of range.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Compact one-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&format_float(*f)),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Formats a float so it re-parses as a float: non-finite values become
/// `null` (JSON has no NaN/Inf), and integral values keep a trailing `.0`.
fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    let s = format!("{f}");
    if s.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
        format!("{s}.0")
    } else {
        s
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

/// Serializes a value compactly (API mirror of `serde_json::to_string`).
pub fn to_string(v: &Value) -> String {
    v.to_string_compact()
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    v.to_string_pretty()
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}
impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}
impl<A: Into<Value>, B: Into<Value>, C: Into<Value>> From<(A, B, C)> for Value {
    fn from((a, b, c): (A, B, C)) -> Value {
        Value::Array(vec![a.into(), b.into(), c.into()])
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from JSON-shaped syntax, interpolating Rust
/// expressions in value position (anything with an `Into<Value>` impl).
///
/// ```
/// use gale_json::json;
/// let v = json!({ "id": "table4", "scale": 0.5, "rows": [1, 2, 3] });
/// assert_eq!(v["id"].as_str(), Some("table4"));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_array_internal!(items () $($tt)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_internal!(map $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]: munches object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // Entry start: grab the key, then accumulate value tokens.
    ($map:ident $key:literal : $($rest:tt)*) => {
        $crate::json_object_internal!(@val $map $key () $($rest)*);
    };
    // Trailing comma / done.
    ($map:ident ,) => {};
    ($map:ident) => {};
    // Value ends at a top-level comma.
    (@val $map:ident $key:literal ($($val:tt)*) , $($rest:tt)*) => {
        $map.insert($key, $crate::json!($($val)*));
        $crate::json_object_internal!($map $($rest)*);
    };
    // Value runs to the end of input.
    (@val $map:ident $key:literal ($($val:tt)*)) => {
        $map.insert($key, $crate::json!($($val)*));
    };
    // Otherwise keep accumulating.
    (@val $map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_internal!(@val $map $key ($($val)* $next) $($rest)*);
    };
}

/// Implementation detail of [`json!`]: appends an array element. A function
/// rather than a direct `push` so macro expansions stay lint-clean.
#[doc(hidden)]
pub fn __array_push(items: &mut Vec<Value>, v: Value) {
    items.push(v);
}

/// Implementation detail of [`json!`]: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($items:ident ($($val:tt)+) , $($rest:tt)*) => {
        $crate::__array_push(&mut $items, $crate::json!($($val)+));
        $crate::json_array_internal!($items () $($rest)*);
    };
    ($items:ident ($($val:tt)+)) => {
        $crate::__array_push(&mut $items, $crate::json!($($val)+));
    };
    ($items:ident ()) => {};
    ($items:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_internal!($items ($($val)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_documents() {
        let rows = vec![json!({ "f1": 0.5 }), json!({ "f1": 0.75 })];
        let n = 12usize;
        let v = json!({
            "id": "table4",
            "scale": 0.5 * 2.0,
            "nodes": n,
            "ok": true,
            "missing": null,
            "rows": rows,
            "inline": [1, 2.5, "x"],
        });
        assert_eq!(v["id"].as_str(), Some("table4"));
        assert_eq!(v["scale"].as_f64(), Some(1.0));
        assert_eq!(v["nodes"].as_u64(), Some(12));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["rows"][1]["f1"].as_f64(), Some(0.75));
        assert_eq!(v["inline"][0], Value::Int(1));
        assert_eq!(v["inline"][1], Value::Float(2.5));
        assert_eq!(v["inline"][2].as_str(), Some("x"));
    }

    #[test]
    fn missing_members_index_to_null() {
        let v = json!({ "a": 1 });
        assert!(v["nope"].is_null());
        assert!(v["a"]["deeper"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn float_formatting_keeps_floatness() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(-3.0), "-3.0");
        assert_eq!(format_float(2.5), "2.5");
        assert_eq!(format_float(f64::NAN), "null");
        assert_eq!(format_float(f64::INFINITY), "null");
    }

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = json!({ "a": [1, 2], "b": { "c": "hi\n\"there\"" }, "d": 2.0 });
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn insertion_order_preserved() {
        let v = json!({ "z": 1, "a": 2, "m": 3 });
        let keys: Vec<&String> = v.as_object().unwrap().iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k", json!(1)).is_none());
        assert_eq!(m.insert("k", json!(2)), Some(Value::Int(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&Value::Int(2)));
    }

    #[test]
    fn escapes_render_and_parse() {
        let v = Value::Str("a\"b\\c\nd\te\u{08}\u{0c}\u{01}".to_string());
        let text = v.to_string_compact();
        assert_eq!(from_str(&text).unwrap(), v);
    }
}
