//! Graph persistence: JSON save/load with schema-index restoration.
//!
//! `Graph` converts to and from `gale_json::Value`, but the schema's lookup
//! indices are excluded from the JSON form; these helpers wrap the round
//! trip so a loaded graph is immediately usable.

use crate::graph::Graph;
use std::io;
use std::path::Path;

/// Serializes a graph to pretty-printed JSON.
pub fn to_json(g: &Graph) -> String {
    g.to_json_value().to_string_pretty()
}

/// Deserializes a graph from JSON, rebuilding the schema indices.
pub fn from_json(json: &str) -> Result<Graph, gale_json::Error> {
    let value = gale_json::from_str(json)?;
    let mut g = Graph::from_json_value(&value)?;
    g.schema.rebuild_indices();
    Ok(g)
}

/// Writes a graph to a JSON file.
pub fn save(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, to_json(g))
}

/// Reads a graph from a JSON file, rebuilding the schema indices.
pub fn load(path: impl AsRef<Path>) -> io::Result<Graph> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrKind;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node_with(
            "film",
            &[
                ("name", AttrKind::Text, "Dune".into()),
                ("year", AttrKind::Numeric, 2021i64.into()),
            ],
        );
        let b = g.add_node_with("film", &[("name", AttrKind::Text, "Dune 2".into())]);
        g.add_edge_named(a, b, "subsequent");
        g
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let g = sample();
        let back = from_json(&to_json(&g)).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        // Schema indices rebuilt: name lookups work immediately.
        let name = back.schema.find_attr("name").unwrap();
        assert_eq!(
            back.node(0).get(name).map(|v| v.to_string()),
            Some("Dune".to_string())
        );
        assert_eq!(back.schema.find_edge_type("subsequent"), Some(0));
        assert_eq!(back.schema.attr_kind(name), AttrKind::Text);
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("gale_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.json");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.node_count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(from_json("{not json").is_err());
        assert!(load("/nonexistent/path/graph.json").is_err());
    }
}
