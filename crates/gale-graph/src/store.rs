//! Out-of-core CSR: a page-aligned on-disk format with a streaming writer
//! and a memory-mapped reader.
//!
//! ## File layout (little-endian, 4096-byte page-aligned sections)
//!
//! | section     | contents                                   |
//! |-------------|--------------------------------------------|
//! | header page | magic `GALECSR1`, `rows`, `cols`, `nnz` as u64 |
//! | row offsets | `rows + 1` u64 entry offsets               |
//! | col indices | `nnz` u64 column indices, sorted per row   |
//! | values      | `nnz` f64 entry values                     |
//!
//! Each section starts on a page boundary, so the mapped reader can hand
//! out properly aligned `&[u64]` / `&[f64]` views straight over the file
//! and the kernel pages the working set in and out on demand — a 10M-edge
//! graph costs ~240 MB of *file*, not of resident memory.
//!
//! [`CsrWriter`] streams entries row-by-row (column and value sections go
//! through temporary spill files, so nothing proportional to the edge
//! count is ever held in RAM; only the `O(rows)` offset table is).
//! [`CsrStore`] reads via `mmap(2)` on Linux and falls back to decoding
//! the sections into owned vectors elsewhere (or when asked explicitly,
//! which the round-trip tests use to compare both backings byte for
//! byte).

use gale_tensor::{EdgeSample, NeighborAccess};
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Section alignment: one page.
const PAGE: u64 = 4096;
/// Magic bytes identifying the format, version included.
const MAGIC: &[u8; 8] = b"GALECSR1";

/// Typed failure modes of the CSR writer.
///
/// Compaction treats a finished store file as the new source of truth and
/// discards the overlay that produced it, so the writer must report —
/// not best-effort-swallow — anything that would leave a short or
/// non-durable file behind.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// `finish` was called before every declared row was sealed, or a row
    /// was sealed past the declared count.
    RowCount {
        /// Rows sealed via [`CsrWriter::finish_row`].
        finished: usize,
        /// Rows declared at [`CsrWriter::create`].
        declared: usize,
    },
    /// A spill file held fewer bytes than the entry count requires
    /// (truncated out from under the writer).
    ShortSpill {
        /// Bytes actually spliced from the spill file.
        copied: u64,
        /// Bytes the entry count requires.
        expected: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "csr store i/o: {e}"),
            StoreError::RowCount { finished, declared } => {
                write!(f, "csr writer: {finished} of {declared} rows finished")
            }
            StoreError::ShortSpill { copied, expected } => {
                write!(
                    f,
                    "csr writer: short spill file ({copied} of {expected} bytes)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Removes the spill files when the writer is dropped without reaching
/// the end of [`CsrWriter::finish`] (early drop, error path, panic).
struct SpillGuard {
    paths: [PathBuf; 2],
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn pad_to_page(w: &mut impl Write, pos: u64) -> io::Result<u64> {
    let rem = pos % PAGE;
    if rem == 0 {
        return Ok(pos);
    }
    let pad = (PAGE - rem) as usize;
    w.write_all(&vec![0u8; pad])?;
    Ok(pos + pad as u64)
}

/// Streaming writer for the on-disk CSR format.
///
/// Rows must be finished in ascending order (empty rows included); entries
/// within a row must be pushed in ascending column order. Columns and
/// values spill to `<path>.cols.tmp` / `<path>.vals.tmp` while writing and
/// are spliced into the final page-aligned file by [`CsrWriter::finish`].
pub struct CsrWriter {
    path: PathBuf,
    cols_tmp: PathBuf,
    vals_tmp: PathBuf,
    cols: BufWriter<File>,
    vals: BufWriter<File>,
    indptr: Vec<u64>,
    rows: usize,
    n_cols: usize,
    nnz: u64,
    finished_rows: usize,
    // Dropped last (declaration order): removes the spill files whether
    // the writer finishes cleanly or is abandoned mid-stream.
    _spill_guard: SpillGuard,
}

impl CsrWriter {
    /// Creates a writer for a `rows x cols` operator at `path`.
    pub fn create(path: impl AsRef<Path>, rows: usize, cols: usize) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let cols_tmp = path.with_extension("cols.tmp");
        let vals_tmp = path.with_extension("vals.tmp");
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        Ok(CsrWriter {
            cols: BufWriter::new(File::create(&cols_tmp)?),
            vals: BufWriter::new(File::create(&vals_tmp)?),
            path,
            _spill_guard: SpillGuard {
                paths: [cols_tmp.clone(), vals_tmp.clone()],
            },
            cols_tmp,
            vals_tmp,
            indptr,
            rows,
            n_cols: cols,
            nnz: 0,
            finished_rows: 0,
        })
    }

    /// Appends an entry to the row currently being built.
    pub fn push(&mut self, col: usize, value: f64) -> Result<(), StoreError> {
        assert!(col < self.n_cols, "CsrWriter::push: col {col} out of range");
        self.cols.write_all(&(col as u64).to_le_bytes())?;
        self.vals.write_all(&value.to_le_bytes())?;
        self.nnz += 1;
        Ok(())
    }

    /// Seals the current row. Must be called exactly `rows` times.
    pub fn finish_row(&mut self) -> Result<(), StoreError> {
        if self.finished_rows >= self.rows {
            return Err(StoreError::RowCount {
                finished: self.finished_rows + 1,
                declared: self.rows,
            });
        }
        self.finished_rows += 1;
        self.indptr.push(self.nnz);
        Ok(())
    }

    /// Assembles the final file, syncs it to stable storage, and removes
    /// the spill files. The file is only durable once this returns `Ok` —
    /// callers that replace another representation (e.g. a delta overlay
    /// compacting into a fresh CSR) must not discard the old one before.
    pub fn finish(mut self) -> Result<(), StoreError> {
        if self.finished_rows != self.rows {
            return Err(StoreError::RowCount {
                finished: self.finished_rows,
                declared: self.rows,
            });
        }
        self.cols.flush()?;
        self.vals.flush()?;
        // Swap in empty buffers so the spill handles close now; the real
        // fields can't be moved out of a struct that still owns a guard.
        drop(std::mem::replace(
            &mut self.cols,
            BufWriter::new(File::open(&self.cols_tmp)?),
        ));
        drop(std::mem::replace(
            &mut self.vals,
            BufWriter::new(File::open(&self.vals_tmp)?),
        ));

        let mut out = BufWriter::new(File::create(&self.path)?);
        // Header page.
        out.write_all(MAGIC)?;
        out.write_all(&(self.rows as u64).to_le_bytes())?;
        out.write_all(&(self.n_cols as u64).to_le_bytes())?;
        out.write_all(&self.nnz.to_le_bytes())?;
        let mut pos = pad_to_page(&mut out, 8 * 4)?;
        // Row-offset section.
        for off in &self.indptr {
            out.write_all(&off.to_le_bytes())?;
        }
        pos += 8 * self.indptr.len() as u64;
        pos = pad_to_page(&mut out, pos)?;
        // Column and value sections, spliced from the spill files.
        for tmp in [&self.cols_tmp, &self.vals_tmp] {
            let mut src = File::open(tmp)?;
            let copied = io::copy(&mut src, &mut out)?;
            if copied != 8 * self.nnz {
                return Err(StoreError::ShortSpill {
                    copied,
                    expected: 8 * self.nnz,
                });
            }
            pos += copied;
            pos = pad_to_page(&mut out, pos)?;
        }
        out.flush()?;
        // fsync before reporting success: "finished" must mean "on disk",
        // not "in the page cache" (the spill guard removes the tmps).
        out.get_ref().sync_all()?;
        Ok(())
    }
}

/// Writes an in-memory operator (anything implementing [`NeighborAccess`])
/// to the on-disk format. Test and small-graph convenience.
pub fn write_csr<A: NeighborAccess + ?Sized>(
    a: &A,
    cols: usize,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut w = CsrWriter::create(path, a.node_count(), cols)?;
    for r in 0..a.node_count() {
        let mut err = None;
        a.visit_neighbors(r, &mut |c, v| {
            if err.is_none() {
                err = w.push(c, v).err();
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        w.finish_row()?;
    }
    Ok(w.finish()?)
}

/// How a [`CsrStore`] holds the file contents.
enum Backing {
    /// A read-only private `mmap(2)` of the whole file (Linux).
    #[cfg(target_os = "linux")]
    Mapped(mapped::Mapping),
    /// Sections decoded into owned vectors (portable fallback).
    Owned {
        indptr: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<f64>,
    },
}

/// A read-only CSR operator backed by the on-disk format.
pub struct CsrStore {
    rows: usize,
    cols: usize,
    nnz: usize,
    indptr_off: usize,
    cols_off: usize,
    vals_off: usize,
    backing: Backing,
}

fn section_offsets(rows: u64, nnz: u64) -> (usize, usize, usize) {
    let align = |x: u64| x.div_ceil(PAGE) * PAGE;
    let indptr_off = PAGE;
    let cols_off = align(indptr_off + 8 * (rows + 1));
    let vals_off = align(cols_off + 8 * nnz);
    (indptr_off as usize, cols_off as usize, vals_off as usize)
}

fn read_header(f: &mut File) -> io::Result<(u64, u64, u64)> {
    let mut head = [0u8; 32];
    f.read_exact(&mut head)?;
    if &head[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a GALECSR1 file",
        ));
    }
    let u = |i: usize| u64::from_le_bytes(head[i..i + 8].try_into().unwrap());
    Ok((u(8), u(16), u(24)))
}

impl CsrStore {
    /// Opens a store, memory-mapping it on Linux and falling back to
    /// [`CsrStore::open_in_memory`] elsewhere.
    pub fn open(path: impl AsRef<Path>) -> io::Result<CsrStore> {
        #[cfg(target_os = "linux")]
        {
            Self::open_mapped(path)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::open_in_memory(path)
        }
    }

    /// Opens a store via `mmap(2)`. Linux only.
    #[cfg(target_os = "linux")]
    pub fn open_mapped(path: impl AsRef<Path>) -> io::Result<CsrStore> {
        let mut f = File::open(path)?;
        let (rows, cols, nnz) = read_header(&mut f)?;
        let (indptr_off, cols_off, vals_off) = section_offsets(rows, nnz);
        let need = vals_off as u64 + 8 * nnz;
        let len = f.metadata()?.len();
        if len < need {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("CSR file truncated: {len} < {need} bytes"),
            ));
        }
        let mapping = mapped::Mapping::map(&f, len as usize)?;
        Ok(CsrStore {
            rows: rows as usize,
            cols: cols as usize,
            nnz: nnz as usize,
            indptr_off,
            cols_off,
            vals_off,
            backing: Backing::Mapped(mapping),
        })
    }

    /// Opens a store by decoding the sections into owned memory. Portable;
    /// also the explicit choice for tests comparing both backings.
    pub fn open_in_memory(path: impl AsRef<Path>) -> io::Result<CsrStore> {
        let mut f = File::open(path)?;
        let (rows, cols, nnz) = read_header(&mut f)?;
        let (indptr_off, cols_off, vals_off) = section_offsets(rows, nnz);
        let read_u64s = |f: &mut File, off: usize, count: usize| -> io::Result<Vec<u64>> {
            f.seek(SeekFrom::Start(off as u64))?;
            let mut bytes = vec![0u8; count * 8];
            f.read_exact(&mut bytes)?;
            Ok(bytes
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .collect())
        };
        let indptr = read_u64s(&mut f, indptr_off, rows as usize + 1)?;
        let cols_v = read_u64s(&mut f, cols_off, nnz as usize)?;
        let vals = read_u64s(&mut f, vals_off, nnz as usize)?
            .into_iter()
            .map(f64::from_bits)
            .collect();
        Ok(CsrStore {
            rows: rows as usize,
            cols: cols as usize,
            nnz: nnz as usize,
            indptr_off,
            cols_off,
            vals_off,
            backing: Backing::Owned {
                indptr,
                cols: cols_v,
                vals,
            },
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Whether this store reads through a memory mapping (as opposed to
    /// the decoded in-memory fallback).
    pub fn is_mapped(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            matches!(self.backing, Backing::Mapped(_))
        }
        #[cfg(not(target_os = "linux"))]
        {
            false
        }
    }

    fn indptr(&self) -> &[u64] {
        match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped(m) => m.u64s(self.indptr_off, self.rows + 1),
            Backing::Owned { indptr, .. } => indptr,
        }
    }

    /// Row `r`'s column indices and values as borrowed slices.
    pub fn row(&self, r: usize) -> (&[u64], &[f64]) {
        let indptr = self.indptr();
        let lo = indptr[r] as usize;
        let hi = indptr[r + 1] as usize;
        match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped(m) => (
                &m.u64s(self.cols_off, self.nnz)[lo..hi],
                &m.f64s(self.vals_off, self.nnz)[lo..hi],
            ),
            Backing::Owned { cols, vals, .. } => (&cols[lo..hi], &vals[lo..hi]),
        }
    }
}

impl NeighborAccess for CsrStore {
    fn node_count(&self) -> usize {
        self.rows
    }

    fn neighbor_count(&self, r: usize) -> usize {
        let indptr = self.indptr();
        (indptr[r + 1] - indptr[r]) as usize
    }

    fn visit_neighbors(&self, r: usize, f: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.row(r);
        for (c, v) in cols.iter().zip(vals) {
            f(*c as usize, *v);
        }
    }

    fn has_neighbor(&self, r: usize, c: usize) -> bool {
        let (cols, _) = self.row(r);
        cols.binary_search(&(c as u64)).is_ok()
    }
}

impl EdgeSample for CsrStore {
    fn entry_count(&self) -> usize {
        self.nnz
    }

    fn entry_at(&self, k: usize) -> (usize, usize) {
        assert!(k < self.nnz, "entry_at: {k} >= nnz {}", self.nnz);
        let indptr = self.indptr();
        let r = indptr.partition_point(|&p| p as usize <= k) - 1;
        let col = match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped(m) => m.u64s(self.cols_off, self.nnz)[k] as usize,
            Backing::Owned { cols, .. } => cols[k] as usize,
        };
        (r, col)
    }
}

// Scoped like gale-tensor's `par` / `aligned`: the crate denies unsafe
// code except for this audited module, which wraps `mmap(2)` through raw
// `extern "C"` declarations (the workspace builds without libc) and hands
// out typed views over the page-aligned sections.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod mapped {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x02;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A read-only private mapping of a whole file.
    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only for its entire lifetime, so shared access
    // from the worker pool is safe.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `f` read-only.
        pub fn map(f: &File, len: usize) -> io::Result<Mapping> {
            if len == 0 {
                return Ok(Mapping {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            // SAFETY: a fresh READ/PRIVATE mapping of a file we hold open;
            // failure is reported via MAP_FAILED and surfaced as an error.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    f.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping {
                ptr: ptr as *const u8,
                len,
            })
        }

        fn slice<T>(&self, byte_off: usize, count: usize) -> &[T] {
            let need = byte_off + count * std::mem::size_of::<T>();
            assert!(need <= self.len, "mapping: {need} > {} bytes", self.len);
            let ptr = unsafe { self.ptr.add(byte_off) } as *const T;
            assert_eq!(
                ptr as usize % std::mem::align_of::<T>(),
                0,
                "mapping: section misaligned"
            );
            // SAFETY: in-bounds (asserted), aligned (sections are
            // page-aligned by construction, asserted), read-only for the
            // mapping's lifetime, and u64/f64 have no invalid bit
            // patterns. Little-endian layout matches the host (the format
            // is LE; the mapped reader is only compiled on Linux targets,
            // which this workspace builds for x86-64/aarch64 LE).
            unsafe { std::slice::from_raw_parts(ptr, count) }
        }

        /// A `&[u64]` view over `count` entries at `byte_off`.
        pub fn u64s(&self, byte_off: usize, count: usize) -> &[u64] {
            self.slice(byte_off, count)
        }

        /// A `&[f64]` view over `count` entries at `byte_off`.
        pub fn f64s(&self, byte_off: usize, count: usize) -> &[f64] {
            self.slice(byte_off, count)
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: exactly the pointer/length pair mmap returned.
                unsafe {
                    munmap(self.ptr as *mut c_void, self.len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_tensor::SparseMatrix;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gale-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn ragged() -> SparseMatrix {
        // Ragged rows incl. leading/trailing empties and an empty middle.
        SparseMatrix::from_triplets(
            6,
            5,
            [
                (1, 0, 0.5),
                (1, 4, -2.0),
                (3, 2, 1.25),
                (4, 0, 3.0),
                (4, 1, 4.0),
                (4, 3, 5.0),
            ],
        )
    }

    #[test]
    fn roundtrip_both_backings() {
        let s = ragged();
        let path = tmp("roundtrip.csr");
        write_csr(&s, s.cols(), &path).unwrap();
        for store in [
            CsrStore::open(&path).unwrap(),
            CsrStore::open_in_memory(&path).unwrap(),
        ] {
            assert_eq!(store.rows(), 6);
            assert_eq!(store.cols(), 5);
            assert_eq!(store.nnz(), 6);
            for r in 0..6 {
                let mut got = Vec::new();
                store.visit_neighbors(r, &mut |c, v| got.push((c, v.to_bits())));
                let want: Vec<(usize, u64)> =
                    s.row_iter(r).map(|(c, v)| (c, v.to_bits())).collect();
                assert_eq!(got, want, "row {r}");
                assert_eq!(store.neighbor_count(r), s.row_nnz(r));
            }
        }
        #[cfg(target_os = "linux")]
        assert!(CsrStore::open(&path).unwrap().is_mapped());
    }

    #[test]
    fn entry_at_matches_sparse() {
        let s = ragged();
        let path = tmp("entries.csr");
        write_csr(&s, s.cols(), &path).unwrap();
        let store = CsrStore::open(&path).unwrap();
        assert_eq!(store.entry_count(), s.nnz());
        for k in 0..s.nnz() {
            assert_eq!(store.entry_at(k), s.entry_coords(k), "entry {k}");
        }
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let s = SparseMatrix::zeros(4, 4);
        let path = tmp("empty.csr");
        write_csr(&s, 4, &path).unwrap();
        let store = CsrStore::open(&path).unwrap();
        assert_eq!(store.rows(), 4);
        assert_eq!(store.nnz(), 0);
        for r in 0..4 {
            assert_eq!(store.neighbor_count(r), 0);
        }
    }

    #[test]
    fn unfinished_rows_is_typed_error() {
        let path = tmp("short.csr");
        let mut w = CsrWriter::create(&path, 3, 3).unwrap();
        w.push(1, 1.0).unwrap();
        w.finish_row().unwrap();
        match w.finish() {
            Err(StoreError::RowCount { finished, declared }) => {
                assert_eq!((finished, declared), (1, 3));
            }
            other => panic!("wanted RowCount error, got {other:?}"),
        }
    }

    #[test]
    fn sealing_past_declared_rows_is_typed_error() {
        let path = tmp("overrow.csr");
        let mut w = CsrWriter::create(&path, 1, 3).unwrap();
        w.finish_row().unwrap();
        assert!(matches!(
            w.finish_row(),
            Err(StoreError::RowCount {
                finished: 2,
                declared: 1
            })
        ));
    }

    #[test]
    fn dropped_writer_removes_spill_files() {
        let path = tmp("dropped.csr");
        let cols_tmp = path.with_extension("cols.tmp");
        let vals_tmp = path.with_extension("vals.tmp");
        let mut w = CsrWriter::create(&path, 2, 2).unwrap();
        w.push(0, 1.0).unwrap();
        assert!(cols_tmp.exists() && vals_tmp.exists());
        drop(w);
        assert!(!cols_tmp.exists(), "cols spill survived drop");
        assert!(!vals_tmp.exists(), "vals spill survived drop");
    }

    #[test]
    fn finish_removes_spill_files() {
        let s = ragged();
        let path = tmp("synced.csr");
        write_csr(&s, s.cols(), &path).unwrap();
        assert!(!path.with_extension("cols.tmp").exists());
        assert!(!path.with_extension("vals.tmp").exists());
        assert!(CsrStore::open(&path).is_ok());
    }

    #[test]
    fn garbage_file_is_refused() {
        let path = tmp("garbage.csr");
        std::fs::write(&path, b"definitely not a csr file").unwrap();
        assert!(CsrStore::open(&path).is_err());
        assert!(CsrStore::open_in_memory(&path).is_err());
    }
}
