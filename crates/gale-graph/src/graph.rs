//! The attributed heterogeneous graph `G = (V, E)` of Section II.

use crate::schema::{AttrId, AttrKind, EdgeTypeId, NodeTypeId, Schema};
use crate::value::AttrValue;
use gale_tensor::SparseMatrix;

/// Index of a node within its graph.
pub type NodeId = usize;

/// A node: a typed tuple of attribute values.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's type within the schema.
    pub node_type: NodeTypeId,
    /// Attribute values, sorted by `AttrId` and unique per attribute.
    attrs: Vec<(AttrId, AttrValue)>,
}

impl Node {
    /// Creates a node of the given type with no attributes.
    pub fn new(node_type: NodeTypeId) -> Self {
        Node {
            node_type,
            attrs: Vec::new(),
        }
    }

    /// Sets (or replaces) an attribute value.
    pub fn set(&mut self, attr: AttrId, value: AttrValue) {
        match self.attrs.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => self.attrs[i].1 = value,
            Err(i) => self.attrs.insert(i, (attr, value)),
        }
    }

    /// Looks up an attribute value.
    pub fn get(&self, attr: AttrId) -> Option<&AttrValue> {
        self.attrs
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Removes an attribute, returning its previous value.
    pub fn remove(&mut self, attr: AttrId) -> Option<AttrValue> {
        self.attrs
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| self.attrs.remove(i).1)
    }

    /// Iterator over `(attr, value)` pairs in ascending attribute order.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        self.attrs.iter().map(|(a, v)| (*a, v))
    }

    /// Number of attributes present on this node.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// JSON representation: `{"node_type": t, "attrs": [[id, value], ...]}`
    /// with attrs in ascending id order (their storage order).
    pub fn to_json_value(&self) -> gale_json::Value {
        let mut obj = gale_json::Map::new();
        obj.insert("node_type", gale_json::Value::Int(self.node_type as i64));
        obj.insert(
            "attrs",
            gale_json::Value::Array(
                self.attrs
                    .iter()
                    .map(|(a, v)| {
                        gale_json::Value::Array(vec![
                            gale_json::Value::Int(*a as i64),
                            v.to_json_value(),
                        ])
                    })
                    .collect(),
            ),
        );
        gale_json::Value::Object(obj)
    }

    /// Inverse of [`Node::to_json_value`].
    pub fn from_json_value(v: &gale_json::Value) -> Result<Node, gale_json::Error> {
        let node_type = v
            .get("node_type")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| gale_json::Error::new("node: missing integer \"node_type\""))?
            as NodeTypeId;
        let mut node = Node::new(node_type);
        let attrs = v
            .get("attrs")
            .and_then(|a| a.as_array())
            .ok_or_else(|| gale_json::Error::new("node: missing array \"attrs\""))?;
        for pair in attrs {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| gale_json::Error::new("node: attr entry not an [id, value] pair"))?;
            let id = pair[0]
                .as_u64()
                .ok_or_else(|| gale_json::Error::new("node: attr id not an integer"))?
                as AttrId;
            node.set(id, AttrValue::from_json_value(&pair[1])?);
        }
        Ok(node)
    }
}

/// A typed edge between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node index.
    pub src: NodeId,
    /// Destination node index.
    pub dst: NodeId,
    /// The edge's relationship type.
    pub edge_type: EdgeTypeId,
}

impl Edge {
    /// JSON representation: `{"src": s, "dst": d, "edge_type": t}`.
    pub fn to_json_value(&self) -> gale_json::Value {
        let mut obj = gale_json::Map::new();
        obj.insert("src", gale_json::Value::Int(self.src as i64));
        obj.insert("dst", gale_json::Value::Int(self.dst as i64));
        obj.insert("edge_type", gale_json::Value::Int(self.edge_type as i64));
        gale_json::Value::Object(obj)
    }

    /// Inverse of [`Edge::to_json_value`].
    pub fn from_json_value(v: &gale_json::Value) -> Result<Edge, gale_json::Error> {
        let field = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| gale_json::Error::new(format!("edge: missing integer {key:?}")))
        };
        Ok(Edge {
            src: field("src")? as NodeId,
            dst: field("dst")? as NodeId,
            edge_type: field("edge_type")? as EdgeTypeId,
        })
    }
}

/// An attributed heterogeneous graph with its schema.
///
/// Edges are stored as given (directed records); most analyses view the
/// topology as undirected via [`Graph::adjacency`].
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Interned naming context for types and attributes.
    pub schema: Schema,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Graph {
    /// An empty graph with an empty schema.
    pub fn new() -> Self {
        Graph::default()
    }

    /// An empty graph sharing an existing schema (used when carving
    /// subgraphs out of a parent graph).
    pub fn with_schema(schema: Schema) -> Self {
        Graph {
            schema,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Convenience: adds a node of a (string-named) type with attributes.
    pub fn add_node_with(
        &mut self,
        type_name: &str,
        attrs: &[(&str, AttrKind, AttrValue)],
    ) -> NodeId {
        let t = self.schema.node_type(type_name);
        let mut node = Node::new(t);
        for (name, kind, value) in attrs {
            let a = self.schema.attr(name, *kind);
            node.set(a, value.clone());
        }
        self.add_node(node)
    }

    /// Adds a typed edge. Panics on out-of-range endpoints.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, edge_type: EdgeTypeId) {
        assert!(
            src < self.nodes.len() && dst < self.nodes.len(),
            "add_edge: endpoint out of range ({src}, {dst})"
        );
        self.edges.push(Edge {
            src,
            dst,
            edge_type,
        });
    }

    /// Convenience: adds an edge with a string-named type.
    pub fn add_edge_named(&mut self, src: NodeId, dst: NodeId, type_name: &str) {
        let t = self.schema.edge_type(type_name);
        self.add_edge(src, dst, t);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edge records.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Immutable node access. Panics on out-of-range ids.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable node access. Panics on out-of-range ids.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Iterator over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate()
    }

    /// Slice of all edge records.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of all nodes with the given type.
    pub fn nodes_of_type(&self, t: NodeTypeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| (n.node_type == t).then_some(i))
            .collect()
    }

    /// Binary symmetric adjacency matrix (both directions of every edge,
    /// duplicate edges collapse to weight 1).
    pub fn adjacency(&self) -> SparseMatrix {
        let n = self.nodes.len();
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len() * 2);
        let mut triplets = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            if e.src == e.dst {
                continue; // self-loops are added by normalization when needed
            }
            if seen.insert((e.src, e.dst)) {
                triplets.push((e.src, e.dst, 1.0));
            }
            if seen.insert((e.dst, e.src)) {
                triplets.push((e.dst, e.src, 1.0));
            }
        }
        SparseMatrix::from_triplets(n, n, triplets)
    }

    /// Undirected neighbor lists (deduplicated, sorted).
    pub fn neighbor_lists(&self) -> Vec<Vec<NodeId>> {
        let mut nbrs: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.src != e.dst {
                nbrs[e.src].push(e.dst);
                nbrs[e.dst].push(e.src);
            }
        }
        for l in &mut nbrs {
            l.sort_unstable();
            l.dedup();
        }
        nbrs
    }

    /// Undirected degree of every node (after deduplication).
    pub fn degrees(&self) -> Vec<usize> {
        self.neighbor_lists().iter().map(|l| l.len()).collect()
    }

    /// Average number of attributes per node; 0.0 for an empty graph.
    pub fn avg_attrs(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.attr_count()).sum::<usize>() as f64 / self.nodes.len() as f64
    }

    /// Collects the domain (distinct canonical values with counts) of an
    /// attribute over nodes of a type. Used by constraint discovery and the
    /// correction suggester.
    pub fn value_counts(
        &self,
        node_type: NodeTypeId,
        attr: AttrId,
    ) -> std::collections::HashMap<String, usize> {
        let mut counts = std::collections::HashMap::new();
        for n in &self.nodes {
            if n.node_type != node_type {
                continue;
            }
            if let Some(v) = n.get(attr) {
                *counts.entry(v.canonical()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// JSON representation: `{"schema": ..., "nodes": [...], "edges": [...]}`.
    pub fn to_json_value(&self) -> gale_json::Value {
        let mut obj = gale_json::Map::new();
        obj.insert("schema", self.schema.to_json_value());
        obj.insert(
            "nodes",
            gale_json::Value::Array(self.nodes.iter().map(Node::to_json_value).collect()),
        );
        obj.insert(
            "edges",
            gale_json::Value::Array(self.edges.iter().map(Edge::to_json_value).collect()),
        );
        gale_json::Value::Object(obj)
    }

    /// Inverse of [`Graph::to_json_value`]. The schema's lookup indices come
    /// back empty; callers (see [`crate::io::from_json`]) rebuild them.
    pub fn from_json_value(v: &gale_json::Value) -> Result<Graph, gale_json::Error> {
        let schema = Schema::from_json_value(
            v.get("schema")
                .ok_or_else(|| gale_json::Error::new("graph: missing \"schema\""))?,
        )?;
        let nodes = v
            .get("nodes")
            .and_then(|n| n.as_array())
            .ok_or_else(|| gale_json::Error::new("graph: missing array \"nodes\""))?
            .iter()
            .map(Node::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let edges = v
            .get("edges")
            .and_then(|e| e.as_array())
            .ok_or_else(|| gale_json::Error::new("graph: missing array \"edges\""))?
            .iter()
            .map(Edge::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        for e in &edges {
            if e.src >= nodes.len() || e.dst >= nodes.len() {
                return Err(gale_json::Error::new(format!(
                    "graph: edge endpoint out of range ({}, {})",
                    e.src, e.dst
                )));
            }
        }
        Ok(Graph {
            schema,
            nodes,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Fig. 1: five films linked by `subsequent`.
    pub(crate) fn films() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let specs: [(&str, i64, f64); 5] = [
            ("Avengers: Age of Ultron", 2015, 7.3),
            ("Avengers: Infinity War", 2014, 8.4), // wrong year (case 1)
            ("Ant-Man", 2015, 3.8),                // wrong score (case 2)
            ("Avengers: Endgame", 2019, 8.4),
            ("Captain Marvel", 2019, 6.8),
        ];
        let mut ids = Vec::new();
        for (name, year, score) in specs {
            let id = g.add_node_with(
                "film",
                &[
                    ("name", AttrKind::Text, name.into()),
                    ("release_year", AttrKind::Numeric, year.into()),
                    ("score", AttrKind::Numeric, score.into()),
                ],
            );
            ids.push(id);
        }
        g.add_edge_named(ids[0], ids[1], "subsequent");
        g.add_edge_named(ids[1], ids[3], "subsequent");
        g.add_edge_named(ids[3], ids[4], "subsequent");
        g.add_edge_named(ids[2], ids[0], "same_universe");
        (g, ids)
    }

    #[test]
    fn node_attr_set_get_replace() {
        let mut g = Graph::new();
        let id = g.add_node_with("film", &[("name", AttrKind::Text, "X".into())]);
        let name_attr = g.schema.find_attr("name").unwrap();
        assert_eq!(
            g.node(id).get(name_attr),
            Some(&AttrValue::Text("X".into()))
        );
        g.node_mut(id).set(name_attr, "Y".into());
        assert_eq!(
            g.node(id).get(name_attr),
            Some(&AttrValue::Text("Y".into()))
        );
        assert_eq!(g.node(id).attr_count(), 1);
        assert_eq!(g.node_mut(id).remove(name_attr), Some("Y".into()));
        assert_eq!(g.node(id).attr_count(), 0);
    }

    #[test]
    fn attrs_stay_sorted() {
        let mut n = Node::new(0);
        n.set(5, AttrValue::Int(5));
        n.set(1, AttrValue::Int(1));
        n.set(3, AttrValue::Int(3));
        let ids: Vec<AttrId> = n.attrs().map(|(a, _)| a).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn adjacency_symmetric_no_self_loops() {
        let (g, ids) = films();
        let a = g.adjacency();
        assert_eq!(a.rows(), 5);
        assert_eq!(a.get(ids[0], ids[1]), 1.0);
        assert_eq!(a.get(ids[1], ids[0]), 1.0);
        assert_eq!(a.get(ids[0], ids[0]), 0.0);
        assert_eq!(a.get(ids[2], ids[3]), 0.0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = Graph::new();
        let a = g.add_node_with("t", &[]);
        let b = g.add_node_with("t", &[]);
        g.add_edge_named(a, b, "e");
        g.add_edge_named(a, b, "e");
        g.add_edge_named(b, a, "e");
        let adj = g.adjacency();
        assert_eq!(adj.get(a, b), 1.0);
        assert_eq!(adj.nnz(), 2);
        assert_eq!(g.degrees(), vec![1, 1]);
    }

    #[test]
    fn nodes_of_type_filters() {
        let (g, _) = films();
        let film = g.schema.find_node_type("film").unwrap();
        assert_eq!(g.nodes_of_type(film).len(), 5);
    }

    #[test]
    fn value_counts_profile() {
        let (g, _) = films();
        let film = g.schema.find_node_type("film").unwrap();
        let year = g.schema.find_attr("release_year").unwrap();
        let counts = g.value_counts(film, year);
        assert_eq!(counts.get("2015"), Some(&2));
        assert_eq!(counts.get("2019"), Some(&2));
        assert_eq!(counts.get("2014"), Some(&1));
    }

    #[test]
    fn avg_attrs_counts() {
        let (g, _) = films();
        assert!((g.avg_attrs() - 3.0).abs() < 1e-12);
        assert_eq!(Graph::new().avg_attrs(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let (g, _) = films();
        let json = g.to_json_value().to_string();
        let back = Graph::from_json_value(&gale_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn bad_edge_panics() {
        let mut g = Graph::new();
        g.add_node_with("t", &[]);
        g.add_edge(0, 9, 0);
    }
}
