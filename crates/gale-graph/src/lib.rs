//! # gale-graph
//!
//! Attributed heterogeneous graphs for the GALE reproduction (ICDE 2023):
//! the value/schema/graph model of Section II, adjacency and propagation
//! operators, traversal utilities, and the `(X_G, A_G)` feature
//! representation consumed by the learning stack.

// `deny` rather than `forbid`: `store::mapped` (the `mmap(2)` wrapper for
// the out-of-core CSR reader) carries a scoped allowance for its audited
// unsafe blocks, mirroring gale-tensor's `par` / `aligned` policy;
// everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod graph;
pub mod io;
pub mod propagation;
pub mod schema;
pub mod store;
pub mod traversal;
pub mod value;

pub use features::FeatureRepr;
pub use graph::{Edge, Graph, Node, NodeId};
pub use propagation::{
    ppr_single, ppr_smooth, ppr_smooth_access, ppr_smooth_matrix, soft_labels, PropagationConfig,
};
pub use schema::{AttrId, AttrKind, EdgeTypeId, NodeTypeId, Schema};
pub use store::{write_csr, CsrStore, CsrWriter, StoreError};
pub use traversal::{
    bfs_distances, connected_components, degree_assortativity, induced_subgraph,
    k_hop_neighborhood, InducedSubgraph,
};
pub use value::AttrValue;
