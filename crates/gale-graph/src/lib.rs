//! # gale-graph
//!
//! Attributed heterogeneous graphs for the GALE reproduction (ICDE 2023):
//! the value/schema/graph model of Section II, adjacency and propagation
//! operators, traversal utilities, and the `(X_G, A_G)` feature
//! representation consumed by the learning stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod graph;
pub mod io;
pub mod propagation;
pub mod schema;
pub mod traversal;
pub mod value;

pub use features::FeatureRepr;
pub use graph::{Edge, Graph, Node, NodeId};
pub use propagation::{ppr_single, ppr_smooth, ppr_smooth_matrix, soft_labels, PropagationConfig};
pub use schema::{AttrId, AttrKind, EdgeTypeId, NodeTypeId, Schema};
pub use traversal::{
    bfs_distances, connected_components, degree_assortativity, induced_subgraph,
    k_hop_neighborhood, InducedSubgraph,
};
pub use value::AttrValue;
