//! Graph schema: interned node types, edge types, and attribute names.
//!
//! The paper's graphs are heterogeneous (Table II lists up to 73 node types
//! and 584 edge types), so all type and attribute names are interned to small
//! integer ids and resolved through a [`Schema`].

use std::collections::HashMap;

/// Identifier of a node type (e.g. `film`, `author`).
pub type NodeTypeId = u32;
/// Identifier of an edge type (e.g. `subsequent`, `cites`).
pub type EdgeTypeId = u32;
/// Identifier of an attribute name (e.g. `release_year`).
pub type AttrId = u32;

/// The declared kind of an attribute, used by detectors and featurization to
/// choose the right treatment (z-scores for numerics, dictionaries for
/// categoricals, token embeddings for text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Continuous or ordinal numbers.
    Numeric,
    /// Values drawn from a closed (if unknown) domain.
    Categorical,
    /// Free text such as names and titles.
    Text,
}

impl AttrKind {
    /// Canonical JSON string for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttrKind::Numeric => "Numeric",
            AttrKind::Categorical => "Categorical",
            AttrKind::Text => "Text",
        }
    }

    /// Parses the canonical string form produced by [`AttrKind::as_str`].
    pub fn from_str_name(s: &str) -> Option<AttrKind> {
        match s {
            "Numeric" => Some(AttrKind::Numeric),
            "Categorical" => Some(AttrKind::Categorical),
            "Text" => Some(AttrKind::Text),
            _ => None,
        }
    }
}

/// Interned naming context shared by a graph and everything that analyses it.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    node_types: Vec<String>,
    edge_types: Vec<String>,
    attrs: Vec<(String, AttrKind)>,
    // Lookup indices are derived state: excluded from the JSON form and
    // rebuilt via `rebuild_indices` after deserialization.
    node_type_index: HashMap<String, NodeTypeId>,
    edge_type_index: HashMap<String, EdgeTypeId>,
    attr_index: HashMap<String, AttrId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Interns (or looks up) a node type name.
    pub fn node_type(&mut self, name: &str) -> NodeTypeId {
        if let Some(&id) = self.node_type_index.get(name) {
            return id;
        }
        let id = self.node_types.len() as NodeTypeId;
        self.node_types.push(name.to_string());
        self.node_type_index.insert(name.to_string(), id);
        id
    }

    /// Interns (or looks up) an edge type name.
    pub fn edge_type(&mut self, name: &str) -> EdgeTypeId {
        if let Some(&id) = self.edge_type_index.get(name) {
            return id;
        }
        let id = self.edge_types.len() as EdgeTypeId;
        self.edge_types.push(name.to_string());
        self.edge_type_index.insert(name.to_string(), id);
        id
    }

    /// Interns (or looks up) an attribute, declaring its kind on first use.
    ///
    /// Re-interning with a different kind keeps the original declaration;
    /// the first declaration wins (schemas are append-only).
    pub fn attr(&mut self, name: &str, kind: AttrKind) -> AttrId {
        if let Some(&id) = self.attr_index.get(name) {
            return id;
        }
        let id = self.attrs.len() as AttrId;
        self.attrs.push((name.to_string(), kind));
        self.attr_index.insert(name.to_string(), id);
        id
    }

    /// Looks up a node type id without interning.
    pub fn find_node_type(&self, name: &str) -> Option<NodeTypeId> {
        self.node_type_index.get(name).copied()
    }

    /// Looks up an edge type id without interning.
    pub fn find_edge_type(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_type_index.get(name).copied()
    }

    /// Looks up an attribute id without interning.
    pub fn find_attr(&self, name: &str) -> Option<AttrId> {
        self.attr_index.get(name).copied()
    }

    /// Name of a node type id; panics on unknown ids.
    pub fn node_type_name(&self, id: NodeTypeId) -> &str {
        &self.node_types[id as usize]
    }

    /// Name of an edge type id; panics on unknown ids.
    pub fn edge_type_name(&self, id: EdgeTypeId) -> &str {
        &self.edge_types[id as usize]
    }

    /// Name of an attribute id; panics on unknown ids.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id as usize].0
    }

    /// Declared kind of an attribute id.
    pub fn attr_kind(&self, id: AttrId) -> AttrKind {
        self.attrs[id as usize].1
    }

    /// Number of interned node types.
    pub fn node_type_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of interned edge types.
    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    /// Number of interned attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute ids with the given kind.
    pub fn attrs_of_kind(&self, kind: AttrKind) -> Vec<AttrId> {
        self.attrs
            .iter()
            .enumerate()
            .filter_map(|(i, (_, k))| (*k == kind).then_some(i as AttrId))
            .collect()
    }

    /// JSON representation: `{"node_types": [...], "edge_types": [...],
    /// "attrs": [[name, kind], ...]}`. Lookup indices are derived state and
    /// are not serialized; call [`Schema::rebuild_indices`] after loading.
    pub fn to_json_value(&self) -> gale_json::Value {
        let mut obj = gale_json::Map::new();
        obj.insert(
            "node_types",
            gale_json::Value::Array(
                self.node_types
                    .iter()
                    .map(|n| gale_json::Value::Str(n.clone()))
                    .collect(),
            ),
        );
        obj.insert(
            "edge_types",
            gale_json::Value::Array(
                self.edge_types
                    .iter()
                    .map(|n| gale_json::Value::Str(n.clone()))
                    .collect(),
            ),
        );
        obj.insert(
            "attrs",
            gale_json::Value::Array(
                self.attrs
                    .iter()
                    .map(|(name, kind)| {
                        gale_json::Value::Array(vec![
                            gale_json::Value::Str(name.clone()),
                            gale_json::Value::Str(kind.as_str().to_string()),
                        ])
                    })
                    .collect(),
            ),
        );
        gale_json::Value::Object(obj)
    }

    /// Inverse of [`Schema::to_json_value`]. The lookup indices come back
    /// empty; call [`Schema::rebuild_indices`] before name lookups.
    pub fn from_json_value(v: &gale_json::Value) -> Result<Schema, gale_json::Error> {
        let str_list = |key: &str| -> Result<Vec<String>, gale_json::Error> {
            v.get(key)
                .and_then(|a| a.as_array())
                .ok_or_else(|| gale_json::Error::new(format!("schema: missing array {key:?}")))?
                .iter()
                .map(|s| {
                    s.as_str().map(str::to_string).ok_or_else(|| {
                        gale_json::Error::new(format!("schema: {key} entry not a string"))
                    })
                })
                .collect()
        };
        let node_types = str_list("node_types")?;
        let edge_types = str_list("edge_types")?;
        let attrs = v
            .get("attrs")
            .and_then(|a| a.as_array())
            .ok_or_else(|| gale_json::Error::new("schema: missing array \"attrs\""))?
            .iter()
            .map(|pair| {
                let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                    gale_json::Error::new("schema: attr entry not a [name, kind] pair")
                })?;
                let name = pair[0]
                    .as_str()
                    .ok_or_else(|| gale_json::Error::new("schema: attr name not a string"))?;
                let kind = pair[1]
                    .as_str()
                    .and_then(AttrKind::from_str_name)
                    .ok_or_else(|| {
                        gale_json::Error::new(format!("schema: unknown attr kind {}", pair[1]))
                    })?;
                Ok((name.to_string(), kind))
            })
            .collect::<Result<Vec<_>, gale_json::Error>>()?;
        Ok(Schema {
            node_types,
            edge_types,
            attrs,
            node_type_index: HashMap::new(),
            edge_type_index: HashMap::new(),
            attr_index: HashMap::new(),
        })
    }

    /// Rebuilds the lookup indices after deserialization (the JSON form
    /// skips them).
    pub fn rebuild_indices(&mut self) {
        self.node_type_index = self
            .node_types
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as NodeTypeId))
            .collect();
        self.edge_type_index = self
            .edge_types
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as EdgeTypeId))
            .collect();
        self.attr_index = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i as AttrId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = Schema::new();
        let a = s.node_type("film");
        let b = s.node_type("film");
        assert_eq!(a, b);
        assert_eq!(s.node_type_count(), 1);
        let c = s.node_type("director");
        assert_ne!(a, c);
    }

    #[test]
    fn attr_kind_first_declaration_wins() {
        let mut s = Schema::new();
        let a = s.attr("score", AttrKind::Numeric);
        let b = s.attr("score", AttrKind::Text);
        assert_eq!(a, b);
        assert_eq!(s.attr_kind(a), AttrKind::Numeric);
    }

    #[test]
    fn name_resolution() {
        let mut s = Schema::new();
        let f = s.node_type("film");
        let e = s.edge_type("subsequent");
        let y = s.attr("release_year", AttrKind::Numeric);
        assert_eq!(s.node_type_name(f), "film");
        assert_eq!(s.edge_type_name(e), "subsequent");
        assert_eq!(s.attr_name(y), "release_year");
        assert_eq!(s.find_node_type("film"), Some(f));
        assert_eq!(s.find_node_type("nope"), None);
        assert_eq!(s.find_attr("release_year"), Some(y));
    }

    #[test]
    fn attrs_of_kind_filters() {
        let mut s = Schema::new();
        s.attr("year", AttrKind::Numeric);
        s.attr("name", AttrKind::Text);
        s.attr("score", AttrKind::Numeric);
        assert_eq!(s.attrs_of_kind(AttrKind::Numeric).len(), 2);
        assert_eq!(s.attrs_of_kind(AttrKind::Text).len(), 1);
        assert_eq!(s.attrs_of_kind(AttrKind::Categorical).len(), 0);
    }

    #[test]
    fn json_roundtrip_rebuilds_indices() {
        let mut s = Schema::new();
        s.node_type("film");
        s.edge_type("subsequent");
        s.attr("year", AttrKind::Numeric);
        let json = s.to_json_value().to_string();
        let mut back = Schema::from_json_value(&gale_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back.find_node_type("film"), None); // indices skipped
        back.rebuild_indices();
        assert_eq!(back.find_node_type("film"), Some(0));
        assert_eq!(back.find_attr("year"), Some(0));
    }
}
