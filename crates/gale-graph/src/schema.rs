//! Graph schema: interned node types, edge types, and attribute names.
//!
//! The paper's graphs are heterogeneous (Table II lists up to 73 node types
//! and 584 edge types), so all type and attribute names are interned to small
//! integer ids and resolved through a [`Schema`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a node type (e.g. `film`, `author`).
pub type NodeTypeId = u32;
/// Identifier of an edge type (e.g. `subsequent`, `cites`).
pub type EdgeTypeId = u32;
/// Identifier of an attribute name (e.g. `release_year`).
pub type AttrId = u32;

/// The declared kind of an attribute, used by detectors and featurization to
/// choose the right treatment (z-scores for numerics, dictionaries for
/// categoricals, token embeddings for text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Continuous or ordinal numbers.
    Numeric,
    /// Values drawn from a closed (if unknown) domain.
    Categorical,
    /// Free text such as names and titles.
    Text,
}

/// Interned naming context shared by a graph and everything that analyses it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    node_types: Vec<String>,
    edge_types: Vec<String>,
    attrs: Vec<(String, AttrKind)>,
    #[serde(skip)]
    node_type_index: HashMap<String, NodeTypeId>,
    #[serde(skip)]
    edge_type_index: HashMap<String, EdgeTypeId>,
    #[serde(skip)]
    attr_index: HashMap<String, AttrId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Interns (or looks up) a node type name.
    pub fn node_type(&mut self, name: &str) -> NodeTypeId {
        if let Some(&id) = self.node_type_index.get(name) {
            return id;
        }
        let id = self.node_types.len() as NodeTypeId;
        self.node_types.push(name.to_string());
        self.node_type_index.insert(name.to_string(), id);
        id
    }

    /// Interns (or looks up) an edge type name.
    pub fn edge_type(&mut self, name: &str) -> EdgeTypeId {
        if let Some(&id) = self.edge_type_index.get(name) {
            return id;
        }
        let id = self.edge_types.len() as EdgeTypeId;
        self.edge_types.push(name.to_string());
        self.edge_type_index.insert(name.to_string(), id);
        id
    }

    /// Interns (or looks up) an attribute, declaring its kind on first use.
    ///
    /// Re-interning with a different kind keeps the original declaration;
    /// the first declaration wins (schemas are append-only).
    pub fn attr(&mut self, name: &str, kind: AttrKind) -> AttrId {
        if let Some(&id) = self.attr_index.get(name) {
            return id;
        }
        let id = self.attrs.len() as AttrId;
        self.attrs.push((name.to_string(), kind));
        self.attr_index.insert(name.to_string(), id);
        id
    }

    /// Looks up a node type id without interning.
    pub fn find_node_type(&self, name: &str) -> Option<NodeTypeId> {
        self.node_type_index.get(name).copied()
    }

    /// Looks up an edge type id without interning.
    pub fn find_edge_type(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_type_index.get(name).copied()
    }

    /// Looks up an attribute id without interning.
    pub fn find_attr(&self, name: &str) -> Option<AttrId> {
        self.attr_index.get(name).copied()
    }

    /// Name of a node type id; panics on unknown ids.
    pub fn node_type_name(&self, id: NodeTypeId) -> &str {
        &self.node_types[id as usize]
    }

    /// Name of an edge type id; panics on unknown ids.
    pub fn edge_type_name(&self, id: EdgeTypeId) -> &str {
        &self.edge_types[id as usize]
    }

    /// Name of an attribute id; panics on unknown ids.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id as usize].0
    }

    /// Declared kind of an attribute id.
    pub fn attr_kind(&self, id: AttrId) -> AttrKind {
        self.attrs[id as usize].1
    }

    /// Number of interned node types.
    pub fn node_type_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of interned edge types.
    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    /// Number of interned attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute ids with the given kind.
    pub fn attrs_of_kind(&self, kind: AttrKind) -> Vec<AttrId> {
        self.attrs
            .iter()
            .enumerate()
            .filter_map(|(i, (_, k))| (*k == kind).then_some(i as AttrId))
            .collect()
    }

    /// Rebuilds the lookup indices after deserialization (serde skips them).
    pub fn rebuild_indices(&mut self) {
        self.node_type_index = self
            .node_types
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as NodeTypeId))
            .collect();
        self.edge_type_index = self
            .edge_types
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as EdgeTypeId))
            .collect();
        self.attr_index = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i as AttrId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = Schema::new();
        let a = s.node_type("film");
        let b = s.node_type("film");
        assert_eq!(a, b);
        assert_eq!(s.node_type_count(), 1);
        let c = s.node_type("director");
        assert_ne!(a, c);
    }

    #[test]
    fn attr_kind_first_declaration_wins() {
        let mut s = Schema::new();
        let a = s.attr("score", AttrKind::Numeric);
        let b = s.attr("score", AttrKind::Text);
        assert_eq!(a, b);
        assert_eq!(s.attr_kind(a), AttrKind::Numeric);
    }

    #[test]
    fn name_resolution() {
        let mut s = Schema::new();
        let f = s.node_type("film");
        let e = s.edge_type("subsequent");
        let y = s.attr("release_year", AttrKind::Numeric);
        assert_eq!(s.node_type_name(f), "film");
        assert_eq!(s.edge_type_name(e), "subsequent");
        assert_eq!(s.attr_name(y), "release_year");
        assert_eq!(s.find_node_type("film"), Some(f));
        assert_eq!(s.find_node_type("nope"), None);
        assert_eq!(s.find_attr("release_year"), Some(y));
    }

    #[test]
    fn attrs_of_kind_filters() {
        let mut s = Schema::new();
        s.attr("year", AttrKind::Numeric);
        s.attr("name", AttrKind::Text);
        s.attr("score", AttrKind::Numeric);
        assert_eq!(s.attrs_of_kind(AttrKind::Numeric).len(), 2);
        assert_eq!(s.attrs_of_kind(AttrKind::Text).len(), 1);
        assert_eq!(s.attrs_of_kind(AttrKind::Categorical).len(), 0);
    }

    #[test]
    fn serde_roundtrip_rebuilds_indices() {
        let mut s = Schema::new();
        s.node_type("film");
        s.edge_type("subsequent");
        s.attr("year", AttrKind::Numeric);
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back.find_node_type("film"), None); // indices skipped
        back.rebuild_indices();
        assert_eq!(back.find_node_type("film"), Some(0));
        assert_eq!(back.find_attr("year"), Some(0));
    }
}
