//! Attribute values carried by graph nodes.
//!
//! Section II of the paper models each node as a tuple over `n` attributes
//! whose values may be numbers, strings, or `null` (a missing value — itself
//! a possible error). [`AttrValue`] is that value domain.

use std::fmt;

/// A single attribute value on a node.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A missing value. Distinct from an absent attribute: `Null` means the
    /// attribute exists but carries no value (a frequent error type).
    Null,
    /// An integer value (years, counts).
    Int(i64),
    /// A floating-point value (scores, monetary amounts).
    Float(f64),
    /// A free-text or categorical value.
    Text(String),
}

impl AttrValue {
    /// `true` for [`AttrValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, AttrValue::Null)
    }

    /// Numeric view: integers and floats convert; text parses when it forms
    /// a number; `Null` and non-numeric text return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Null => None,
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            AttrValue::Text(s) => s.trim().parse::<f64>().ok(),
        }
    }

    /// Text view of textual values (no numeric stringification).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical display form used for hashing, dictionaries, and labels.
    pub fn canonical(&self) -> String {
        match self {
            AttrValue::Null => "∅".to_string(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(f) => {
                // Trim trailing zeros so 2.50 and 2.5 share a token.
                let s = format!("{f}");
                s
            }
            AttrValue::Text(s) => s.clone(),
        }
    }

    /// Equality for error detection: numerically equal numbers match across
    /// `Int`/`Float`, text compares exactly, and `Null` only equals `Null`.
    pub fn semantically_eq(&self, other: &AttrValue) -> bool {
        match (self, other) {
            (AttrValue::Null, AttrValue::Null) => true,
            (AttrValue::Text(a), AttrValue::Text(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                _ => false,
            },
        }
    }

    /// Tokenizes the value for feature hashing: text splits on
    /// non-alphanumeric boundaries and lowercases; numbers yield one token.
    pub fn tokens(&self) -> Vec<String> {
        match self {
            AttrValue::Null => vec!["<null>".to_string()],
            AttrValue::Int(i) => vec![i.to_string()],
            AttrValue::Float(f) => vec![format!("{f:.4}")],
            AttrValue::Text(s) => {
                let toks: Vec<String> = s
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|t| !t.is_empty())
                    .map(|t| t.to_lowercase())
                    .collect();
                if toks.is_empty() {
                    vec!["<empty>".to_string()]
                } else {
                    toks
                }
            }
        }
    }
}

impl AttrValue {
    /// JSON representation: `Null`→`null`, `Int`→integer, `Float`→float
    /// (floats always carry a decimal point, so typing survives the round
    /// trip), `Text`→string.
    pub fn to_json_value(&self) -> gale_json::Value {
        match self {
            AttrValue::Null => gale_json::Value::Null,
            AttrValue::Int(i) => gale_json::Value::Int(*i),
            AttrValue::Float(f) => gale_json::Value::Float(*f),
            AttrValue::Text(s) => gale_json::Value::Str(s.clone()),
        }
    }

    /// Inverse of [`AttrValue::to_json_value`].
    pub fn from_json_value(v: &gale_json::Value) -> Result<AttrValue, gale_json::Error> {
        match v {
            gale_json::Value::Null => Ok(AttrValue::Null),
            gale_json::Value::Int(i) => Ok(AttrValue::Int(*i)),
            gale_json::Value::Float(f) => Ok(AttrValue::Float(*f)),
            gale_json::Value::Str(s) => Ok(AttrValue::Text(s.clone())),
            other => Err(gale_json::Error::new(format!(
                "invalid attribute value: {other}"
            ))),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Null => write!(f, "null"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(AttrValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AttrValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::Text("7.7".into()).as_f64(), Some(7.7));
        assert_eq!(AttrValue::Text(" 42 ".into()).as_f64(), Some(42.0));
        assert_eq!(AttrValue::Text("abc".into()).as_f64(), None);
        assert_eq!(AttrValue::Null.as_f64(), None);
    }

    #[test]
    fn semantic_equality() {
        assert!(AttrValue::Int(2).semantically_eq(&AttrValue::Float(2.0)));
        assert!(AttrValue::Null.semantically_eq(&AttrValue::Null));
        assert!(!AttrValue::Null.semantically_eq(&AttrValue::Int(0)));
        assert!(AttrValue::Text("x".into()).semantically_eq(&"x".into()));
        assert!(!AttrValue::Text("x".into()).semantically_eq(&"y".into()));
        // Text "2" vs Int 2 counts as equal through the numeric view.
        assert!(AttrValue::Text("2".into()).semantically_eq(&AttrValue::Int(2)));
    }

    #[test]
    fn tokenization() {
        let v = AttrValue::Text("Avengers: Infinity War".into());
        assert_eq!(v.tokens(), vec!["avengers", "infinity", "war"]);
        assert_eq!(AttrValue::Null.tokens(), vec!["<null>"]);
        assert_eq!(AttrValue::Int(2015).tokens(), vec!["2015"]);
        assert_eq!(AttrValue::Text("!!!".into()).tokens(), vec!["<empty>"]);
    }

    #[test]
    fn canonical_forms() {
        assert_eq!(AttrValue::Null.canonical(), "∅");
        assert_eq!(AttrValue::Int(-4).canonical(), "-4");
        assert_eq!(AttrValue::Text("a b".into()).canonical(), "a b");
    }

    #[test]
    fn conversions() {
        let v: AttrValue = 5i64.into();
        assert_eq!(v, AttrValue::Int(5));
        let v: AttrValue = 1.5f64.into();
        assert_eq!(v, AttrValue::Float(1.5));
        let v: AttrValue = "hi".into();
        assert_eq!(v, AttrValue::Text("hi".into()));
    }

    #[test]
    fn json_roundtrip() {
        let vals = vec![
            AttrValue::Null,
            AttrValue::Int(7),
            AttrValue::Float(3.25),
            AttrValue::Float(2.0), // integral float must stay a float
            AttrValue::Text("species".into()),
        ];
        let json =
            gale_json::Value::Array(vals.iter().map(|v| v.to_json_value()).collect()).to_string();
        let parsed = gale_json::from_str(&json).unwrap();
        let back: Vec<AttrValue> = parsed
            .as_array()
            .unwrap()
            .iter()
            .map(|v| AttrValue::from_json_value(v).unwrap())
            .collect();
        assert_eq!(vals, back);
    }
}
