//! Feature representation `G = (X_G, A_G)` of Section II.

use crate::graph::Graph;
use gale_tensor::{Matrix, SparseMatrix};

/// An attributed graph in feature form: a node-feature matrix plus the
/// adjacency structure and its pre-computed propagation operator.
#[derive(Debug, Clone)]
pub struct FeatureRepr {
    /// `n x d` node feature matrix `X_G` (row `v` encodes node `v`).
    pub x: Matrix,
    /// Binary symmetric adjacency `A_G`.
    pub a: SparseMatrix,
    /// Symmetric-normalized propagation operator `D̃^{-1/2} Ã D̃^{-1/2}`
    /// (with self-loops), shared by GCN layers, label propagation, and PPR.
    pub s_norm: SparseMatrix,
}

impl FeatureRepr {
    /// Assembles a feature representation from a graph and a feature matrix
    /// whose row count matches the node count.
    pub fn new(graph: &Graph, x: Matrix) -> Self {
        assert_eq!(
            x.rows(),
            graph.node_count(),
            "FeatureRepr: feature rows {} != node count {}",
            x.rows(),
            graph.node_count()
        );
        let a = graph.adjacency();
        let s_norm = a.sym_normalized_with_self_loops();
        FeatureRepr { x, a, s_norm }
    }

    /// Builds features by evaluating `f(node_id)` for every node.
    pub fn from_fn(graph: &Graph, dim: usize, mut f: impl FnMut(usize) -> Vec<f64>) -> Self {
        let n = graph.node_count();
        let mut x = Matrix::zeros(n, dim);
        for v in 0..n {
            let row = f(v);
            assert_eq!(
                row.len(),
                dim,
                "FeatureRepr::from_fn: row {v} has wrong dim"
            );
            x.set_row(v, &row);
        }
        FeatureRepr::new(graph, x)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.x.rows()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrKind;

    fn tiny() -> Graph {
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node_with("t", &[("x", AttrKind::Numeric, (i as i64).into())]);
        }
        g.add_edge_named(0, 1, "e");
        g.add_edge_named(1, 2, "e");
        g
    }

    #[test]
    fn shapes_align() {
        let g = tiny();
        let fr = FeatureRepr::from_fn(&g, 2, |v| vec![v as f64, 1.0]);
        assert_eq!(fr.node_count(), 3);
        assert_eq!(fr.dim(), 2);
        assert_eq!(fr.a.rows(), 3);
        assert_eq!(fr.s_norm.rows(), 3);
        assert_eq!(fr.x[(2, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_rows_panic() {
        let g = tiny();
        let _ = FeatureRepr::new(&g, Matrix::zeros(5, 2));
    }

    #[test]
    fn normalization_includes_self_loops() {
        let g = tiny();
        let fr = FeatureRepr::from_fn(&g, 1, |_| vec![1.0]);
        // Every diagonal entry is positive thanks to the self-loop.
        for v in 0..3 {
            assert!(fr.s_norm.get(v, v) > 0.0);
        }
    }
}
