//! Label propagation and personalized PageRank (PPR).
//!
//! Section V of the paper defines *topological typicality* through the PPR
//! matrix `P = α (I − (1−α) D̃^{-1/2} Ã D̃^{-1/2})^{-1}` and maintains soft
//! labels via label propagation `Y^i = P Y^{i-1}`. `P` is dense, so instead of
//! materializing it we expose [`ppr_smooth`], which applies `P` to a vector
//! (or each column of a matrix) by truncated power iteration:
//!
//! `P v = α Σ_{t≥0} (1−α)^t S^t v`.
//!
//! Because `S` is symmetric, `P` is symmetric too — the fact GALE's query
//! selector exploits to evaluate row inner products ⟨P_v, m⟩ as `(P m)(v)`.

use gale_tensor::{matvec_access, Matrix, NeighborAccess, SparseMatrix};

/// Configuration shared by the propagation routines.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Restart probability α of the random walk (paper's default regime).
    pub alpha: f64,
    /// Number of power-iteration terms; the truncation error decays as
    /// `(1−α)^iters`.
    pub iterations: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            alpha: 0.15,
            iterations: 30,
        }
    }
}

/// Applies the PPR operator `P` to a vector: returns `α Σ (1−α)^t S^t v`.
///
/// `s_norm` must be the symmetric-normalized operator with self-loops
/// (see [`SparseMatrix::sym_normalized_with_self_loops`]).
pub fn ppr_smooth(s_norm: &SparseMatrix, v: &[f64], cfg: &PropagationConfig) -> Vec<f64> {
    assert_eq!(s_norm.rows(), v.len(), "ppr_smooth: size mismatch");
    let alpha = cfg.alpha;
    let mut term: Vec<f64> = v.to_vec(); // S^t v, starts at t = 0
    let mut acc: Vec<f64> = v.iter().map(|x| alpha * x).collect();
    let mut weight = alpha;
    for _ in 0..cfg.iterations {
        term = s_norm.matvec(&term);
        weight *= 1.0 - alpha;
        for (a, t) in acc.iter_mut().zip(&term) {
            *a += weight * t;
        }
    }
    acc
}

/// [`ppr_smooth`] over any [`NeighborAccess`] operator — the out-of-core
/// path used by the million-node pipeline, where `S` is an adapter over a
/// memory-mapped adjacency and never materialized. Bitwise identical to
/// [`ppr_smooth`] when the access is an in-memory [`SparseMatrix`]: the
/// per-row accumulation order of `matvec_access` matches
/// [`SparseMatrix::matvec`], and the scalar recurrence is shared.
pub fn ppr_smooth_access<A: NeighborAccess + Sync + ?Sized>(
    s_norm: &A,
    v: &[f64],
    cfg: &PropagationConfig,
) -> Vec<f64> {
    assert_eq!(
        s_norm.node_count(),
        v.len(),
        "ppr_smooth_access: size mismatch"
    );
    let alpha = cfg.alpha;
    let mut term: Vec<f64> = v.to_vec(); // S^t v, starts at t = 0
    let mut next: Vec<f64> = Vec::new();
    let mut acc: Vec<f64> = v.iter().map(|x| alpha * x).collect();
    let mut weight = alpha;
    for _ in 0..cfg.iterations {
        matvec_access(s_norm, &term, &mut next);
        std::mem::swap(&mut term, &mut next);
        weight *= 1.0 - alpha;
        for (a, t) in acc.iter_mut().zip(&term) {
            *a += weight * t;
        }
    }
    acc
}

/// Applies `P` column-wise to a dense matrix (e.g. a label matrix `Y`).
pub fn ppr_smooth_matrix(s_norm: &SparseMatrix, m: &Matrix, cfg: &PropagationConfig) -> Matrix {
    assert_eq!(s_norm.rows(), m.rows(), "ppr_smooth_matrix: size mismatch");
    let alpha = cfg.alpha;
    let mut term = m.clone();
    let mut acc = m.scaled(alpha);
    let mut weight = alpha;
    for _ in 0..cfg.iterations {
        term = s_norm.matmul_dense(&term);
        weight *= 1.0 - alpha;
        acc.axpy(weight, &term);
    }
    acc
}

/// One PPR row/column for a single seed node (a unit basis vector smoothed by
/// `P`). By symmetry of `P` this is both `P_{v,:}` and `P_{:,v}`.
pub fn ppr_single(s_norm: &SparseMatrix, seed: usize, cfg: &PropagationConfig) -> Vec<f64> {
    let mut e = vec![0.0; s_norm.rows()];
    e[seed] = 1.0;
    ppr_smooth(s_norm, &e, cfg)
}

/// Soft labels by label propagation as in Section V ("Updating soft labels"):
/// starting from `y0` (an `n x c` one-hot/partial label matrix), returns
/// `P * y0` and each row's argmax as the soft label class.
///
/// Rows with all-zero mass keep class `usize::MAX` (no evidence reaches
/// them), which callers should treat as "unknown".
pub fn soft_labels(
    s_norm: &SparseMatrix,
    y0: &Matrix,
    cfg: &PropagationConfig,
) -> (Matrix, Vec<usize>) {
    let y = ppr_smooth_matrix(s_norm, y0, cfg);
    let classes = (0..y.rows())
        .map(|r| {
            let row = y.row(r);
            let total: f64 = row.iter().map(|x| x.abs()).sum();
            if total < 1e-12 {
                usize::MAX
            } else {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            }
        })
        .collect();
    (y, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one bridge edge: 0-1-2 and 3-4-5, bridge 2-3.
    fn barbell() -> SparseMatrix {
        let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let mut triplets = Vec::new();
        for (a, b) in edges {
            triplets.push((a, b, 1.0));
            triplets.push((b, a, 1.0));
        }
        SparseMatrix::from_triplets(6, 6, triplets)
    }

    #[test]
    fn ppr_mass_concentrates_near_seed() {
        let s = barbell().sym_normalized_with_self_loops();
        let p0 = ppr_single(&s, 0, &PropagationConfig::default());
        // The seed keeps the largest share; the far triangle gets the least.
        assert!(p0[0] > p0[1]);
        assert!(p0[1] > p0[4]);
        assert!(p0[0] > p0[5] * 3.0);
    }

    #[test]
    fn ppr_symmetry_via_single_rows() {
        let s = barbell().sym_normalized_with_self_loops();
        let cfg = PropagationConfig::default();
        let p0 = ppr_single(&s, 0, &cfg);
        let p4 = ppr_single(&s, 4, &cfg);
        // P is symmetric: P[0][4] == P[4][0].
        assert!((p0[4] - p4[0]).abs() < 1e-12);
    }

    #[test]
    fn ppr_linear_in_input() {
        let s = barbell().sym_normalized_with_self_loops();
        let cfg = PropagationConfig::default();
        let v1 = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let v2 = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let sum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + 2.0 * b).collect();
        let p1 = ppr_smooth(&s, &v1, &cfg);
        let p2 = ppr_smooth(&s, &v2, &cfg);
        let ps = ppr_smooth(&s, &sum, &cfg);
        for i in 0..6 {
            assert!((ps[i] - (p1[i] + 2.0 * p2[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn ppr_access_path_is_bitwise_equal_to_sparse_path() {
        let s = barbell().sym_normalized_with_self_loops();
        let cfg = PropagationConfig::default();
        let v = vec![0.3, 0.0, -1.2, 0.0, 2.0, 0.7];
        let dense = ppr_smooth(&s, &v, &cfg);
        let access = ppr_smooth_access(&s, &v, &cfg);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&dense), bits(&access));
    }

    #[test]
    fn ppr_matches_closed_form_on_tiny_graph() {
        // Verify the truncated series against the dense inverse
        // α (I − (1−α) S)^{-1} on a 3-node path.
        let a =
            SparseMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let s = a.sym_normalized_with_self_loops();
        let alpha = 0.2;
        let cfg = PropagationConfig {
            alpha,
            iterations: 300,
        };
        let sd = s.to_dense();
        // M = I − (1−α) S
        let mut m = Matrix::identity(3);
        m.axpy(-(1.0 - alpha), &sd);
        for seed in 0..3 {
            let mut e = vec![0.0; 3];
            e[seed] = 1.0;
            let exact = gale_tensor::solve(&m, &e).unwrap();
            let exact: Vec<f64> = exact.iter().map(|x| alpha * x).collect();
            let approx = ppr_single(&s, seed, &cfg);
            for i in 0..3 {
                assert!(
                    (exact[i] - approx[i]).abs() < 1e-9,
                    "seed {seed} entry {i}: {} vs {}",
                    exact[i],
                    approx[i]
                );
            }
        }
    }

    #[test]
    fn matrix_smoothing_matches_columnwise_vectors() {
        let s = barbell().sym_normalized_with_self_loops();
        let cfg = PropagationConfig::default();
        let y0 = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
        ]);
        let y = ppr_smooth_matrix(&s, &y0, &cfg);
        let c0 = ppr_smooth(&s, &y0.col(0), &cfg);
        let c1 = ppr_smooth(&s, &y0.col(1), &cfg);
        for r in 0..6 {
            assert!((y[(r, 0)] - c0[r]).abs() < 1e-12);
            assert!((y[(r, 1)] - c1[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn soft_labels_follow_topology() {
        let s = barbell().sym_normalized_with_self_loops();
        // Node 0 labeled class 0, node 5 labeled class 1.
        let mut y0 = Matrix::zeros(6, 2);
        y0[(0, 0)] = 1.0;
        y0[(5, 1)] = 1.0;
        let (_, classes) = soft_labels(&s, &y0, &PropagationConfig::default());
        assert_eq!(classes[1], 0);
        assert_eq!(classes[2], 0);
        assert_eq!(classes[3], 1);
        assert_eq!(classes[4], 1);
    }

    #[test]
    fn soft_labels_unknown_for_isolated_unlabeled() {
        let s = SparseMatrix::zeros(3, 3).sym_normalized_with_self_loops();
        let mut y0 = Matrix::zeros(3, 2);
        y0[(0, 0)] = 1.0;
        let (_, classes) = soft_labels(&s, &y0, &PropagationConfig::default());
        assert_eq!(classes[0], 0);
        assert_eq!(classes[1], usize::MAX);
        assert_eq!(classes[2], usize::MAX);
    }
}
