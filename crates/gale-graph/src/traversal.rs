//! Graph traversal utilities: BFS, k-hop neighborhoods, induced subgraphs,
//! and connected components.
//!
//! The annotator's Type-1 "soft subgraphs" and the synthetic-data pipeline
//! both lean on these.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS hop distances from `start` over the undirected topology;
/// `usize::MAX` marks unreachable nodes.
pub fn bfs_distances(neighbors: &[Vec<NodeId>], start: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; neighbors.len()];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in &neighbors[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All nodes within `k` undirected hops of `center` (inclusive of `center`),
/// in BFS order.
pub fn k_hop_neighborhood(neighbors: &[Vec<NodeId>], center: NodeId, k: usize) -> Vec<NodeId> {
    let mut dist = vec![usize::MAX; neighbors.len()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    dist[center] = 0;
    queue.push_back(center);
    while let Some(u) = queue.pop_front() {
        out.push(u);
        if dist[u] == k {
            continue;
        }
        for &v in &neighbors[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    out
}

/// The subgraph induced by a node set.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The new graph (with the parent's schema cloned).
    pub graph: Graph,
    /// `mapping[new_id] = old_id` back into the parent graph.
    pub mapping: Vec<NodeId>,
}

/// Builds the subgraph induced by `node_ids` (deduplicated; order of first
/// occurrence preserved). Edges are kept when both endpoints are selected.
pub fn induced_subgraph(g: &Graph, node_ids: &[NodeId]) -> InducedSubgraph {
    let mut mapping = Vec::new();
    let mut old_to_new = vec![usize::MAX; g.node_count()];
    for &id in node_ids {
        if old_to_new[id] == usize::MAX {
            old_to_new[id] = mapping.len();
            mapping.push(id);
        }
    }
    let mut sub = Graph::with_schema(g.schema.clone());
    for &old in &mapping {
        sub.add_node(g.node(old).clone());
    }
    for e in g.edges() {
        let (s, d) = (old_to_new[e.src], old_to_new[e.dst]);
        if s != usize::MAX && d != usize::MAX {
            sub.add_edge(s, d, e.edge_type);
        }
    }
    InducedSubgraph {
        graph: sub,
        mapping,
    }
}

/// Connected components over the undirected topology; returns the component
/// index of each node and the number of components.
pub fn connected_components(neighbors: &[Vec<NodeId>]) -> (Vec<usize>, usize) {
    let n = neighbors.len();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &neighbors[u] {
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Degree assortativity coefficient over the undirected edges: the Pearson
/// correlation of the degrees at the two ends of each edge. The annotator
/// reports this as global context (Section III-B cites [38]).
///
/// Returns 0.0 for graphs with fewer than 2 edges or degenerate degree
/// variance.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let deg = g.degrees();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for e in g.edges() {
        if e.src == e.dst {
            continue;
        }
        // Count each undirected edge in both orientations for symmetry.
        xs.push(deg[e.src] as f64);
        ys.push(deg[e.dst] as f64);
        xs.push(deg[e.dst] as f64);
        ys.push(deg[e.src] as f64);
    }
    if xs.len() < 4 {
        return 0.0;
    }
    gale_tensor::stats::pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrKind;

    /// Path 0-1-2-3 plus isolated node 4.
    fn path_graph() -> Graph {
        let mut g = Graph::new();
        for _ in 0..5 {
            g.add_node_with("t", &[("x", AttrKind::Numeric, 0i64.into())]);
        }
        g.add_edge_named(0, 1, "e");
        g.add_edge_named(1, 2, "e");
        g.add_edge_named(2, 3, "e");
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let nbrs = g.neighbor_lists();
        let d = bfs_distances(&nbrs, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], usize::MAX);
    }

    #[test]
    fn k_hop_respects_radius() {
        let g = path_graph();
        let nbrs = g.neighbor_lists();
        let mut hop1 = k_hop_neighborhood(&nbrs, 1, 1);
        hop1.sort_unstable();
        assert_eq!(hop1, vec![0, 1, 2]);
        let mut hop0 = k_hop_neighborhood(&nbrs, 2, 0);
        hop0.sort_unstable();
        assert_eq!(hop0, vec![2]);
        let mut all = k_hop_neighborhood(&nbrs, 0, 10);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]); // node 4 unreachable
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = path_graph();
        let sub = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 1); // only 1-2 survives
        assert_eq!(sub.mapping, vec![1, 2, 4]);
        // Edge endpoints remapped correctly.
        let e = sub.graph.edges()[0];
        assert_eq!((e.src, e.dst), (0, 1));
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = path_graph();
        let sub = induced_subgraph(&g, &[2, 2, 1, 2]);
        assert_eq!(sub.mapping, vec![2, 1]);
    }

    #[test]
    fn components_counted() {
        let g = path_graph();
        let nbrs = g.neighbor_lists();
        let (comp, count) = connected_components(&nbrs);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn star_graph_is_disassortative() {
        // A star: hub connected to many leaves has negative assortativity.
        let mut g = Graph::new();
        for _ in 0..6 {
            g.add_node_with("t", &[]);
        }
        for leaf in 1..6 {
            g.add_edge_named(0, leaf, "e");
        }
        assert!(degree_assortativity(&g) < -0.9);
    }

    #[test]
    fn regular_graph_assortativity_degenerate() {
        // A cycle is degree-regular: correlation undefined, reported as 0.
        let mut g = Graph::new();
        for _ in 0..4 {
            g.add_node_with("t", &[]);
        }
        for i in 0..4 {
            g.add_edge_named(i, (i + 1) % 4, "e");
        }
        assert_eq!(degree_assortativity(&g), 0.0);
    }
}
