//! Property tests for the on-disk CSR store: write → map → read must be
//! byte-identical to the in-memory CSR, on ragged graphs with empty rows,
//! through both the mapped and the decoded backing.

use gale_graph::{write_csr, CsrStore};
use gale_tensor::{EdgeSample, NeighborAccess, Rng, SparseMatrix};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gale-store-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{case}.csr"))
}

/// Ragged random CSR: rows draw 0..=per_row entries, so empty rows (and
/// with small sizes, fully empty column ranges) occur routinely.
fn ragged_sparse(rows: usize, cols: usize, per_row: usize, seed: u64) -> SparseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for r in 0..rows {
        for _ in 0..rng.below(per_row + 1) {
            triplets.push((r, rng.below(cols), rng.gauss()));
        }
    }
    SparseMatrix::from_triplets(rows, cols, triplets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_roundtrips_bitwise_vs_in_memory_csr(
        rows in 1usize..120,
        cols in 1usize..90,
        per_row in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let s = ragged_sparse(rows, cols, per_row, seed);
        let path = tmp("roundtrip", seed ^ ((rows as u64) << 32) ^ (cols as u64));
        write_csr(&s, cols, &path).unwrap();

        let mapped = CsrStore::open(&path).unwrap();
        let decoded = CsrStore::open_in_memory(&path).unwrap();
        for store in [&mapped, &decoded] {
            prop_assert_eq!(store.rows(), rows);
            prop_assert_eq!(store.cols(), cols);
            prop_assert_eq!(store.nnz(), s.nnz());
            prop_assert_eq!(store.entry_count(), s.entry_count());
            for r in 0..rows {
                let mut got: Vec<(usize, u64)> = Vec::new();
                store.visit_neighbors(r, &mut |c, v| got.push((c, v.to_bits())));
                let want: Vec<(usize, u64)> =
                    s.row_iter(r).map(|(c, v)| (c, v.to_bits())).collect();
                prop_assert_eq!(got, want, "row {}", r);
                prop_assert_eq!(store.neighbor_count(r), s.row_nnz(r));
                for (c, _) in s.row_iter(r) {
                    prop_assert!(store.has_neighbor(r, c));
                }
            }
            for k in 0..s.nnz() {
                prop_assert_eq!(store.entry_at(k), s.entry_at(k), "entry {}", k);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
