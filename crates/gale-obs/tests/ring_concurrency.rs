//! Concurrency and determinism properties of the request-tracing ring:
//! records pushed by racing writers are never torn (every drained record
//! is internally consistent), counters account for every push, and the
//! head-sampling policy is a pure function of `(policy, request_id)`.

use gale_obs::ring::{Ring, TracePolicy, WideEvent};
use proptest::prelude::*;
use std::sync::Arc;

/// Derives every field of a [`WideEvent`] from its request id, so a reader
/// can verify a record was written atomically: any interleaving of two
/// writers' field stores would break the derivation.
fn derived(id: u64) -> WideEvent {
    let mix = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let field = |k: u32| (mix.rotate_left(k) & 0xFFFF) as u32;
    WideEvent {
        request_id: id,
        shard: field(1),
        model_version: mix ^ id,
        precision_bits: field(11),
        rows: field(2),
        batch_rows: field(3),
        status: (mix % 400) as u16 + 100,
        read_us: field(4),
        parse_us: field(5),
        dispatch_us: field(6),
        queue_us: field(7),
        assembly_us: field(8),
        forward_us: field(9),
        write_us: field(10),
        total_us: mix.wrapping_add(id),
    }
}

/// Runs `threads` writers pushing disjoint id ranges while a reader drains
/// concurrently; asserts every record ever observed is exactly its
/// derivation (no tearing) and the push counter saw every write.
fn hammer(threads: usize, per_thread: u64, capacity: usize) -> Result<(), TestCaseError> {
    let ring = Arc::new(Ring::new(capacity));
    let mut writers = Vec::new();
    for t in 0..threads {
        let ring = Arc::clone(&ring);
        writers.push(std::thread::spawn(move || {
            let base = 1 + t as u64 * per_thread;
            for id in base..base + per_thread {
                ring.push(derived(id));
            }
        }));
    }
    // A racing reader: drains (and checks) while writers are mid-flight.
    let reader = {
        let ring = Arc::clone(&ring);
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            for _ in 0..8 {
                seen.extend(ring.drain());
                std::thread::yield_now();
            }
            seen
        })
    };
    for w in writers {
        w.join().expect("writer panicked");
    }
    let mut seen = reader.join().expect("reader panicked");
    seen.extend(ring.drain());

    for ev in &seen {
        prop_assert_eq!(
            *ev,
            derived(ev.request_id),
            "torn record for id {}",
            ev.request_id
        );
    }
    let total = threads as u64 * per_thread;
    prop_assert_eq!(ring.pushed(), total);
    prop_assert!(seen.len() as u64 <= total);
    prop_assert!(ring.dropped() <= total);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_writers_never_tear_records(
        per_thread in 16u64..200,
        capacity in 1usize..96,
    ) {
        for threads in [1usize, 2, 8] {
            hammer(threads, per_thread, capacity)?;
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_policy_and_id(
        every in 1u64..64,
        seed in 0u64..1_000_000,
        start in 0u64..10_000,
    ) {
        let p = TracePolicy { sample_every: every, seed, slow_us: u64::MAX };
        // Exactly one id is kept in every aligned window of `every`.
        let window: Vec<u64> = (start..start + every * 4).filter(|&id| p.sampled(id)).collect();
        prop_assert_eq!(window.len() as u64, 4);
        for w in window.windows(2) {
            prop_assert_eq!(w[1] - w[0], every);
        }
        // Re-evaluating never changes a decision.
        for &id in &window {
            prop_assert!(p.sampled(id));
        }
    }
}

/// The process-global offer path keeps sampled records intact under
/// concurrent writers (sample_every=1 routes everything at the recent
/// ring; slow_us=0 routes everything at the slow ring too).
#[test]
fn global_offer_path_is_consistent_under_threads() {
    gale_obs::ring::configure(
        true,
        TracePolicy {
            sample_every: 1,
            seed: 0,
            slow_us: 0,
        },
    );
    gale_obs::ring::clear();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    gale_obs::ring::offer(derived(1 + t * 200 + i));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let recent = gale_obs::ring::drain_recent();
    let slow = gale_obs::ring::slow_snapshot();
    assert!(!recent.is_empty() && !slow.is_empty());
    for ev in recent.iter().chain(&slow) {
        assert_eq!(*ev, derived(ev.request_id), "torn record via offer()");
    }
    let stats = gale_obs::ring::stats_json();
    assert_eq!(stats["enabled"].as_bool(), Some(true));
    assert_eq!(stats["sampled"].as_u64(), Some(800));
    assert_eq!(stats["slow_captured"].as_u64(), Some(800));
    gale_obs::ring::configure(false, TracePolicy::default());
}
