//! Process-level resource probes.
//!
//! The scale benches and the serving `/metrics` endpoint both need the
//! process peak resident set size — the number the out-of-core training
//! path is designed to bound. Linux exposes it as `VmHWM` in
//! `/proc/self/status`; everywhere else this module reports 0 rather than
//! guessing.

use crate::metrics;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). Returns 0 on platforms without procfs or when the
/// file cannot be parsed — callers treat 0 as "unknown", never as "no
/// memory used".
///
/// Note `VmHWM` is a process-lifetime high-water mark: it only ever rises,
/// so phase-level attribution requires sampling in ascending-footprint
/// order.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| parse_vm_hwm(&s))
        .unwrap_or(0)
}

/// Parses the `VmHWM:` line (kB) out of a `/proc/<pid>/status` body.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Samples [`peak_rss_bytes`] into the `proc.peak_rss_bytes` gauge and
/// returns the sampled value. Sets the gauge unconditionally (not gated on
/// [`crate::enabled`]) so `/metrics` reports a live number whether or not
/// trace telemetry is on — the same contract as the serving metrics.
pub fn record_peak_rss() -> u64 {
    let v = peak_rss_bytes();
    metrics::gauge("proc.peak_rss_bytes").set(v as f64);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let body = "Name:\tgale\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t4\n";
        assert_eq!(parse_vm_hwm(body), Some(123_456 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tgale\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_peak_rss_is_positive_and_recorded() {
        let v = record_peak_rss();
        assert!(v > 0, "VmHWM should be readable on Linux");
        assert_eq!(metrics::gauge("proc.peak_rss_bytes").get(), v as f64);
        // High-water mark never decreases.
        assert!(peak_rss_bytes() >= v);
    }
}
