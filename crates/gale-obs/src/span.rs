//! Nested wall-clock spans and point-in-time events.
//!
//! A [`Span`] measures a phase and, when telemetry is enabled, emits one
//! JSONL record on finish. Nesting is tracked per thread: each span
//! records its parent's id and its depth, so a trace reconstructs the full
//! phase tree (`gale.run` > `gale.iteration` > `gale.select` > ...).
//!
//! Record schema (one JSON object per line):
//!
//! ```json
//! {"t":"span","name":"gale.select","id":7,"parent":5,"depth":2,
//!  "thread":"main","start_us":123,"us":4567,"iter":3}
//! {"t":"event","name":"sgan.epoch","thread":"main","at_us":99,
//!  "epoch":12,"d_loss":0.7}
//! ```
//!
//! `start_us`/`at_us` are offsets from the process's first telemetry
//! timestamp; extra keys are the user fields.

use gale_json::{Map, Value};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Microseconds since the process's first telemetry timestamp.
fn epoch_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

thread_local! {
    /// `(current span id, current depth)` for the running thread.
    static CURRENT: Cell<(u64, u32)> = const { Cell::new((0, 0)) };

    /// Request/trace id in scope on this thread (0 = none). Set with
    /// [`request_scope`]; spans and events opened inside the scope stamp
    /// it into their records as `"req"`, so a trace can be filtered down
    /// to one request's phase tree.
    static REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Restores the previous request id when dropped.
#[must_use = "the request id is scoped to this guard's lifetime"]
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST.with(|r| r.set(self.prev));
    }
}

/// Sets the thread's current request id until the returned guard drops.
/// Spans opened and events emitted inside the scope carry `"req": id`.
/// Scopes nest; ids come from [`crate::ring::next_request_id`] or any
/// caller-owned scheme.
pub fn request_scope(id: u64) -> RequestScope {
    let prev = REQUEST.with(|r| r.replace(id));
    RequestScope { prev }
}

/// The thread's current request id (0 when no scope is active).
pub fn current_request() -> u64 {
    REQUEST.with(|r| r.get())
}

fn thread_label() -> String {
    std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// A live span. Construct with [`crate::span!`]; always measures wall
/// clock (so phase durations exist with telemetry off), emits a trace
/// record only when telemetry was enabled at creation.
#[must_use = "a span measures the scope it lives in; bind it with `let`"]
pub struct Span {
    name: &'static str,
    start: Instant,
    start_us: u64,
    id: u64,
    parent: u64,
    depth: u32,
    req: u64,
    fields: Vec<(&'static str, Value)>,
    live: bool,
    closed: bool,
}

/// Opens a span (the [`crate::span!`] macro's backend).
pub fn open(name: &'static str) -> Span {
    let live = crate::enabled();
    let (id, parent, depth, start_us) = if live {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let (parent, depth) = CURRENT.with(|c| c.get());
        CURRENT.with(|c| c.set((id, depth + 1)));
        (id, parent, depth, epoch_us())
    } else {
        (0, 0, 0, 0)
    };
    Span {
        name,
        start: Instant::now(),
        start_us,
        id,
        parent,
        depth,
        req: if live { current_request() } else { 0 },
        fields: Vec::new(),
        live,
        closed: false,
    }
}

impl Span {
    /// Attaches a key-value field (kept only when the span is live).
    pub fn field(mut self, key: &'static str, v: impl Into<Value>) -> Self {
        if self.live {
            self.fields.push((key, v.into()));
        }
        self
    }

    /// Wall clock since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span, emitting its trace record if live, and returns the
    /// measured duration.
    pub fn finish(mut self) -> Duration {
        let d = self.elapsed();
        self.close();
        d
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if !self.live {
            return;
        }
        CURRENT.with(|c| c.set((self.parent, self.depth)));
        let mut obj = Map::new();
        obj.insert("t", Value::from("span"));
        obj.insert("name", Value::from(self.name));
        obj.insert("id", Value::from(self.id));
        obj.insert("parent", Value::from(self.parent));
        obj.insert("depth", Value::from(self.depth as u64));
        obj.insert("thread", Value::from(thread_label()));
        obj.insert("start_us", Value::from(self.start_us));
        obj.insert("us", Value::from(self.start.elapsed().as_micros() as u64));
        if self.req != 0 {
            obj.insert("req", Value::from(self.req));
        }
        for (k, v) in self.fields.drain(..) {
            obj.insert(k, v);
        }
        crate::trace::write_line(&Value::Object(obj).to_string_compact());
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Emits an event record (the [`crate::event!`] macro's backend). Callers
/// gate on [`crate::enabled`].
pub fn emit_event(name: &str, fields: Vec<(&'static str, Value)>) {
    let (parent, _) = CURRENT.with(|c| c.get());
    let mut obj = Map::new();
    obj.insert("t", Value::from("event"));
    obj.insert("name", Value::from(name));
    obj.insert("thread", Value::from(thread_label()));
    obj.insert("at_us", Value::from(epoch_us()));
    if parent != 0 {
        obj.insert("span", Value::from(parent));
    }
    let req = current_request();
    if req != 0 {
        obj.insert("req", Value::from(req));
    }
    for (k, v) in fields {
        obj.insert(k, v);
    }
    crate::trace::write_line(&Value::Object(obj).to_string_compact());
}

/// A minimal always-on stopwatch for phase timing where no trace record is
/// wanted: [`SpanTimer::elapsed`] mirrors [`Span::elapsed`] without any
/// telemetry coupling.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        SpanTimer(Instant::now())
    }

    /// Wall clock since start.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

impl Default for SpanTimer {
    fn default() -> Self {
        SpanTimer::start()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spans_nest_and_emit_with_fields() {
        let _g = crate::test_guard();
        let buf = crate::trace::capture_to_memory();
        crate::set_enabled(true);
        {
            let _outer = crate::span!("test.outer", iter = 1usize);
            let inner = crate::span!("test.inner", k = "v");
            let _ = inner.finish();
        }
        crate::event!("test.event", x = 2.5);
        crate::set_enabled(false);
        let lines = buf.lock().unwrap().clone();
        assert_eq!(lines.len(), 3, "inner span, outer span, event");
        let inner = gale_json::from_str(&lines[0]).unwrap();
        let outer = gale_json::from_str(&lines[1]).unwrap();
        let event = gale_json::from_str(&lines[2]).unwrap();
        assert_eq!(inner["t"].as_str(), Some("span"));
        assert_eq!(inner["name"].as_str(), Some("test.inner"));
        assert_eq!(inner["k"].as_str(), Some("v"));
        assert_eq!(outer["name"].as_str(), Some("test.outer"));
        assert_eq!(outer["iter"].as_u64(), Some(1));
        // Nesting: inner's parent is outer's id, one level deeper.
        assert_eq!(inner["parent"], outer["id"]);
        assert_eq!(
            inner["depth"].as_u64().unwrap(),
            outer["depth"].as_u64().unwrap() + 1
        );
        assert_eq!(event["t"].as_str(), Some("event"));
        assert_eq!(event["x"].as_f64(), Some(2.5));
    }

    #[test]
    fn request_scope_stamps_spans_and_events_and_restores() {
        let _g = crate::test_guard();
        let buf = crate::trace::capture_to_memory();
        crate::set_enabled(true);
        assert_eq!(super::current_request(), 0);
        {
            let _scope = super::request_scope(42);
            assert_eq!(super::current_request(), 42);
            {
                let _nested = super::request_scope(43);
                assert_eq!(super::current_request(), 43);
            }
            assert_eq!(super::current_request(), 42, "nested scope restores");
            let sp = crate::span!("test.req_span");
            let _ = sp.finish();
            crate::event!("test.req_event", x = 1);
        }
        assert_eq!(super::current_request(), 0);
        let sp = crate::span!("test.no_req_span");
        let _ = sp.finish();
        crate::set_enabled(false);
        let lines = buf.lock().unwrap().clone();
        let span = gale_json::from_str(&lines[0]).unwrap();
        let event = gale_json::from_str(&lines[1]).unwrap();
        let bare = gale_json::from_str(&lines[2]).unwrap();
        assert_eq!(span["req"].as_u64(), Some(42));
        assert_eq!(event["req"].as_u64(), Some(42));
        assert!(bare["req"].as_u64().is_none(), "no scope, no req field");
    }

    #[test]
    fn disabled_spans_still_measure_but_emit_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let buf = crate::trace::capture_to_memory();
        let sp = crate::span!("test.silent", n = 9usize);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let d = sp.finish();
        assert!(d >= std::time::Duration::from_millis(1));
        assert!(buf.lock().unwrap().is_empty());
    }
}
