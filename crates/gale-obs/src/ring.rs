//! The request-scoped tracing ring: fixed-capacity, non-blocking in-memory
//! sinks for per-request "wide events", plus the sampling policy that
//! decides which requests are kept.
//!
//! The JSONL trace sink ([`crate::trace`]) serializes through one mutex and
//! writes to a file, which is fine for a training run emitting a few
//! records per iteration and unusable for a server answering tens of
//! thousands of requests per second. This module is the serving-grade
//! alternative: one [`WideEvent`] — a flat, `Copy`, allocation-free struct
//! — per request, pushed into a fixed-capacity ring that never does IO and
//! never blocks the writer.
//!
//! Two rings, two retention policies:
//!
//! * the **recent ring** holds head-sampled requests (1-in-N under a
//!   seeded, deterministic [`TracePolicy`]); `GET /debug/trace` drains it.
//! * the **slow ring** is tail capture: every request slower than the
//!   policy threshold or finishing with an error status is kept regardless
//!   of sampling; `GET /debug/slow` snapshots it without draining.
//!
//! ## Writer guarantees
//!
//! [`Ring::push`] claims a slot with one atomic `fetch_add` and then takes
//! the slot's lock with `try_lock` — it *never waits*. The only contender
//! is a reader mid-drain (writers can collide on a slot only after lapping
//! the whole ring within one another's critical section, which the
//! per-slot critical section — a single struct store — makes unobservable
//! in practice); on contention the record is dropped and counted, never
//! torn and never blocking the serving hot path. Records are therefore
//! always internally consistent: a drain sees each slot's struct fully
//! written or not at all (asserted by the `ring_concurrency` proptests at
//! 1/2/8 writer threads).

use gale_json::{json, Map, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Capacity of the head-sampled recent ring.
pub const RECENT_CAPACITY: usize = 512;

/// Capacity of the tail-capture slow ring.
pub const SLOW_CAPACITY: usize = 128;

/// One request's worth of serving telemetry: identity, placement, and the
/// seven per-stage timings of the scoring path. Flat and `Copy` so pushing
/// one into a ring is a handful of word stores — no allocation, no IO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WideEvent {
    /// Process-unique request id (also stamped into the `/score` reply).
    pub request_id: u64,
    /// Scorer shard that ran the forward pass (0 when the request never
    /// reached a shard, e.g. a parse failure or a shed).
    pub shard: u32,
    /// Model generation that scored the request (0 when unscored).
    pub model_version: u64,
    /// Mantissa-carrying width of the shard's arithmetic: 64 for the
    /// default double-precision replicas, 32 for lowered `f32` inference
    /// replicas (0 when the request never reached a shard).
    pub precision_bits: u32,
    /// Rows in this request.
    pub rows: u32,
    /// Total rows in the coalesced batch this request rode in.
    pub batch_rows: u32,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Reading the request off the socket (first byte to fully buffered).
    pub read_us: u32,
    /// HTTP head + feature-JSON parsing.
    pub parse_us: u32,
    /// Shard selection and queue hand-off.
    pub dispatch_us: u32,
    /// Sitting in the shard queue before being popped.
    pub queue_us: u32,
    /// Batch assembly: popped until the batched forward started (linger
    /// plus buffer fill).
    pub assembly_us: u32,
    /// The batched forward pass.
    pub forward_us: u32,
    /// Response rendered until fully flushed to the socket.
    pub write_us: u32,
    /// Whole-request wall clock, first byte read to last byte written.
    pub total_us: u64,
}

impl WideEvent {
    /// The record as a JSON object (the `/debug/trace` wire format).
    pub fn to_json(&self) -> Value {
        json!({
            "request_id": self.request_id,
            "shard": self.shard as u64,
            "model_version": self.model_version,
            "precision_bits": self.precision_bits as u64,
            "rows": self.rows as u64,
            "batch_rows": self.batch_rows as u64,
            "status": self.status as u64,
            "read_us": self.read_us as u64,
            "parse_us": self.parse_us as u64,
            "dispatch_us": self.dispatch_us as u64,
            "queue_us": self.queue_us as u64,
            "assembly_us": self.assembly_us as u64,
            "forward_us": self.forward_us as u64,
            "write_us": self.write_us as u64,
            "total_us": self.total_us,
        })
    }
}

/// A fixed-capacity, non-blocking ring of [`WideEvent`]s.
///
/// Writers never wait: slot claim is one `fetch_add`, the slot store is a
/// `try_lock` that drops (and counts) the record on contention instead of
/// blocking. Readers lock slots one at a time, so a drain never stalls the
/// whole ring.
pub struct Ring {
    slots: Vec<Mutex<Option<WideEvent>>>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl Ring {
    /// An empty ring with `capacity` slots (at least 1).
    pub fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records ever pushed (including ones since overwritten or dropped).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records dropped because their slot was held by a reader mid-drain.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Pushes a record, overwriting the oldest once the ring is full.
    /// Never blocks: a slot currently held by a reader drops the record
    /// and bumps the drop counter instead.
    #[inline]
    pub fn push(&self, ev: WideEvent) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        match self.slots[i].try_lock() {
            Ok(mut slot) => *slot = Some(ev),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes every record out of the ring, oldest first (by request id).
    pub fn drain(&self) -> Vec<WideEvent> {
        let mut out = self.collect(|slot| slot.take());
        out.sort_by_key(|ev| ev.request_id);
        out
    }

    /// Copies every record without removing it, oldest first.
    pub fn snapshot(&self) -> Vec<WideEvent> {
        let mut out = self.collect(|slot| *slot);
        out.sort_by_key(|ev| ev.request_id);
        out
    }

    fn collect(
        &self,
        mut read: impl FnMut(&mut Option<WideEvent>) -> Option<WideEvent>,
    ) -> Vec<WideEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(ev) = read(&mut guard) {
                out.push(ev);
            }
        }
        out
    }
}

/// The head-sampling + tail-capture policy. Deterministic: the same
/// `(sample_every, seed)` pair always keeps the same request ids, so
/// sampled traces reproduce across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePolicy {
    /// Keep one request in `sample_every` in the recent ring (0 disables
    /// head sampling entirely; 1 keeps everything).
    pub sample_every: u64,
    /// Mixed into the sampling decision so which 1-in-N is kept can be
    /// varied (and tests can pin it).
    pub seed: u64,
    /// Tail capture: requests at or above this total latency go to the
    /// slow ring regardless of sampling.
    pub slow_us: u64,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy {
            sample_every: 16,
            seed: 0,
            slow_us: 50_000,
        }
    }
}

impl TracePolicy {
    /// The head-sampling decision for a request id: exactly one id in
    /// every aligned window of `sample_every` is kept, which window being
    /// fixed by `seed`.
    #[inline]
    pub fn sampled(&self, request_id: u64) -> bool {
        match self.sample_every {
            0 => false,
            n => request_id.wrapping_add(self.seed).is_multiple_of(n),
        }
    }

    /// The tail-capture decision: slow or errored (HTTP status >= 400).
    #[inline]
    pub fn tail_captured(&self, ev: &WideEvent) -> bool {
        ev.total_us >= self.slow_us || ev.status >= 400
    }
}

/// Process-global tracer state: the two rings plus the policy, packed into
/// atomics so the hot path reads them without any lock.
struct Tracer {
    recent: Ring,
    slow: Ring,
    enabled: AtomicBool,
    sample_every: AtomicU64,
    seed: AtomicU64,
    slow_us: AtomicU64,
    next_id: AtomicU64,
    sampled: AtomicU64,
    slow_captured: AtomicU64,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| {
        let policy = TracePolicy::default();
        Tracer {
            recent: Ring::new(RECENT_CAPACITY),
            slow: Ring::new(SLOW_CAPACITY),
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(policy.sample_every),
            seed: AtomicU64::new(policy.seed),
            slow_us: AtomicU64::new(policy.slow_us),
            next_id: AtomicU64::new(1),
            sampled: AtomicU64::new(0),
            slow_captured: AtomicU64::new(0),
        }
    })
}

/// Switches request tracing on or off and installs the policy. Tracing is
/// independent of [`crate::enabled`] (`GALE_OBS`): the server decides at
/// boot whether the rings are live, exactly like the always-live serving
/// metrics.
pub fn configure(enabled: bool, policy: TracePolicy) {
    let t = tracer();
    t.sample_every.store(policy.sample_every, Ordering::Relaxed);
    t.seed.store(policy.seed, Ordering::Relaxed);
    t.slow_us.store(policy.slow_us, Ordering::Relaxed);
    t.enabled.store(enabled, Ordering::Relaxed);
}

/// Whether request tracing is currently on.
pub fn tracing_enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// The policy currently in force.
pub fn policy() -> TracePolicy {
    let t = tracer();
    TracePolicy {
        sample_every: t.sample_every.load(Ordering::Relaxed),
        seed: t.seed.load(Ordering::Relaxed),
        slow_us: t.slow_us.load(Ordering::Relaxed),
    }
}

/// Allocates the next process-unique request id (starts at 1).
#[inline]
pub fn next_request_id() -> u64 {
    tracer().next_id.fetch_add(1, Ordering::Relaxed)
}

/// Offers a finished request record to the rings: head sampling decides
/// the recent ring, the tail policy decides the slow ring, both may keep
/// it, neither blocks. A no-op when tracing is off.
pub fn offer(ev: WideEvent) {
    let t = tracer();
    if !t.enabled.load(Ordering::Relaxed) {
        return;
    }
    let p = policy();
    if p.sampled(ev.request_id) {
        t.recent.push(ev);
        t.sampled.fetch_add(1, Ordering::Relaxed);
    }
    if p.tail_captured(&ev) {
        t.slow.push(ev);
        t.slow_captured.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drains the head-sampled recent ring, oldest first.
pub fn drain_recent() -> Vec<WideEvent> {
    tracer().recent.drain()
}

/// Snapshots the slow ring (tail-captured requests) without draining it.
pub fn slow_snapshot() -> Vec<WideEvent> {
    tracer().slow.snapshot()
}

/// Clears both rings (tests and `/debug` tooling).
pub fn clear() {
    let t = tracer();
    t.recent.drain();
    t.slow.drain();
}

/// Tracer counters as a JSON object, served alongside `/debug/trace`.
pub fn stats_json() -> Value {
    let t = tracer();
    let mut obj = Map::new();
    obj.insert("enabled", Value::Bool(t.enabled.load(Ordering::Relaxed)));
    obj.insert(
        "sample_every",
        Value::from(t.sample_every.load(Ordering::Relaxed)),
    );
    obj.insert(
        "slow_threshold_us",
        Value::from(t.slow_us.load(Ordering::Relaxed)),
    );
    obj.insert("sampled", Value::from(t.sampled.load(Ordering::Relaxed)));
    obj.insert(
        "slow_captured",
        Value::from(t.slow_captured.load(Ordering::Relaxed)),
    );
    obj.insert(
        "ring_dropped",
        Value::from(t.recent.dropped() + t.slow.dropped()),
    );
    Value::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> WideEvent {
        WideEvent {
            request_id: id,
            total_us: 10,
            status: 200,
            ..Default::default()
        }
    }

    #[test]
    fn ring_wraps_keeping_the_newest_records() {
        let ring = Ring::new(4);
        for id in 1..=10 {
            ring.push(ev(id));
        }
        let drained = ring.drain();
        let ids: Vec<u64> = drained.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
        assert!(ring.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn snapshot_does_not_consume() {
        let ring = Ring::new(8);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.snapshot().len(), 2);
        assert_eq!(ring.snapshot().len(), 2);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn sampling_is_deterministic_and_one_in_n() {
        let p = TracePolicy {
            sample_every: 8,
            seed: 3,
            slow_us: u64::MAX,
        };
        let kept: Vec<u64> = (0..64).filter(|&id| p.sampled(id)).collect();
        assert_eq!(kept.len(), 8, "exactly 1-in-8 over aligned windows");
        for w in kept.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
        // Same policy, same decisions.
        let again: Vec<u64> = (0..64).filter(|&id| p.sampled(id)).collect();
        assert_eq!(kept, again);
        // A different seed keeps a different (still 1-in-8) set.
        let other = TracePolicy { seed: 4, ..p };
        let shifted: Vec<u64> = (0..64).filter(|&id| other.sampled(id)).collect();
        assert_eq!(shifted.len(), 8);
        assert_ne!(kept, shifted);
        // Degenerate settings.
        assert!(!TracePolicy {
            sample_every: 0,
            ..p
        }
        .sampled(0));
        assert!(TracePolicy {
            sample_every: 1,
            ..p
        }
        .sampled(12345));
    }

    #[test]
    fn tail_capture_keeps_slow_and_errored_requests() {
        let p = TracePolicy {
            sample_every: 1_000_000,
            seed: 0,
            slow_us: 1_000,
        };
        let fast_ok = WideEvent {
            request_id: 1,
            total_us: 10,
            status: 200,
            ..Default::default()
        };
        let slow_ok = WideEvent {
            total_us: 1_000,
            ..fast_ok
        };
        let fast_err = WideEvent {
            status: 503,
            ..fast_ok
        };
        assert!(!p.tail_captured(&fast_ok));
        assert!(p.tail_captured(&slow_ok), "threshold is inclusive");
        assert!(p.tail_captured(&fast_err));
    }

    #[test]
    fn wide_event_json_carries_all_stage_timings() {
        let ev = WideEvent {
            request_id: 9,
            shard: 2,
            model_version: 3,
            precision_bits: 32,
            rows: 4,
            batch_rows: 16,
            status: 200,
            read_us: 1,
            parse_us: 2,
            dispatch_us: 3,
            queue_us: 4,
            assembly_us: 5,
            forward_us: 6,
            write_us: 7,
            total_us: 28,
        };
        let v = ev.to_json();
        for (key, want) in [
            ("request_id", 9),
            ("shard", 2),
            ("model_version", 3),
            ("precision_bits", 32),
            ("rows", 4),
            ("batch_rows", 16),
            ("status", 200),
            ("read_us", 1),
            ("parse_us", 2),
            ("dispatch_us", 3),
            ("queue_us", 4),
            ("assembly_us", 5),
            ("forward_us", 6),
            ("write_us", 7),
            ("total_us", 28),
        ] {
            assert_eq!(v[key].as_u64(), Some(want), "field {key}");
        }
    }
}
