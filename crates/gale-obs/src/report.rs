//! Run reports: a per-iteration table plus run-level totals.
//!
//! A [`RunReport`] is the structured summary a GALE run (or any harness
//! phase) emits alongside its raw metrics: one row per iteration, a list
//! of named totals, JSON round-trippable so it survives inside
//! `results_*.json`, and renderable as an aligned text table for the
//! `report` subcommand of the experiments binary.

use gale_json::{Map, Value};

/// A titled table of per-iteration rows plus named run totals.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Report title (e.g. the run or method name).
    pub title: String,
    /// Column headers, one per cell in each row.
    pub columns: Vec<String>,
    /// Table body; each row has `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
    /// Named run-level totals, rendered below the table.
    pub totals: Vec<(String, Value)>,
}

impl RunReport {
    /// Creates an empty report with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        RunReport {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            totals: Vec::new(),
        }
    }

    /// Appends a row. Panics if the cell count does not match the headers.
    pub fn push_row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells but the report has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Appends a named run-level total.
    pub fn total(&mut self, name: impl Into<String>, v: impl Into<Value>) {
        self.totals.push((name.into(), v.into()));
    }

    /// Serializes to the JSON shape embedded in result documents:
    /// `{"title", "columns", "rows", "totals"}`.
    pub fn to_json(&self) -> Value {
        let mut totals = Map::new();
        for (k, v) in &self.totals {
            totals.insert(k.clone(), v.clone());
        }
        let mut obj = Map::new();
        obj.insert("title", Value::from(self.title.clone()));
        obj.insert(
            "columns",
            Value::Array(self.columns.iter().map(Value::from).collect()),
        );
        obj.insert(
            "rows",
            Value::Array(self.rows.iter().map(|r| Value::Array(r.clone())).collect()),
        );
        obj.insert("totals", Value::Object(totals));
        Value::Object(obj)
    }

    /// Rebuilds a report from [`RunReport::to_json`] output. Used by the
    /// `report` subcommand to render tables found inside result documents.
    pub fn from_json(v: &Value) -> Result<RunReport, String> {
        let obj = v.as_object().ok_or("run report must be a JSON object")?;
        let title = obj
            .get("title")
            .and_then(Value::as_str)
            .ok_or("run report missing string 'title'")?
            .to_string();
        let columns: Vec<String> = obj
            .get("columns")
            .and_then(Value::as_array)
            .ok_or("run report missing array 'columns'")?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string column header".to_string())
            })
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        for row in obj
            .get("rows")
            .and_then(Value::as_array)
            .ok_or("run report missing array 'rows'")?
        {
            let cells = row
                .as_array()
                .ok_or("run report row must be an array")?
                .clone();
            if cells.len() != columns.len() {
                return Err(format!(
                    "run report row has {} cells, expected {}",
                    cells.len(),
                    columns.len()
                ));
            }
            rows.push(cells);
        }
        let mut totals = Vec::new();
        if let Some(t) = obj.get("totals") {
            let t = t
                .as_object()
                .ok_or("run report 'totals' must be an object")?;
            for (k, v) in t.iter() {
                totals.push((k.clone(), v.clone()));
            }
        }
        Ok(RunReport {
            title,
            columns,
            rows,
            totals,
        })
    }

    /// Renders the report as an aligned text table: title, header row,
    /// separator, body rows, then `name: value` totals.
    pub fn render(&self) -> String {
        let cell = |v: &Value| -> String {
            match v {
                Value::Float(f) => format!("{f:.4}"),
                Value::Str(s) => s.clone(),
                other => other.to_string_compact(),
            }
        };
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let body: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(cell).collect())
            .collect();
        for row in &body {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align so numeric columns line up.
                s.push_str(&" ".repeat(widths[i].saturating_sub(c.len())));
                s.push_str(c);
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.columns));
        out.push_str(&line(
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        ));
        for row in &body {
            out.push_str(&line(row));
        }
        for (k, v) in &self.totals {
            out.push_str(&format!("{k}: {}\n", cell(v)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("gale run", &["iter", "queries", "d_loss"]);
        r.push_row(vec![
            Value::from(0usize),
            Value::from(5usize),
            Value::from(0.75),
        ]);
        r.push_row(vec![
            Value::from(1usize),
            Value::from(5usize),
            Value::from(0.5),
        ]);
        r.total("oracle_queries", 10usize);
        r.total("memo_hit_rate", 0.25);
        r
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample();
        let j = r.to_json();
        let text = j.to_string_compact();
        let back = RunReport::from_json(&gale_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(RunReport::from_json(&Value::Int(3)).is_err());
        let missing = gale_json::json!({ "title": "x" });
        assert!(RunReport::from_json(&missing).is_err());
        let ragged = gale_json::json!({
            "title": "x",
            "columns": ["a", "b"],
            "rows": [[1]],
            "totals": {},
        });
        assert!(RunReport::from_json(&ragged).unwrap_err().contains("cells"));
    }

    #[test]
    fn render_aligns_columns_and_lists_totals() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "gale run");
        assert!(lines[1].contains("iter") && lines[1].contains("d_loss"));
        assert!(lines[2].chars().all(|c| c == '-' || c == ' '));
        assert!(lines[3].contains("0.7500"));
        assert!(text.contains("oracle_queries: 10"));
        assert!(text.contains("memo_hit_rate: 0.2500"));
        // Every body line has equal width (alignment held).
        let w = lines[1].len();
        assert!(lines[2..5].iter().all(|l| l.len() == w), "{text}");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn push_row_rejects_wrong_arity() {
        let mut r = RunReport::new("x", &["a", "b"]);
        r.push_row(vec![Value::from(1)]);
    }
}
