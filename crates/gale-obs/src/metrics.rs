//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are keyed by name and live for the whole process (entries are
//! leaked on first registration so handles are `&'static` and updates are
//! plain atomic operations with no lock). The registry itself is sharded
//! across [`SHARDS`] mutexes hashed by name, so concurrent first-time
//! registrations from the worker pool do not serialize on one lock; after
//! registration (macros cache the handle in a per-call-site `OnceLock`)
//! no lock is touched at all.

use gale_json::{Map, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of registry shards; a small power of two is plenty because the
/// registry is only locked on first registration and on snapshots.
const SHARDS: usize = 16;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Adds `delta` (may be negative) atomically via compare-exchange, so
    /// concurrent adders never lose an update the way racing `set(get() +
    /// d)` pairs would. The accumulation order under concurrency is
    /// unspecified, which is fine for reporting-only values.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A histogram over fixed, ascending bucket upper bounds.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound` (so arbitrarily small and `-inf` values land in bucket 0
/// — there is no separate underflow bucket), in the overflow bucket when
/// `v` exceeds every bound (including `+inf`), or in the NaN tally when
/// `v` is NaN. NaN values are excluded from `count` and `sum`.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    nan: AtomicU64,
    count: AtomicU64,
    /// Running sum of recorded (non-NaN) values, as `f64` bits updated by
    /// compare-exchange. The accumulation order under concurrency is
    /// unspecified, which is fine: the sum is reporting-only and never
    /// feeds back into any computation.
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram: empty bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram: bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram: bounds must be finite"
        );
        Histogram {
            bounds,
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            nan: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            self.nan.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        match self.buckets.get(idx) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// An owned snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            nan: self.nan.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
        }
    }
}

/// Owned copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (aligned with `bounds`).
    pub buckets: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// NaN observations (excluded from `count`/`sum`).
    pub nan: u64,
    /// Total non-NaN observations.
    pub count: u64,
    /// Sum of non-NaN observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated quantile `q` in `[0, 1]` from the bucket counts, with
    /// linear interpolation inside the bucket holding the target rank
    /// (the standard Prometheus `histogram_quantile` estimator). Returns
    /// 0 when empty. Observations in the overflow bucket clamp to the
    /// last finite bound — an overflow-heavy histogram under-reports high
    /// quantiles, which is exactly why serving buckets extend well past
    /// expected latencies.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let prev = cumulative;
            cumulative += n;
            if (cumulative as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let inside = rank - prev as f64;
                return lo + (hi - lo) * (inside / n.max(1) as f64);
            }
        }
        // Target rank sits in the overflow bucket: clamp to the last bound.
        *self.bounds.last().expect("histograms have bounds")
    }
}

/// Owned copy of any registered metric's state.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Registry {
    shards: Vec<Mutex<HashMap<&'static str, Slot>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
    })
}

/// FNV-1a; tiny, deterministic, and good enough to spread names over shards.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) % SHARDS
}

fn with_slot<T>(name: &str, make: impl FnOnce() -> Slot, read: impl Fn(&Slot) -> Option<T>) -> T {
    let shard = &registry().shards[shard_of(name)];
    let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = map.get(name) {
        return read(slot)
            .unwrap_or_else(|| panic!("metric '{name}' already registered as a {}", slot.kind()));
    }
    let slot = make();
    let out = read(&slot).expect("freshly made slot must match its own kind");
    let key: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(key, slot);
    out
}

/// Returns (registering on first use) the counter with this name.
/// Panics if the name is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    with_slot(
        name,
        || Slot::Counter(Box::leak(Box::new(Counter::new()))),
        |s| match s {
            Slot::Counter(c) => Some(*c),
            _ => None,
        },
    )
}

/// Returns (registering on first use) the gauge with this name.
/// Panics if the name is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    with_slot(
        name,
        || Slot::Gauge(Box::leak(Box::new(Gauge::new()))),
        |s| match s {
            Slot::Gauge(g) => Some(*g),
            _ => None,
        },
    )
}

/// Returns (registering on first use) the histogram with this name. The
/// first registration fixes the bucket bounds; later callers get the
/// existing histogram regardless of the bounds they pass. Panics if the
/// name is already registered as a different metric kind.
pub fn histogram(name: &str, bounds: &'static [f64]) -> &'static Histogram {
    with_slot(
        name,
        || Slot::Histogram(Box::leak(Box::new(Histogram::new(bounds)))),
        |s| match s {
            Slot::Histogram(h) => Some(*h),
            _ => None,
        },
    )
}

/// Snapshot of every registered metric, sorted by name (stable output for
/// reports and tests).
pub fn snapshot() -> Vec<(String, MetricSnapshot)> {
    let mut out = Vec::new();
    for shard in &registry().shards {
        let map = shard.lock().unwrap_or_else(|e| e.into_inner());
        for (name, slot) in map.iter() {
            let snap = match slot {
                Slot::Counter(c) => MetricSnapshot::Counter(c.get()),
                Slot::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Slot::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
            };
            out.push((name.to_string(), snap));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The full registry as a JSON object (name -> value/state), for embedding
/// into `results_*.json` documents.
pub fn snapshot_json() -> Value {
    let mut root = Map::new();
    for (name, snap) in snapshot() {
        let v = match snap {
            MetricSnapshot::Counter(c) => Value::from(c),
            MetricSnapshot::Gauge(g) => Value::from(g),
            MetricSnapshot::Histogram(h) => gale_json::json!({
                "count": h.count,
                "sum": h.sum,
                "mean": h.mean(),
                "bounds": h.bounds.clone(),
                "buckets": h.buckets.clone(),
                "overflow": h.overflow,
                "nan": h.nan,
            }),
        };
        root.insert(name, v);
    }
    Value::Object(root)
}

/// Formats a sample value for the text exposition (Prometheus spells the
/// non-finite values `+Inf`/`-Inf`/`NaN`).
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`): every other character becomes `_`.
fn render_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders every registered metric in the Prometheus text exposition
/// format: a `# TYPE` line per metric, cumulative `_bucket{le=...}` series
/// plus `_sum`/`_count` for histograms. This is the payload served by
/// `gale-serve`'s `GET /metrics`.
pub fn render_text() -> String {
    let mut out = String::new();
    for (name, snap) in snapshot() {
        let name = render_name(&name);
        match snap {
            MetricSnapshot::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
            }
            MetricSnapshot::Gauge(g) => {
                out.push_str(&format!(
                    "# TYPE {name} gauge\n{name} {}\n",
                    render_value(g)
                ));
            }
            MetricSnapshot::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += count;
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        render_value(*bound)
                    ));
                }
                cumulative += h.overflow;
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                out.push_str(&format!("{name}_sum {}\n", render_value(h.sum)));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// Canonical fixed bucket sets.
pub mod buckets {
    /// Wall-clock durations in microseconds, ~1 µs to 10 s.
    pub const TIME_US: &[f64] = &[
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5,
        2e5, 5e5, 1e6, 2e6, 5e6, 1e7,
    ];

    /// Fractions in `[0, 1]` (utilization, hit rates, changed fractions).
    pub const UNIT: &[f64] = &[
        0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0,
    ];

    /// Log-spaced magnitudes for losses and gradient norms.
    pub const NORM: &[f64] = &[
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 1e3, 1e4,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = counter("test.metrics.counter");
        c.add(2);
        c.add(3);
        assert_eq!(c.get(), 5);
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));
        let g = gauge("test.metrics.gauge");
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _ = counter("test.metrics.kind_clash");
        let _ = gauge("test.metrics.kind_clash");
    }

    #[test]
    fn histogram_buckets_values_by_upper_bound() {
        let h = histogram("test.metrics.hist", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0] {
            h.record(v); // both <= 1.0 -> bucket 0
        }
        h.record(1.0001); // bucket 1
        h.record(100.0); // bucket 2 (inclusive upper bound)
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.count, 4);
        assert!((s.sum - 102.5001).abs() < 1e-9);
    }

    #[test]
    fn histogram_underflow_overflow_and_nan() {
        let h = histogram("test.metrics.hist_edges", &[0.0, 1.0]);
        // "Underflow": arbitrarily small values belong to the first bucket.
        h.record(-1e300);
        h.record(f64::NEG_INFINITY);
        h.record(f64::MIN);
        // Overflow: above the last bound, including +inf.
        h.record(1.0000001);
        h.record(f64::INFINITY);
        h.record(f64::MAX);
        // NaN: tallied separately, excluded from count and sum.
        h.record(f64::NAN);
        h.record(-f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.buckets[1], 0);
        assert_eq!(s.overflow, 3);
        assert_eq!(s.nan, 2);
        assert_eq!(s.count, 6);
        // Sum saw ±inf cancelling into NaN; it must not have poisoned the
        // NaN/bucket tallies above, and mean stays well-defined per count.
        assert_eq!(s.count, s.buckets.iter().sum::<u64>() + s.overflow);
    }

    #[test]
    fn histogram_exact_boundary_values() {
        let h = histogram("test.metrics.hist_bounds", &[10.0, 20.0]);
        h.record(10.0); // inclusive: first bucket
        h.record(10.0 + f64::EPSILON * 16.0); // just above: second bucket
        h.record(20.0); // inclusive: second bucket
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2]);
        assert_eq!(s.overflow, 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn render_text_exposes_all_metric_kinds() {
        counter("test.render.requests").add(3);
        gauge("test.render.depth").set(2.5);
        let h = histogram("test.render.latency", &[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        let text = render_text();
        assert!(text.contains("# TYPE test_render_requests counter\ntest_render_requests 3\n"));
        assert!(text.contains("# TYPE test_render_depth gauge\ntest_render_depth 2.5\n"));
        // Histogram buckets are cumulative and end with the +Inf series.
        assert!(text.contains("test_render_latency_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("test_render_latency_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("test_render_latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("test_render_latency_sum 55.5\n"));
        assert!(text.contains("test_render_latency_count 3\n"));
    }

    #[test]
    fn snapshot_is_sorted_and_json_encodes() {
        counter("test.metrics.zz").add(7);
        gauge("test.metrics.aa").set(0.5);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let json = snapshot_json();
        assert_eq!(json["test.metrics.zz"].as_u64(), Some(7));
        assert_eq!(json["test.metrics.aa"].as_f64(), Some(0.5));
    }
}
