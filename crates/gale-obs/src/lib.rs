//! # gale-obs
//!
//! Structured tracing, metrics, and run telemetry for the GALE training
//! pipeline. Zero external dependencies (JSONL encoding rides on the
//! in-tree `gale-json`).
//!
//! Three layers:
//!
//! * **Metrics** ([`metrics`]): a global, lock-sharded registry of
//!   [`metrics::Counter`]s, [`metrics::Gauge`]s, and fixed-bucket
//!   [`metrics::Histogram`]s. The [`counter_add!`], [`gauge_set!`], and
//!   [`hist_record!`] macros compile down to a single relaxed atomic load
//!   when telemetry is disabled.
//! * **Spans & events** ([`span`]): [`span!`] produces nested, wall-clock
//!   timed spans with key-value fields; [`event!`] emits point-in-time
//!   records. Both serialize to a JSONL trace via the [`trace`] sink, and
//!   both stamp the current request id ([`span::request_scope`]) so a
//!   trace filters down to one request's phase tree.
//! * **Request rings** ([`ring`]): fixed-capacity, non-blocking in-memory
//!   sinks for per-request [`ring::WideEvent`]s — head-sampled recents
//!   plus tail-captured slow/errored requests — built for serving paths
//!   where per-record file IO is unaffordable. Independent of `GALE_OBS`;
//!   the server switches them with [`ring::configure`].
//! * **Run reports** ([`report::RunReport`]): a per-iteration table plus
//!   totals, JSON round-trippable and renderable as an aligned text table.
//!
//! ## Configuration
//!
//! * `GALE_OBS=1` enables telemetry (anything else disables it). The state
//!   is read once, lazily; tests override it with [`set_enabled`].
//! * `GALE_OBS_PATH` sets the JSONL trace path. Unset, the path is
//!   `gale_trace.<pid>.jsonl` (truncated per process) so concurrent
//!   processes in one directory never clobber each other's traces.
//!
//! ## Overhead contract
//!
//! With telemetry disabled every macro is a single relaxed atomic load;
//! spans still read the monotonic clock (their durations feed
//! [`crate::report::RunReport`]s and `GaleOutcome` timings, which exist
//! with telemetry off too) but allocate nothing and write nothing.
//! Telemetry never touches any RNG or numeric state: enabling it is
//! guaranteed not to perturb model output (asserted by the
//! `par_determinism` and `obs_smoke` test suites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

pub mod metrics;
pub mod procinfo;
pub mod report;
pub mod ring;
pub mod span;
pub mod trace;

pub use gale_json::Value;
pub use procinfo::{peak_rss_bytes, record_peak_rss};
pub use report::RunReport;
pub use ring::{TracePolicy, WideEvent};
pub use span::{Span, SpanTimer};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether telemetry is enabled. The first call reads `GALE_OBS` from the
/// environment; the result is cached so subsequent calls are a single
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var("GALE_OBS").is_ok_and(|v| v.trim() == "1");
    set_enabled(on);
    on
}

/// Forces telemetry on or off, overriding `GALE_OBS`. Intended for tests
/// and embedding applications; affects every thread.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Adds to a named counter. Near-zero cost when telemetry is disabled.
///
/// ```
/// gale_obs::counter_add!("doc.widgets", 3);
/// ```
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static __SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
                ::std::sync::OnceLock::new();
            __SLOT
                .get_or_init(|| $crate::metrics::counter($name))
                .add($v as u64);
        }
    };
}

/// Sets a named gauge. Near-zero cost when telemetry is disabled.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static __SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
                ::std::sync::OnceLock::new();
            __SLOT
                .get_or_init(|| $crate::metrics::gauge($name))
                .set($v as f64);
        }
    };
}

/// Records a value into a named fixed-bucket histogram. `$bounds` must be
/// a `&'static [f64]` of ascending bucket upper bounds (see
/// [`metrics::buckets`]). Near-zero cost when telemetry is disabled.
#[macro_export]
macro_rules! hist_record {
    ($name:expr, $bounds:expr, $v:expr) => {
        if $crate::enabled() {
            static __SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
                ::std::sync::OnceLock::new();
            __SLOT
                .get_or_init(|| $crate::metrics::histogram($name, $bounds))
                .record($v as f64);
        }
    };
}

/// Opens a wall-clock span. Fields are `name = expr` pairs (any
/// `Into<Value>`). The span emits a JSONL trace record when finished (or
/// dropped) while telemetry is enabled; its [`Span::finish`] always
/// returns the measured [`std::time::Duration`], so phase timings work
/// with telemetry off too.
///
/// ```
/// let sp = gale_obs::span!("doc.phase", iter = 3usize);
/// let elapsed = sp.finish();
/// assert!(elapsed.as_secs() < 60);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::open($name)
    };
    ($name:expr $(, $k:ident = $v:expr)+ $(,)?) => {
        $crate::span::open($name)$(.field(stringify!($k), $v))+
    };
}

/// Emits a point-in-time trace event with `name = expr` fields. A no-op
/// (fields not even evaluated) when telemetry is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::span::emit_event(
                $name,
                ::std::vec![$((stringify!($k), $crate::Value::from($v))),*],
            );
        }
    };
}

/// Prints an informational line to stdout and mirrors it into the trace
/// (as a `log` event) when telemetry is enabled. The single console sink
/// for the harness binaries.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::trace::log("info", ::std::format!($($arg)*))
    };
}

/// Prints a warning line to stderr and mirrors it into the trace when
/// telemetry is enabled.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::trace::log("warn", ::std::format!($($arg)*))
    };
}

/// Serializes tests that touch the global enabled flag or trace sink.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn toggling_enabled_is_visible() {
        let _g = super::test_guard();
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
    }

    #[test]
    fn disabled_macros_are_noops() {
        let _g = super::test_guard();
        super::set_enabled(false);
        // None of these may touch the registry (a later lookup of the same
        // names as *different* kinds would panic if they registered).
        crate::counter_add!("lib.noop", 1);
        crate::gauge_set!("lib.noop", 1.0);
        crate::hist_record!("lib.noop", crate::metrics::buckets::UNIT, 0.5);
        crate::event!("lib.noop", x = 1);
        assert!(crate::metrics::snapshot()
            .iter()
            .all(|(name, _)| name != "lib.noop"));
    }
}
