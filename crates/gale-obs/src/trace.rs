//! The JSONL trace sink.
//!
//! One line per record, written through a process-global sink. The sink is
//! opened lazily on the first write: a buffered file at `GALE_OBS_PATH`
//! (truncated per process). When `GALE_OBS_PATH` is unset the default path
//! carries the process id (`gale_trace.<pid>.jsonl`) so two processes
//! tracing in the same directory — a train run and a server, say — never
//! clobber each other's traces; set `GALE_OBS_PATH` explicitly to pick a
//! fixed file name. Tests install an in-memory sink with
//! [`capture_to_memory`]; a failed file open degrades to a null sink so
//! telemetry can never take a run down.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex, OnceLock};

/// Default trace file name prefix when `GALE_OBS_PATH` is unset; the
/// process id is appended ([`default_path`]) so concurrent processes in
/// one directory do not truncate each other's traces.
pub const DEFAULT_PREFIX: &str = "gale_trace";

enum Sink {
    File(BufWriter<File>),
    Memory(Arc<Mutex<Vec<String>>>),
    Null,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// The trace path telemetry will write to: `GALE_OBS_PATH`, or
/// [`DEFAULT_PREFIX`] suffixed with the process id
/// (`gale_trace.<pid>.jsonl`) so concurrent processes never truncate each
/// other's default-path traces.
pub fn default_path() -> String {
    std::env::var("GALE_OBS_PATH")
        .unwrap_or_else(|_| format!("{DEFAULT_PREFIX}.{}.jsonl", std::process::id()))
}

fn open_default() -> Sink {
    match File::create(default_path()) {
        Ok(f) => Sink::File(BufWriter::new(f)),
        Err(_) => Sink::Null,
    }
}

/// Appends one line to the trace. Callers gate on [`crate::enabled`]; the
/// line must already be a complete JSON document.
pub fn write_line(line: &str) {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    let s = guard.get_or_insert_with(open_default);
    match s {
        Sink::File(w) => {
            if writeln!(w, "{line}").is_err() {
                *s = Sink::Null;
            }
        }
        Sink::Memory(buf) => buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string()),
        Sink::Null => {}
    }
}

/// Flushes buffered trace output to disk. Call at the end of a run (the
/// pipeline and the experiment harness both do).
pub fn flush() {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(Sink::File(w)) = guard.as_mut() {
        let _ = w.flush();
    }
}

/// Replaces the sink with an in-memory buffer and returns a handle to it.
/// Intended for tests: captured lines are full JSONL records.
pub fn capture_to_memory() -> Arc<Mutex<Vec<String>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(Sink::Memory(Arc::clone(&buf)));
    buf
}

/// Redirects the trace to a specific file (truncating it), overriding
/// `GALE_OBS_PATH`.
pub fn write_to_path(path: &str) -> std::io::Result<()> {
    let f = File::create(path)?;
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(Sink::File(BufWriter::new(f)));
    Ok(())
}

/// Console + trace logging backend for [`crate::info!`] / [`crate::warn!`]:
/// prints to stdout (info) or stderr (warn), and mirrors the message into
/// the trace as a `log` event when telemetry is enabled.
pub fn log(level: &str, msg: String) {
    if level == "warn" {
        eprintln!("{msg}");
    } else {
        println!("{msg}");
    }
    if crate::enabled() {
        crate::span::emit_event(
            "log",
            vec![
                ("level", gale_json::Value::from(level)),
                ("msg", gale_json::Value::from(msg)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn memory_sink_captures_lines() {
        let _g = crate::test_guard();
        let buf = super::capture_to_memory();
        super::write_line("{\"t\":\"test\"}");
        super::flush();
        let lines = buf.lock().unwrap();
        assert_eq!(lines.as_slice(), ["{\"t\":\"test\"}"]);
    }
}
