//! In-tree, std-only subset of the `criterion` benchmarking API.
//!
//! The build environment is hermetic (no crates.io), so this crate keeps the
//! workspace's `[[bench]]` targets compiling and running: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is
//! wall-clock over a calibrated iteration count, reported as
//! min/mean/max per iteration — enough to compare parallel vs sequential
//! kernels, without criterion's statistical machinery.
//!
//! Setting `GALE_BENCH_SMOKE=1` collapses every benchmark to a single
//! iteration of a single sample so the whole suite finishes in seconds
//! (used by CI as a smoke test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark measurement (per-iteration seconds).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/param`).
    pub name: String,
    /// Mean seconds per iteration across samples.
    pub mean_s: f64,
    /// Fastest sample.
    pub min_s: f64,
    /// Slowest sample.
    pub max_s: f64,
    /// Samples recorded.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

fn results_registry() -> &'static Mutex<Vec<BenchResult>> {
    static REGISTRY: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains every measurement recorded so far, in execution order. Lets a
/// bench binary with a custom `main` post-process its own numbers (e.g.
/// dump a machine-readable report or gate on throughput regressions).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(
        &mut *results_registry()
            .lock()
            .expect("results registry poisoned"),
    )
}

/// `true` when `GALE_BENCH_SMOKE=1`: run everything once, skip calibration.
pub fn smoke_mode() -> bool {
    std::env::var("GALE_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_sample_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, self.target_sample_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
            _criterion: self,
        }
    }

    /// Called by [`criterion_main!`] after all groups; kept for API parity.
    pub fn final_summary(&mut self) {}
}

/// Flushes buffered telemetry to disk. [`criterion_main!`] calls this after
/// the last group so bench traces survive process exit (the global sink is
/// a static and is never dropped).
pub fn flush_telemetry() {
    gale_obs::trace::flush();
}

/// A named benchmark group; IDs are reported as `group/function/param`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    target_sample_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per sample (used for calibration).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target_sample_time = d;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, self.target_sample_time, f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id shown as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into the printable benchmark id.
pub trait IntoBenchmarkId {
    /// The id text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    target_sample_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let (samples, iters) = if smoke_mode() {
        (1usize, 1u64)
    } else {
        // Calibrate: one untimed warm-up pass sizes the per-sample count.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (target_sample_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000);
        (sample_size, iters as u64)
    };

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    // Route through the shared console sink so bench output also lands in
    // the telemetry trace when GALE_OBS=1.
    gale_obs::info!(
        "{name:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples,
        iters,
    );
    gale_obs::event!(
        "bench.sample",
        bench = name,
        mean_s = mean,
        min_s = min,
        max_s = max
    );
    results_registry()
        .lock()
        .expect("results registry poisoned")
        .push(BenchResult {
            name: name.to_string(),
            mean_s: mean,
            min_s: min,
            max_s: max,
            samples,
            iters,
        });
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group; bench CLI arguments are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); none apply.
            let _ = ::std::env::args();
            $($group();)+
            $crate::flush_telemetry();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("GALE_BENCH_SMOKE", "1");
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function(BenchmarkId::new("f", 4), |b| {
                b.iter(|| {
                    ran += 1;
                    ran
                })
            });
            group.finish();
        }
        // Smoke mode: exactly one sample of one iteration.
        assert_eq!(ran, 1);
    }

    #[test]
    fn results_are_captured() {
        std::env::set_var("GALE_BENCH_SMOKE", "1");
        let mut c = Criterion::default();
        c.bench_function("capture_me_unique", |b| b.iter(|| 1 + 1));
        let results = take_results();
        let mine: Vec<_> = results
            .iter()
            .filter(|r| r.name == "capture_me_unique")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].samples, 1);
        assert_eq!(mine[0].iters, 1);
        assert!(mine[0].mean_s >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).into_benchmark_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(3).into_benchmark_id(), "3");
    }
}
