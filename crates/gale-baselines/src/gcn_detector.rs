//! GCN baseline (the paper's baseline (5a), after Kipf & Welling [30]):
//! a two-layer graph convolutional network trained semi-supervised on the
//! labeled examples, with inverse-frequency class weights.

use crate::common::DetectionResult;
use gale_core::{Example, Label};
use gale_graph::FeatureRepr;
use gale_nn::{Activation, Adam, Gcn, Layer};
use gale_tensor::{Matrix, Rng};
use std::sync::Arc;

/// GCN training configuration.
#[derive(Debug, Clone)]
pub struct GcnConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            hidden: 48,
            epochs: 300,
            lr: 0.005,
        }
    }
}

/// Trains the GCN on `labeled` examples over the feature representation and
/// predicts every node.
pub fn gcn_detector(
    repr: &FeatureRepr,
    labeled: &[Example],
    val_examples: &[Example],
    cfg: &GcnConfig,
    rng: &mut Rng,
) -> DetectionResult {
    let n = repr.node_count();
    // Column standardization: the raw feature blocks mix scales (z-scores,
    // embeddings, detector confidences), which stalls GCN training.
    let mut x = repr.x.clone();
    let (mean, std) = x.column_stats();
    x.standardize_columns(&mean, &std);
    let s = Arc::new(repr.s_norm.clone());
    let mut net = Gcn::new(s, repr.dim(), cfg.hidden, 2, Activation::Identity, rng);
    let mut opt = Adam::new(cfg.lr);
    // Inverse-frequency class weights to counter the error/correct skew
    // (without them the GCN collapses to all-correct — the instability the
    // paper observes under imbalance, Fig. 7(a)).
    let n_err = labeled.iter().filter(|e| e.label == Label::Error).count();
    let n_cor = labeled.len().saturating_sub(n_err);
    let w_err = if n_err > 0 {
        (n_cor.max(1) as f64 / n_err as f64).min(20.0)
    } else {
        1.0
    };
    for _ in 0..cfg.epochs {
        let logits = net.forward(&x, true);
        let probs = logits.softmax_rows();
        let mut grad = Matrix::zeros(n, 2);
        let inv = 1.0 / labeled.len().max(1) as f64;
        for e in labeled {
            let (cls, w) = match e.label {
                Label::Error => (0usize, w_err),
                Label::Correct => (1usize, 1.0),
            };
            for c in 0..2 {
                grad[(e.node, c)] += w * (probs[(e.node, c)] - f64::from(u8::from(c == cls))) * inv;
            }
        }
        net.zero_grad();
        let _ = net.backward(&grad);
        opt.step(&mut net);
    }
    let logits = net.forward(&x, false);
    let probs = logits.softmax_rows();
    let scores: Vec<f64> = (0..n).map(|v| probs[(v, 0)]).collect();
    let predictions = gale_core::calibrated_predictions(&scores, val_examples);
    DetectionResult {
        predictions,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_core::Prf;
    use gale_data::{prepare, DataSplit, DatasetId, FeaturizeConfig};
    use gale_detect::ErrorGenConfig;
    use std::collections::HashSet;

    #[test]
    fn gcn_learns_from_labels() {
        let d = prepare(
            DatasetId::MachineLearning,
            0.1,
            &ErrorGenConfig {
                node_error_rate: 0.12,
                ..Default::default()
            },
            14,
        );
        let mut rng = Rng::seed_from_u64(15);
        let split = DataSplit::paper_default(d.graph.node_count(), &mut rng);
        let feat_cfg = FeaturizeConfig {
            gae: gale_nn::GaeConfig {
                epochs: 10,
                ..FeaturizeConfig::default().gae
            },
            ..Default::default()
        };
        let repr = gale_data::featurize(&d.graph, &d.constraints, &feat_cfg, &mut rng);
        let labeled: Vec<Example> = split
            .train
            .iter()
            .take(120)
            .map(|&v| Example {
                node: v,
                label: if d.truth.is_erroneous(v) {
                    Label::Error
                } else {
                    Label::Correct
                },
            })
            .collect();
        let r = gcn_detector(&repr, &labeled, &[], &GcnConfig::default(), &mut rng);
        let truth: HashSet<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&v| d.truth.is_erroneous(v))
            .collect();
        let prf = Prf::from_sets(&r.predicted_errors(&split.test), &truth);
        assert!(prf.f1 > 0.15, "GCN F1 {:.3}", prf.f1);
        assert!(r.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn no_error_labels_stays_quiet() {
        let d = prepare(DatasetId::UserGroup1, 0.05, &ErrorGenConfig::default(), 16);
        let mut rng = Rng::seed_from_u64(17);
        let feat_cfg = FeaturizeConfig {
            skip_gae: true,
            ..Default::default()
        };
        let repr = gale_data::featurize(&d.graph, &d.constraints, &feat_cfg, &mut rng);
        let labeled: Vec<Example> = (0..30)
            .map(|v| Example {
                node: v,
                label: Label::Correct,
            })
            .collect();
        let r = gcn_detector(
            &repr,
            &labeled,
            &[],
            &GcnConfig {
                epochs: 50,
                ..Default::default()
            },
            &mut rng,
        );
        let flagged = r.predictions.iter().filter(|&&l| l == Label::Error).count();
        assert!(
            flagged < d.graph.node_count() / 5,
            "{flagged} spurious error predictions"
        );
    }
}
