//! Raha-lite (the paper's baseline (4), after [39]): configuration-free
//! error detection that runs a library of detection strategies, clusters
//! nodes by their detector-signature vectors, and propagates a small number
//! of labels cluster-wise.
//!
//! The original Raha works on relational tables; the paper applies it per
//! node type ("one table per node type"), which is what this port does
//! implicitly since detector signatures are computed per node.

use crate::common::DetectionResult;
use gale_core::{Example, Label};
use gale_data::detector_signal_features;
use gale_detect::{
    DetectorLibrary, GarbageStringDetector, IqrDetector, MisspellingDetector, NullDetector,
    RareValueDetector, ZScoreDetector,
};
use gale_graph::Graph;
use gale_tensor::{kmeans, KMeansConfig, Rng};

/// Raha configuration.
#[derive(Debug, Clone)]
pub struct RahaConfig {
    /// Number of signature clusters (Raha's label budget drives this).
    pub clusters: usize,
}

impl Default for RahaConfig {
    fn default() -> Self {
        RahaConfig { clusters: 20 }
    }
}

/// Runs Raha-lite.
///
/// `labeled` is the small labeled sample Raha is allowed (the paper gives
/// every method comparable label budgets). Each signature cluster takes the
/// majority label of its labeled members; clusters with no labeled member
/// fall back to `Correct` unless their mean detector activation is high.
///
/// Raha is a *relational* system: the paper applies it to per-node-type
/// tables and does not share the graph rule set Σ with it, so its strategy
/// library holds only the relational detectors (outliers + string noise).
pub fn raha(g: &Graph, labeled: &[Example], cfg: &RahaConfig, rng: &mut Rng) -> DetectionResult {
    let lib = DetectorLibrary::new()
        .with(ZScoreDetector::default())
        .with(IqrDetector::default())
        .with(NullDetector::default())
        .with(MisspellingDetector::default())
        .with(GarbageStringDetector::default())
        .with(RareValueDetector::default());
    let signatures = detector_signal_features(g, &lib);
    let n = g.node_count();
    let km = kmeans(
        &signatures,
        &KMeansConfig {
            k: cfg.clusters.min(n.max(1)),
            max_iter: 50,
            tol: 1e-5,
            ..KMeansConfig::default()
        },
        rng,
    );
    let k = km.centroids.rows();
    // Majority vote per cluster from the labeled sample.
    let mut votes: Vec<(usize, usize)> = vec![(0, 0); k]; // (error, correct)
    for e in labeled {
        let c = km.assignments[e.node];
        match e.label {
            Label::Error => votes[c].0 += 1,
            Label::Correct => votes[c].1 += 1,
        }
    }
    // Activation fallback for unlabeled clusters: a cluster whose mean
    // signature magnitude is high behaves like a "dirty" strategy profile.
    let mut cluster_label = vec![Label::Correct; k];
    // All clusters' members grouped in one pass over the assignments (the
    // per-cluster `members(c)` scan is O(n) each, quadratic over the loop).
    let groups = km.members_by_cluster();
    for c in 0..k {
        let (err, cor) = votes[c];
        if err + cor > 0 {
            cluster_label[c] = if err > cor {
                Label::Error
            } else {
                Label::Correct
            };
        } else {
            let members = &groups[c];
            let mean_act: f64 = members
                .iter()
                .map(|&v| signatures.row(v).iter().sum::<f64>())
                .sum::<f64>()
                / members.len().max(1) as f64;
            cluster_label[c] = if mean_act > 0.5 {
                Label::Error
            } else {
                Label::Correct
            };
        }
    }
    let predictions: Vec<Label> = (0..n).map(|v| cluster_label[km.assignments[v]]).collect();
    let scores: Vec<f64> = (0..n)
        .map(|v| {
            let c = km.assignments[v];
            let (err, cor) = votes[c];
            if err + cor > 0 {
                err as f64 / (err + cor) as f64
            } else {
                signatures.row(v).iter().sum::<f64>().min(1.0)
            }
        })
        .collect();
    DetectionResult {
        predictions,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_core::Prf;
    use gale_data::{prepare, DataSplit, DatasetId};
    use gale_detect::ErrorGenConfig;
    use std::collections::HashSet;

    #[test]
    fn raha_uses_labels_to_beat_blind_union() {
        // Fully detectable errors: Raha's relational strategies can catch
        // these, so label propagation through signature clusters must beat
        // chance comfortably.
        let d = prepare(
            DatasetId::MachineLearning,
            0.2,
            &ErrorGenConfig {
                node_error_rate: 0.12,
                detectable_rate: 1.0,
                ..Default::default()
            },
            8,
        );
        let mut rng = Rng::seed_from_u64(9);
        let split = DataSplit::paper_default(d.graph.node_count(), &mut rng);
        let labeled: Vec<Example> = split
            .train
            .iter()
            .take(120)
            .map(|&v| Example {
                node: v,
                label: if d.truth.is_erroneous(v) {
                    Label::Error
                } else {
                    Label::Correct
                },
            })
            .collect();
        let r = raha(&d.graph, &labeled, &RahaConfig::default(), &mut rng);
        let truth: HashSet<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&v| d.truth.is_erroneous(v))
            .collect();
        let prf = Prf::from_sets(&r.predicted_errors(&split.test), &truth);
        assert!(prf.f1 > 0.2, "Raha F1 {:.3}", prf.f1);
    }

    #[test]
    fn without_labels_falls_back_to_activation() {
        let d = prepare(
            DatasetId::MachineLearning,
            0.08,
            &ErrorGenConfig {
                node_error_rate: 0.1,
                detectable_rate: 1.0,
                ..Default::default()
            },
            10,
        );
        let mut rng = Rng::seed_from_u64(11);
        let r = raha(&d.graph, &[], &RahaConfig::default(), &mut rng);
        let flagged = r.predictions.iter().filter(|&&l| l == Label::Error).count();
        assert!(flagged > 0, "activation fallback never fires");
    }

    #[test]
    fn scores_bounded() {
        let d = prepare(DatasetId::UserGroup2, 0.05, &ErrorGenConfig::default(), 12);
        let mut rng = Rng::seed_from_u64(13);
        let r = raha(&d.graph, &[], &RahaConfig::default(), &mut rng);
        assert!(r.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }
}
