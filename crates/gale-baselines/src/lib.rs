//! # gale-baselines
//!
//! The five competing methods of the GALE paper's evaluation (Section VIII):
//! VioDet (constraint violations), Alad (attributed-network anomaly
//! ranking), Raha-lite (detector-signature clustering with few labels),
//! a two-layer GCN node classifier, and GEDet (one-shot adversarial
//! few-shot detection — GALE without the active loop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alad;
pub mod common;
pub mod gcn_detector;
pub mod gedet;
pub mod raha;
pub mod viodet;

pub use alad::{alad, alad_scores, AladConfig};
pub use common::DetectionResult;
pub use gcn_detector::{gcn_detector, GcnConfig};
pub use gedet::{gedet, GedetConfig};
pub use raha::{raha, RahaConfig};
pub use viodet::viodet;
