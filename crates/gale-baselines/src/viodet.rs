//! VioDet: constraint-based error detection — errors are the union of the
//! violations of the mined rule set Σ (Section VIII, baseline (3)).

use crate::common::DetectionResult;
use gale_detect::Constraint;
use gale_graph::Graph;
use std::collections::HashSet;

/// Runs VioDet: every node violating any rule in Σ is predicted erroneous.
pub fn viodet(g: &Graph, constraints: &[Constraint]) -> DetectionResult {
    let mut errors = HashSet::new();
    let mut scores = vec![0.0f64; g.node_count()];
    for c in constraints {
        for (node, _) in c.violations(g) {
            errors.insert(node);
            // Score = strongest violated rule's confidence.
            scores[node] = scores[node].max(c.confidence());
        }
    }
    let mut result = DetectionResult::from_error_set(g.node_count(), &errors);
    result.scores = scores;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_core::{Label, Prf};
    use gale_data::{prepare, DatasetId};
    use gale_detect::ErrorGenConfig;

    #[test]
    fn flags_union_of_violations() {
        let d = prepare(
            DatasetId::Species,
            0.03,
            &ErrorGenConfig {
                node_error_rate: 0.1,
                ..Default::default()
            },
            1,
        );
        let r = viodet(&d.graph, &d.constraints);
        // Some flags exist and each flagged node indeed violates a rule.
        let flagged: Vec<usize> = (0..d.graph.node_count())
            .filter(|&v| r.predictions[v] == Label::Error)
            .collect();
        assert!(!flagged.is_empty(), "no violations found");
        let mut violators = std::collections::HashSet::new();
        for c in &d.constraints {
            violators.extend(c.violations(&d.graph).into_iter().map(|(n, _)| n));
        }
        for v in &flagged {
            assert!(violators.contains(v));
        }
    }

    #[test]
    fn low_recall_on_diversified_errors() {
        // The paper's observation: VioDet recall is low because errors are
        // diversified — only constraint violations are caught.
        let d = prepare(
            DatasetId::Species,
            0.05,
            &ErrorGenConfig {
                node_error_rate: 0.1,
                ..Default::default()
            },
            2,
        );
        let r = viodet(&d.graph, &d.constraints);
        let all: Vec<usize> = (0..d.graph.node_count()).collect();
        let truth: HashSet<usize> = d.truth.erroneous_nodes().clone();
        let prf = Prf::from_sets(&r.predicted_errors(&all), &truth);
        assert!(
            prf.recall < 0.6,
            "recall {:.3} unexpectedly high",
            prf.recall
        );
    }

    #[test]
    fn clean_graph_nearly_silent() {
        let d = prepare(
            DatasetId::Species,
            0.03,
            &ErrorGenConfig {
                node_error_rate: 0.0,
                ..Default::default()
            },
            3,
        );
        let r = viodet(&d.graph, &d.constraints);
        let flagged = (0..d.graph.node_count())
            .filter(|&v| r.predictions[v] == Label::Error)
            .count();
        // Natural noise may produce a handful of spurious violations, but
        // the clean graph should be mostly silent.
        assert!(
            flagged < d.graph.node_count() / 20,
            "{flagged} false flags on clean data"
        );
    }
}
