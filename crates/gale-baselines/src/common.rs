//! Shared types for the baseline detectors compared in Table IV.

use gale_core::Label;
use gale_graph::NodeId;
use std::collections::HashSet;

/// Output of any error-detection method: a hard prediction plus a ranking
/// score per node.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// Predicted label per node.
    pub predictions: Vec<Label>,
    /// Error score per node (higher = more likely erroneous).
    pub scores: Vec<f64>,
}

impl DetectionResult {
    /// Builds a result from a predicted-error set over `n` nodes, with 0/1
    /// scores.
    pub fn from_error_set(n: usize, errors: &HashSet<NodeId>) -> Self {
        let predictions = (0..n)
            .map(|v| {
                if errors.contains(&v) {
                    Label::Error
                } else {
                    Label::Correct
                }
            })
            .collect();
        let scores = (0..n)
            .map(|v| if errors.contains(&v) { 1.0 } else { 0.0 })
            .collect();
        DetectionResult {
            predictions,
            scores,
        }
    }

    /// The predicted error set restricted to a population.
    pub fn predicted_errors(&self, population: &[NodeId]) -> HashSet<NodeId> {
        population
            .iter()
            .copied()
            .filter(|&v| self.predictions[v] == Label::Error)
            .collect()
    }

    /// `(node, score)` pairs over a population.
    pub fn scores_over(&self, population: &[NodeId]) -> Vec<(NodeId, f64)> {
        population.iter().map(|&v| (v, self.scores[v])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_error_set_roundtrip() {
        let errs: HashSet<NodeId> = [1, 3].into_iter().collect();
        let r = DetectionResult::from_error_set(5, &errs);
        assert_eq!(r.predictions[1], Label::Error);
        assert_eq!(r.predictions[0], Label::Correct);
        assert_eq!(r.scores, vec![0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(r.predicted_errors(&[0, 1, 2, 3, 4]), errs);
        assert_eq!(r.predicted_errors(&[0, 2]), HashSet::new());
    }
}
