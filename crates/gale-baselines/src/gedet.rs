//! GEDet (the paper's baseline (5b) and GALE's pilot system [22]):
//! one-shot adversarially-learned few-shot error detection — the same
//! SGAN + graph augmentation stack as GALE, but trained once on a fixed
//! example set with no active-learning loop.

use crate::common::DetectionResult;
use gale_core::{g_augment, AugmentConfig, Example, ExamplePool, Sgan, SganConfig};
use gale_detect::Constraint;
use gale_graph::Graph;
use gale_tensor::Rng;

/// GEDet configuration.
#[derive(Debug, Clone, Default)]
pub struct GedetConfig {
    /// SGAN hyper-parameters (shared with GALE for fair comparison).
    pub sgan: SganConfig,
    /// GAugment settings.
    pub augment: AugmentConfig,
}

/// Trains GEDet on the given examples and predicts every node.
pub fn gedet(
    g: &Graph,
    constraints: &[Constraint],
    examples: &[Example],
    val_examples: &[Example],
    cfg: &GedetConfig,
    rng: &mut Rng,
) -> DetectionResult {
    let aug = g_augment(g, constraints, &cfg.augment, rng);
    let mut sgan = Sgan::new(aug.repr.x.cols(), &cfg.sgan, rng);
    let targets = ExamplePool::targets(examples);
    let val_targets = ExamplePool::targets(val_examples);
    let _ = sgan.train(&aug.repr.x, &aug.x_s, &targets, &val_targets, rng);
    let probs = sgan.class_probs(&aug.repr.x);
    let n = g.node_count();
    let scores: Vec<f64> = (0..n).map(|v| probs[(v, 0)]).collect();
    let predictions = gale_core::calibrated_predictions(&scores, val_examples);
    DetectionResult {
        predictions,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_core::{Label, Prf};
    use gale_data::{prepare, DataSplit, DatasetId, FeaturizeConfig};
    use gale_detect::ErrorGenConfig;
    use std::collections::HashSet;

    fn quick_cfg() -> GedetConfig {
        GedetConfig {
            sgan: SganConfig {
                d_hidden: vec![24, 12],
                g_hidden: vec![24],
                epochs: 80,
                batch_unsup: 128,
                early_stop_patience: 0,
                ..Default::default()
            },
            augment: AugmentConfig {
                feat: FeaturizeConfig {
                    gae: gale_nn::GaeConfig {
                        epochs: 10,
                        ..FeaturizeConfig::default().gae
                    },
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn gedet_detects_with_few_shots() {
        let d = prepare(
            DatasetId::MachineLearning,
            0.1,
            &ErrorGenConfig {
                node_error_rate: 0.12,
                ..Default::default()
            },
            18,
        );
        let mut rng = Rng::seed_from_u64(19);
        let split = DataSplit::paper_default(d.graph.node_count(), &mut rng);
        let labeled: Vec<Example> = split
            .train
            .iter()
            .take(60)
            .map(|&v| Example {
                node: v,
                label: if d.truth.is_erroneous(v) {
                    Label::Error
                } else {
                    Label::Correct
                },
            })
            .collect();
        let r = gedet(
            &d.graph,
            &d.constraints,
            &labeled,
            &[],
            &quick_cfg(),
            &mut rng,
        );
        let truth: HashSet<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&v| d.truth.is_erroneous(v))
            .collect();
        let prf = Prf::from_sets(&r.predicted_errors(&split.test), &truth);
        assert!(prf.f1 > 0.3, "GEDet F1 {:.3}", prf.f1);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = prepare(DatasetId::UserGroup2, 0.06, &ErrorGenConfig::default(), 20);
        let labeled: Vec<Example> = (0..20)
            .map(|v| Example {
                node: v,
                label: if d.truth.is_erroneous(v) {
                    Label::Error
                } else {
                    Label::Correct
                },
            })
            .collect();
        let run = || {
            gedet(
                &d.graph,
                &d.constraints,
                &labeled,
                &[],
                &quick_cfg(),
                &mut Rng::seed_from_u64(21),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.predictions, b.predictions);
    }
}
