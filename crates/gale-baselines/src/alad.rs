//! Alad-style anomaly detection (the paper's baseline (2), after [37]):
//! unsupervised node-anomaly ranking that combines attribute-distribution
//! irregularity with local topological context, thresholded at the best
//! validation F1 (the paper tunes Alad's threshold for its best AUC-PR).

use crate::common::DetectionResult;
use gale_core::{best_f1_threshold, Example, Label};
use gale_data::{attribute_feature_layout, attribute_features};
use gale_graph::{Graph, NodeId};
use std::collections::HashSet;

/// Alad configuration.
#[derive(Debug, Clone)]
pub struct AladConfig {
    /// Token-embedding width used for the underlying attribute encoding.
    pub token_dim: usize,
    /// Weight of the structural (degree-deviation) component.
    pub structure_weight: f64,
}

impl Default for AladConfig {
    fn default() -> Self {
        AladConfig {
            token_dim: 12,
            structure_weight: 0.3,
        }
    }
}

/// Computes the unsupervised anomaly score of every node.
///
/// The attribute component is the mean of the top-2 diagnostic magnitudes
/// (z-scores, local deviations, rarity, context mismatch); the structural
/// component is the node's degree deviation from its neighbors' mean degree.
pub fn alad_scores(g: &Graph, cfg: &AladConfig) -> Vec<f64> {
    let raw = attribute_features(g, cfg.token_dim);
    let (_, diag_cols) = attribute_feature_layout(g, cfg.token_dim);
    let degrees = g.degrees();
    let neighbors = g.neighbor_lists();
    (0..g.node_count())
        .map(|v| {
            let mut diags: Vec<f64> = diag_cols.iter().map(|&c| raw[(v, c)].abs()).collect();
            diags.sort_by(|a, b| b.partial_cmp(a).expect("NaN diagnostic"));
            let attr_score = diags.iter().take(2).sum::<f64>() / (diags.len().clamp(1, 2) as f64);
            let struct_score = if neighbors[v].is_empty() {
                0.0
            } else {
                let mean_deg = neighbors[v].iter().map(|&u| degrees[u] as f64).sum::<f64>()
                    / neighbors[v].len() as f64;
                ((degrees[v] as f64 - mean_deg).abs() / (mean_deg + 1.0)).min(3.0)
            };
            attr_score + cfg.structure_weight * struct_score
        })
        .collect()
}

/// Runs Alad: scores all nodes, picks the threshold maximizing F1 on the
/// labeled validation examples, and predicts.
pub fn alad(g: &Graph, val_examples: &[Example], cfg: &AladConfig) -> DetectionResult {
    let scores = alad_scores(g, cfg);
    let val_scores: Vec<(NodeId, f64)> = val_examples
        .iter()
        .map(|e| (e.node, scores[e.node]))
        .collect();
    let val_truth: HashSet<NodeId> = val_examples
        .iter()
        .filter(|e| e.label == Label::Error)
        .map(|e| e.node)
        .collect();
    let threshold = if val_truth.is_empty() {
        // No validation errors: fall back to the 95th percentile.
        gale_tensor::stats::quantile(&scores, 0.95)
    } else {
        best_f1_threshold(&val_scores, &val_truth).0
    };
    let predictions = scores
        .iter()
        .map(|&s| {
            if s >= threshold {
                Label::Error
            } else {
                Label::Correct
            }
        })
        .collect();
    DetectionResult {
        predictions,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gale_core::Prf;
    use gale_data::{prepare, DataSplit, DatasetId};
    use gale_detect::ErrorGenConfig;
    use gale_tensor::Rng;

    fn val_examples(d: &gale_data::PreparedDataset, split: &DataSplit) -> Vec<Example> {
        split
            .val
            .iter()
            .map(|&v| Example {
                node: v,
                label: if d.truth.is_erroneous(v) {
                    Label::Error
                } else {
                    Label::Correct
                },
            })
            .collect()
    }

    #[test]
    fn detectable_outliers_rank_high() {
        let d = prepare(
            DatasetId::UserGroup1,
            0.1,
            &ErrorGenConfig {
                node_error_rate: 0.1,
                detectable_rate: 1.0,
                kind_weights: [0.0, 1.0, 0.0],
                ..Default::default()
            },
            4,
        );
        let scores = alad_scores(&d.graph, &AladConfig::default());
        let err_mean = gale_tensor::stats::mean(
            &d.truth
                .erroneous_nodes()
                .iter()
                .map(|&v| scores[v])
                .collect::<Vec<_>>(),
        );
        let clean: Vec<f64> = (0..d.graph.node_count())
            .filter(|v| !d.truth.is_erroneous(*v))
            .map(|v| scores[v])
            .collect();
        assert!(
            err_mean > gale_tensor::stats::mean(&clean) * 1.5,
            "outliers not ranked higher"
        );
    }

    #[test]
    fn threshold_tuned_on_validation() {
        let d = prepare(
            DatasetId::UserGroup1,
            0.1,
            &ErrorGenConfig {
                node_error_rate: 0.12,
                ..Default::default()
            },
            5,
        );
        let mut rng = Rng::seed_from_u64(6);
        let split = DataSplit::paper_default(d.graph.node_count(), &mut rng);
        let vals = val_examples(&d, &split);
        let r = alad(&d.graph, &vals, &AladConfig::default());
        let truth: HashSet<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&v| d.truth.is_erroneous(v))
            .collect();
        let prf = Prf::from_sets(&r.predicted_errors(&split.test), &truth);
        // Alad catches a fair share of the (mixed) errors but is far from
        // perfect — the paper reports F1 0.30-0.39.
        assert!(prf.recall > 0.1, "recall {:.3}", prf.recall);
        assert!(prf.f1 < 0.9, "implausibly perfect ({:?})", prf);
    }

    #[test]
    fn empty_validation_falls_back() {
        let d = prepare(DatasetId::UserGroup2, 0.05, &ErrorGenConfig::default(), 7);
        let r = alad(&d.graph, &[], &AladConfig::default());
        let flagged = r.predictions.iter().filter(|&&l| l == Label::Error).count();
        // 95th-percentile fallback flags ~5% of nodes.
        let frac = flagged as f64 / d.graph.node_count() as f64;
        assert!((0.01..0.15).contains(&frac), "flagged fraction {frac}");
    }
}
